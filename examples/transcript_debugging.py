#!/usr/bin/env python3
"""Watching a Byzantine attack round by round — and recording it.

Attaches three observers to one TreeAA execution under the burn-schedule
adversary, fanned out through :class:`~repro.net.MultiObserver`:

* a :class:`~repro.net.TranscriptRecorder` for the human-readable view of
  the first gradecast iteration;
* an :class:`~repro.net.InvariantMonitor` live-checking that no honest
  output ever leaves the honest inputs' convex hull;
* a :class:`~repro.observability.MetricsCollector`, whose structured
  per-round metrics are exported as a JSONL trace and then re-loaded and
  summarised offline — the workflow behind ``python -m repro trace`` /
  ``python -m repro report``.

This regenerates the numbers quoted in docs/PROTOCOL_WALKTHROUGH.md
(18 rounds, all honest outputs ``v3``, final hull diameter 0).

Run:  python examples/transcript_debugging.py
"""

import os
import tempfile

from repro.adversary.realaa_attacks import BurnScheduleAdversary
from repro.analysis import tree_validity
from repro.core import TreeAAParty
from repro.net import InvariantMonitor, MultiObserver, TranscriptRecorder, run_protocol
from repro.observability import MetricsCollector, export_run, load_run, render_report
from repro.trees import convex_hull, figure_tree


def main() -> None:
    tree = figure_tree()
    n, t = 7, 2
    inputs = ["v3", "v6", "v5", "v6", "v3", "v8", "v8"]
    hull = convex_hull(tree, inputs[: n - t])

    recorder = TranscriptRecorder()
    collector = MetricsCollector(tree=tree)

    def outputs_stay_in_hull(round_index, parties, corrupted):
        # Once a party has an output, it must already be a valid vertex.
        for pid in range(n):
            if pid in corrupted:
                continue
            output = parties[pid].output
            if output is not None and output not in hull:
                return False
        return True

    monitor = InvariantMonitor({"outputs-in-hull": outputs_stay_in_hull})

    result = run_protocol(
        n,
        t,
        lambda pid: TreeAAParty(pid, n, t, tree, inputs[pid]),
        adversary=BurnScheduleAdversary([1, 1]),
        observer=MultiObserver(recorder, monitor, collector),
    )

    print("First gradecast iteration (3 rounds) of PathsFinder:\n")
    print(recorder.render(max_rounds=3))
    print(f"\n... {len(recorder.rounds) - 3} more rounds recorded.")
    print(f"Byzantine messages sent in total: {recorder.byzantine_message_total}")
    print(f"Invariant 'outputs-in-hull' held in all {monitor.checked_rounds} rounds.")
    print(f"\nHonest outputs: {result.honest_outputs}")
    honest_inputs = [inputs[p] for p in sorted(result.honest)]
    assert tree_validity(tree, honest_inputs, list(result.honest_outputs.values()))
    print("Validity re-checked offline: ok.")

    # Export the same execution as a JSONL trace and summarise it offline —
    # what `repro trace --out run.jsonl` + `repro report run.jsonl` do.
    with tempfile.TemporaryDirectory() as tmpdir:
        trace_path = os.path.join(tmpdir, "figure_run.jsonl")
        export_run(
            trace_path,
            collector,
            result,
            protocol="tree-aa",
            tree=tree,
            inputs=inputs,
            verdicts={"terminated": True, "valid": True, "agreement": True},
            t=t,
        )
        run = load_run(trace_path)
        print(f"\nJSONL trace: {run.rounds_executed} round records, "
              f"hull diameter per round {run.round_series('hull_diameter')}")
        print()
        print(render_report(run, max_rounds=0))


if __name__ == "__main__":
    main()
