#!/usr/bin/env python3
"""Watching a Byzantine attack round by round.

Attaches a :class:`~repro.net.TranscriptRecorder` and an
:class:`~repro.net.InvariantMonitor` to a TreeAA execution under the
burn-schedule adversary, then prints the first iteration's traffic and the
live-checked invariants — the debugging workflow for protocol work.

Run:  python examples/transcript_debugging.py
"""

from repro.adversary.realaa_attacks import BurnScheduleAdversary
from repro.analysis import tree_validity
from repro.core import TreeAAParty
from repro.net import InvariantMonitor, TranscriptRecorder, run_protocol
from repro.trees import convex_hull, figure_tree


class CombinedObserver:
    """Fan out network observations to several observers."""

    def __init__(self, *observers):
        self.observers = observers

    def on_round(self, *args):
        for observer in self.observers:
            observer.on_round(*args)


def main() -> None:
    tree = figure_tree()
    n, t = 7, 2
    inputs = ["v3", "v6", "v5", "v6", "v3", "v8", "v8"]
    hull = convex_hull(tree, inputs[: n - t])

    recorder = TranscriptRecorder()

    def outputs_stay_in_hull(round_index, parties, corrupted):
        # Once a party has an output, it must already be a valid vertex.
        for pid in range(n):
            if pid in corrupted:
                continue
            output = parties[pid].output
            if output is not None and output not in hull:
                return False
        return True

    monitor = InvariantMonitor({"outputs-in-hull": outputs_stay_in_hull})

    result = run_protocol(
        n,
        t,
        lambda pid: TreeAAParty(pid, n, t, tree, inputs[pid]),
        adversary=BurnScheduleAdversary([1, 1]),
        observer=CombinedObserver(recorder, monitor),
    )

    print("First gradecast iteration (3 rounds) of PathsFinder:\n")
    print(recorder.render(max_rounds=3))
    print(f"\n... {len(recorder.rounds) - 3} more rounds recorded.")
    print(f"Byzantine messages sent in total: {recorder.byzantine_message_total}")
    print(f"Invariant 'outputs-in-hull' held in all {monitor.checked_rounds} rounds.")
    print(f"\nHonest outputs: {result.honest_outputs}")
    honest_inputs = [inputs[p] for p in sorted(result.honest)]
    assert tree_validity(tree, honest_inputs, list(result.honest_outputs.values()))
    print("Validity re-checked offline: ok.")


if __name__ == "__main__":
    main()
