#!/usr/bin/env python3
"""Synchronous TreeAA vs the asynchronous state of the art, side by side.

The paper's headline compares against the O(log D(T))-round asynchronous
tree protocol of Nowak–Rybicki.  This example runs both stacks on the same
instance:

* the asynchronous protocol: Bracha reliable broadcast + witness technique
  + safe-area midpoints, under adversarially scheduled delivery;
* TreeAA: gradecast + RealAA with detection, in lockstep rounds.

Run:  python examples/async_vs_sync.py
"""

import random

from repro.analysis import format_table, tree_agreement, tree_validity
from repro.asynchrony import (
    AsyncNoiseAdversary,
    AsyncTreeAAParty,
    RandomScheduler,
    run_async_protocol,
)
from repro.adversary.realaa_attacks import BurnScheduleAdversary
from repro.core import run_tree_aa
from repro.trees import diameter, path_tree


def main() -> None:
    n, t = 7, 2
    rows = []
    for size in (16, 64, 256):
        tree = path_tree(size)
        rng = random.Random(size)
        inputs = [rng.choice(tree.vertices) for _ in range(n)]

        async_result = run_async_protocol(
            n,
            t,
            lambda pid: AsyncTreeAAParty(pid, n, t, tree, inputs[pid]),
            adversary=AsyncNoiseAdversary(seed=1),
            scheduler=RandomScheduler(1),
            max_steps=2_000_000,
        )
        async_outputs = list(async_result.honest_outputs.values())
        honest_inputs = [inputs[p] for p in sorted(async_result.honest)]
        assert async_result.completed
        assert tree_validity(tree, honest_inputs, async_outputs)
        assert tree_agreement(tree, async_outputs)

        sync_outcome = run_tree_aa(
            tree, inputs, t, adversary=BurnScheduleAdversary([1, 1])
        )
        assert sync_outcome.achieved_aa

        rows.append(
            [
                diameter(tree),
                async_result.parties[0].iterations,
                async_result.trace.honest_message_count,
                sync_outcome.rounds,
                sync_outcome.execution.trace.honest_message_count,
            ]
        )

    print(
        format_table(
            [
                "D(T)",
                "async iterations",
                "async messages",
                "TreeAA rounds",
                "TreeAA messages",
            ],
            rows,
            title=f"Both protocols achieve AA (n={n}, t={t}); costs compared:",
        )
    )
    print(
        "\nThe asynchronous protocol needs Theta(log D) iterations (each a\n"
        "reliable-broadcast round trip); TreeAA's synchronous round count is\n"
        "flat in D at this (n, t) — the separation the paper establishes."
    )


if __name__ == "__main__":
    main()
