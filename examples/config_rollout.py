#!/usr/bin/env python3
"""Agreeing on a configuration-tree node under equivocating replicas.

A service's configuration namespace is a tree (think: a directory tree of
feature-flag bundles, each node refining its parent).  Replicas must roll
out *compatible* configurations: nodes at distance ≤ 1 in the namespace,
and never a configuration outside the span of what healthy replicas
actually proposed.  Exact consensus would cost t + 1 = O(n) rounds of
Byzantine Agreement; TreeAA's 1-agreement is enough here — adjacent nodes
are compatible by construction — and runs in O(log V / log log V) rounds.

Run:  python examples/config_rollout.py
"""

from repro import LabeledTree, run_tree_aa
from repro.adversary import RandomNoiseAdversary
from repro.trees import convex_hull


def build_namespace() -> LabeledTree:
    """base → {stable, beta} → channels → region bundles."""
    edges = [
        ("base", "base/stable"),
        ("base", "base/beta"),
        ("base/stable", "base/stable/v1"),
        ("base/stable", "base/stable/v2"),
        ("base/stable/v2", "base/stable/v2/eu"),
        ("base/stable/v2/eu", "base/stable/v2/eu+gdpr"),
        ("base/stable/v2", "base/stable/v2/us"),
        ("base/beta", "base/beta/canary"),
        ("base/beta/canary", "base/beta/canary/1pct"),
        ("base/beta", "base/beta/full"),
    ]
    return LabeledTree(edges=edges)


def main() -> None:
    namespace = build_namespace()
    n, t = 7, 2

    # Five healthy replicas propose stable-v2 variants; two compromised
    # replicas spray garbage at everyone.
    proposals = [
        "base/stable/v2/eu",
        "base/stable/v2/eu+gdpr",
        "base/stable/v2/us",
        "base/stable/v2",
        "base/stable/v2/eu",
        "base/beta/canary/1pct",  # compromised replica's pet proposal
        "base/beta/full",  # compromised replica's pet proposal
    ]
    print("Proposals:")
    for replica, proposal in enumerate(proposals):
        tag = "  <- will be compromised" if replica >= n - t else ""
        print(f"  replica {replica}: {proposal}{tag}")

    outcome = run_tree_aa(
        namespace, proposals, t, adversary=RandomNoiseAdversary(seed=99)
    )

    rollout = outcome.honest_outputs
    hull = convex_hull(namespace, list(outcome.honest_inputs.values()))
    print(f"\nHull of healthy proposals: {sorted(hull)}")
    print("Rolled-out configurations:")
    for replica, config in rollout.items():
        print(f"  replica {replica}: {config}")
    print(f"\nRounds: {outcome.rounds}")
    print(f"Compatible (distance <= 1): {outcome.agreement}")
    print(f"Within the healthy proposals' span: {outcome.valid}")
    assert outcome.achieved_aa
    # the beta branch never leaks into the rollout: it is outside the hull
    assert all(not config.startswith("base/beta") for config in rollout.values())
    print("\nNo replica rolled out anything from the (unproposed) beta branch.")


if __name__ == "__main__":
    main()
