#!/usr/bin/env python3
"""Fekete's lower-bound mechanism, made concrete (Section 3 of the paper).

Builds the chain of views for a one-round full-information protocol and
shows the two adjacent executions in which two honest parties — seeing
views that a single Byzantine block can induce simultaneously — are forced
to output far-apart values.  Then evaluates Theorem 2's round bound for
growing tree diameters.

Run:  python examples/lower_bound_demo.py
"""

from repro.analysis import format_table
from repro.lowerbound import (
    demonstrate_real,
    demonstrate_tree,
    fekete_K,
    min_rounds_required,
    safe_area_midpoint_rule,
    theorem2_lower_bound,
    trimmed_mean_rule,
)
from repro.trees import path_tree


def real_demo() -> None:
    n, t = 7, 2
    demo = demonstrate_real(trimmed_mean_rule(t), n, t, low=0.0, high=1.0)
    print(f"One-round protocol on R, n={n}, t={t}, inputs in {{0, 1}}")
    print(f"Chain of {len(demo.views)} views (each row = one honest view):")
    for view, output in zip(demo.views, demo.outputs):
        print(f"  {view}  ->  output {output:.4f}")
    link = demo.witness
    print(
        f"\nWitness execution: Byzantine block {link.byzantine_block} tells one "
        "honest party 1 and another 0."
    )
    print(
        f"Their outputs differ by {demo.max_gap:.4f} "
        f">= guaranteed D/s = {demo.guaranteed_gap:.4f} "
        f">= K(1, D) = {fekete_K(1, 1.0, n, t):.4f}"
    )


def tree_demo() -> None:
    n, t = 7, 2
    tree = path_tree(41)
    demo = demonstrate_tree(safe_area_midpoint_rule(tree, t), tree, n, t)
    print(f"\nSame chain on a path of diameter 40 (Corollary 1):")
    print(f"  endpoint outputs: {demo.outputs[0]} ... {demo.outputs[-1]}")
    print(
        f"  forced output distance: {demo.max_gap:.0f} vertices "
        f"(guaranteed {demo.guaranteed_gap:.0f})"
    )
    print("  -> no one-round protocol can 1-agree on this tree.")


def theorem2_table() -> None:
    n, t = 13, 4
    rows = []
    for exponent in range(2, 10):
        diameter = float(2**exponent)
        rows.append(
            [
                int(diameter),
                round(theorem2_lower_bound(diameter, n, t), 2),
                min_rounds_required(diameter, n, t),
            ]
        )
    print()
    print(
        format_table(
            ["D(T)", "Theorem-2 bound (rounds)", "Corollary-1 integer bound"],
            rows,
            title=f"Round lower bounds for n={n}, t={t}",
        )
    )


def main() -> None:
    real_demo()
    tree_demo()
    theorem2_table()


if __name__ == "__main__":
    main()
