#!/usr/bin/env python3
"""Quickstart: Approximate Agreement on a tree with Byzantine parties.

Seven parties hold vertices of a small publicly known tree; two of them are
Byzantine.  TreeAA (Fuchs–Ghinea–Parsaeian, PODC 2025) gets the honest
parties onto vertices at distance ≤ 1 inside the convex hull of the honest
inputs — in O(log |V| / log log |V|) synchronous rounds.

Run:  python examples/quickstart.py
"""

from repro import LabeledTree, run_tree_aa
from repro.adversary.realaa_attacks import BurnScheduleAdversary
from repro.trees import convex_hull, diameter


def main() -> None:
    # The input space: a labeled tree known to every party.
    #
    #        a ─ b ─ c ─ d ─ e
    #            │       │
    #            f       g ─ h
    tree = LabeledTree(
        edges=[
            ("a", "b"),
            ("b", "c"),
            ("c", "d"),
            ("d", "e"),
            ("b", "f"),
            ("d", "g"),
            ("g", "h"),
        ]
    )
    print(f"Input space: {tree.n_vertices} vertices, diameter {diameter(tree)}")

    # Party i starts with inputs[i].  Parties 5 and 6 will be corrupted; the
    # adversary is the worst one we know: it splits its budget across
    # iterations and equivocates exactly once per corrupted party.
    inputs = ["a", "f", "h", "e", "c", "a", "h"]
    n, t = len(inputs), 2
    adversary = BurnScheduleAdversary(schedule=[1, 1])

    outcome = run_tree_aa(tree, inputs, t, adversary=adversary)

    honest_inputs = list(outcome.honest_inputs.values())
    hull = convex_hull(tree, honest_inputs)
    print(f"Honest inputs : {honest_inputs}")
    print(f"Their hull    : {sorted(hull)}")
    print(f"Honest outputs: {outcome.honest_outputs}")
    print(f"Rounds used   : {outcome.rounds}")
    print(f"Termination   : {outcome.terminated}")
    print(f"Validity      : {outcome.valid}  (all outputs inside the hull)")
    print(
        f"1-Agreement   : {outcome.agreement}  "
        f"(max pairwise distance = {outcome.output_diameter})"
    )
    assert outcome.achieved_aa
    print("\nApproximate Agreement achieved despite 2 Byzantine parties.")


if __name__ == "__main__":
    main()
