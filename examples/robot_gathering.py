#!/usr/bin/env python3
"""Robot gathering on a corridor map — the paper's motivating application.

A fleet of robots is scattered across a building whose corridor graph is a
tree (junctions = vertices, corridors = edges).  Some robots are faulty and
may report arbitrary positions.  Using TreeAA the healthy robots agree on
meeting points that are *adjacent or identical* (1-agreement) and that lie
on the corridors between healthy robots' actual positions (validity) — so
nobody is sent across the building to a junction none of them was near.

This is the Edge-Gathering / robot-gathering relaxation discussed in the
paper's related work ([2], [34]), solved with the convex-hull guarantee the
classical variants lack.

Run:  python examples/robot_gathering.py
"""

import random

from repro import run_tree_aa
from repro.adversary.realaa_attacks import BurnScheduleAdversary
from repro.trees import caterpillar_tree, convex_hull, diameter


def build_building_map():
    """A long hallway with side rooms: a caterpillar tree."""
    return caterpillar_tree(spine_length=12, legs_per_vertex=2)


def main() -> None:
    rng = random.Random(2025)
    building = build_building_map()
    print(
        f"Building map: {building.n_vertices} junctions, "
        f"longest walk {diameter(building)} corridors"
    )

    # 10 robots, up to 3 faulty.  The faulty ones are controlled by the
    # strongest adversary in the library (budget-split equivocation).
    n, t = 10, 3
    positions = [rng.choice(building.vertices) for _ in range(n)]
    print("\nReported positions:")
    for robot, position in enumerate(positions):
        tag = " (may be faulty)" if robot >= n - t else ""
        print(f"  robot {robot}: junction {position}{tag}")

    outcome = run_tree_aa(
        building,
        positions,
        t,
        adversary=BurnScheduleAdversary(schedule=[1, 1, 1]),
    )

    meeting_points = set(outcome.honest_outputs.values())
    healthy_positions = list(outcome.honest_inputs.values())
    hull = convex_hull(building, healthy_positions)

    print(f"\nHealthy robots' gathering points: {sorted(meeting_points)}")
    print(f"Rounds of radio synchronisation: {outcome.rounds}")
    print(f"All gathering points on corridors between healthy robots: {outcome.valid}")
    print(f"Gathering points adjacent or identical: {outcome.agreement}")
    assert outcome.achieved_aa
    assert meeting_points <= hull

    if len(meeting_points) == 1:
        print("\nAll healthy robots meet at the same junction.")
    else:
        a, b = sorted(meeting_points)
        print(f"\nHealthy robots end up on the single corridor {a} — {b}:")
        print("one more local hop (or a shout down the corridor) finishes the job.")


if __name__ == "__main__":
    main()
