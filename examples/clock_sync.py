#!/usr/bin/env python3
"""Clock synchronisation with RealAA — the classic real-valued application.

Each node holds a clock offset estimate (milliseconds).  Byzantine nodes
may report anything, inconsistently.  RealAA(ε) brings every honest node's
offset within ε of each other while staying inside the range of honest
estimates — and, thanks to its detect-and-ignore mechanism, does so in
far fewer synchronous rounds than the classic halving iteration when the
spread is large.

Run:  python examples/clock_sync.py
"""

import random

from repro.adversary.realaa_attacks import BurnScheduleAdversary, even_burn_schedule
from repro.baselines import halving_iterations
from repro.core import run_real_aa
from repro.protocols import realaa_duration


def main() -> None:
    rng = random.Random(7)
    n, t = 10, 3
    epsilon = 0.05  # target: offsets within 50 microseconds
    spread = 2000.0  # initial estimates may be 2 seconds apart

    offsets = [round(rng.uniform(0.0, spread), 1) for _ in range(n)]
    print(f"{n} nodes, {t} possibly Byzantine, target eps = {epsilon} ms")
    print(f"Initial offset estimates (ms): {offsets}")

    adversary = BurnScheduleAdversary(even_burn_schedule(t, 3))
    outcome = run_real_aa(
        offsets, t, epsilon=epsilon, known_range=spread, adversary=adversary
    )

    honest = outcome.honest_outputs
    print("\nSynchronized offsets of honest nodes (ms):")
    for node, value in honest.items():
        print(f"  node {node}: {value:.6f}")
    print(f"\nFinal spread: {outcome.output_spread:.6f} ms (<= {epsilon})")
    print(f"Within honest input range: {outcome.valid}")
    print(f"Synchronous rounds used: {outcome.rounds}")
    assert outcome.achieved_aa

    outline_rounds = 3 * halving_iterations(spread, epsilon)
    budget = realaa_duration(spread, epsilon, n, t)
    print(
        f"\nRealAA round budget: {budget}   "
        f"(classic halving outline would need {outline_rounds})"
    )
    print(
        "The gap grows with the spread/precision ratio: each Byzantine node\n"
        "can disturb convergence only once before every honest node ignores\n"
        "it, so the number of useful attack iterations — not log(D/eps) —\n"
        "dictates the round count."
    )


if __name__ == "__main__":
    main()
