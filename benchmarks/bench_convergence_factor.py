"""Experiment T3 (Lemma 5 / Theorem 1): per-schedule convergence factors.

For each burn schedule ``t_1, …, t_R`` the honest range after ``R``
iterations should shrink by roughly ``∏ t_i / (n − 2t)`` (Lemma 5's
guarantee, matched by the burn adversary), far slower than the fault-free
collapse, and bounded below (in spirit) by Fekete's ``K(R, D)``.
"""

from __future__ import annotations

import pytest

from repro.adversary.realaa_attacks import BurnScheduleAdversary, even_burn_schedule
from repro.analysis import honest_value_ranges, overall_factor
from repro.lowerbound import fekete_K
from repro.net import run_protocol
from repro.protocols import (
    RealAAParty,
    adjusted_schedule_factor,
    lemma5_factor,
    schedule_factor,
)

SPREAD = 1000.0


def run_with_schedule(n, t, schedule, iterations):
    inputs = [0.0 if i % 2 == 0 else SPREAD for i in range(n)]
    result = run_protocol(
        n,
        t,
        lambda pid: RealAAParty(pid, n, t, inputs[pid], iterations=iterations),
        adversary=BurnScheduleAdversary(schedule),
    )
    return honest_value_ranges(result)


CONFIGS = [
    (7, 2, [2]),
    (7, 2, [1, 1]),
    (7, 2, [0, 2]),
    (13, 4, [4]),
    (13, 4, [2, 2]),
    (13, 4, [1, 1, 1, 1]),
    (31, 10, [5, 5]),
    (31, 10, even_burn_schedule(10, 5)),
]


def test_t3_table(report, benchmark):
    def sweep():
        rows = []
        for n, t, schedule in CONFIGS:
            iterations = max(len(schedule), 2)
            ranges = run_with_schedule(n, t, schedule, iterations)
            measured = ranges[len(schedule)] / ranges[0]
            idealised = schedule_factor(n, t, schedule)
            adjusted = adjusted_schedule_factor(n, t, schedule)
            worst = lemma5_factor(n, t, len(schedule))
            k_bound = fekete_K(len(schedule), 1.0, n, t)
            rows.append(
                [
                    f"n={n},t={t}",
                    "+".join(str(s) for s in schedule),
                    measured,
                    idealised,
                    adjusted,
                    worst,
                    k_bound,
                ]
            )
            # The operational bound (dropped senders shrink the trim core)
            # is never beaten by the attack.
            assert measured <= adjusted + 1e-9
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.table(
        "T3",
        "Range-shrink factor after the burn schedule (RealAA, D=1000)",
        [
            "network",
            "schedule",
            "measured factor",
            "ideal prod t_i/(n-2t)",
            "operational bound",
            "Lemma-5 worst",
            "Fekete K(R,1)",
        ],
        rows,
        notes=(
            "Paper claims: Lemma 5 bounds the shrink by prod t_i/(n-2t); the\n"
            "even split maximises it; Fekete's K(R, D) (with n+t in the\n"
            "denominator) lower-bounds what ANY protocol can guarantee.\n"
            "Expected shape: measured tracks the idealised schedule product\n"
            "within a small constant (exactly bounded by the operational\n"
            "form, whose denominator shrinks as detected senders drop out),\n"
            "and K sits below everything."
        ),
    )


def test_t3_fault_free_collapse(report, benchmark):
    """Contrast: with no inconsistencies the range collapses in ONE iteration
    — the paper's point that only detected-once equivocation slows RealAA."""

    def run():
        return run_with_schedule(7, 2, [0, 0], 2)

    ranges = benchmark.pedantic(run, rounds=1, iterations=1)
    report.table(
        "T3b",
        "Fault-free/clean iterations collapse immediately",
        ["iteration", "honest range"],
        [[i, r] for i, r in enumerate(ranges)],
    )
    assert ranges[1] == 0.0
