"""Experiment T7 (Lemma 4): PathsFinder's guarantees, quantified.

Across tree families, sizes, and adversaries: every honest party's path
must intersect the honest inputs' convex hull (property 1), all paths must
agree up to one trailing edge (property 2), and termination must land
within ``R_PathsFinder = R_RealAA(2·|V(T)|, 1)`` rounds.  The table also
reports how often the adversary actually managed to split the parties onto
two different paths — the case TreeAA's clamp exists for.
"""

from __future__ import annotations

import random

import pytest

from repro.adversary import RandomNoiseAdversary, SilentAdversary
from repro.adversary.realaa_attacks import BurnScheduleAdversary
from repro.core import PathsFinderParty
from repro.core.paths_finder import paths_finder_duration
from repro.net import run_protocol
from repro.trees import convex_hull, path_tree, random_tree, spider_tree

N, T = 7, 2

SCENARIOS = [
    ("random-20", lambda seed: random_tree(20, seed)),
    ("random-60", lambda seed: random_tree(60, seed)),
    ("path-40", lambda seed: path_tree(40)),
    ("spider-3x8", lambda seed: spider_tree(3, 8)),
]

ADVERSARIES = {
    "silent": lambda: SilentAdversary(),
    "noise": lambda: RandomNoiseAdversary(seed=5),
    "burn": lambda: BurnScheduleAdversary([1, 1]),
    "burn-down": lambda: BurnScheduleAdversary([2], direction="down"),
}

TRIALS = 5


def _check(tree, inputs, adversary):
    result = run_protocol(
        N,
        T,
        lambda pid: PathsFinderParty(pid, N, T, tree, inputs[pid]),
        adversary=adversary,
    )
    honest_inputs = [inputs[p] for p in sorted(result.honest)]
    hull = convex_hull(tree, honest_inputs)
    paths = list(result.honest_outputs.values())
    intersects = all(any(v in hull for v in p.vertices) for p in paths)
    longest = max(paths, key=len)
    coherent = all(
        p == longest or (len(p) == len(longest) - 1 and p.is_prefix_of(longest))
        for p in paths
    )
    split = len({p.vertices for p in paths}) > 1
    within_budget = result.trace.rounds_executed <= paths_finder_duration(tree, N, T)
    return intersects, coherent, split, within_budget


def test_t7_table(report, benchmark):
    def sweep():
        rows = []
        for scenario, make in SCENARIOS:
            for adv_name, adv_factory in sorted(ADVERSARIES.items()):
                ok_intersect = ok_coherent = ok_budget = splits = 0
                for trial in range(TRIALS):
                    tree = make(trial)
                    rng = random.Random(trial * 31 + 7)
                    inputs = [rng.choice(tree.vertices) for _ in range(N)]
                    intersects, coherent, split, within = _check(
                        tree, inputs, adv_factory()
                    )
                    ok_intersect += intersects
                    ok_coherent += coherent
                    ok_budget += within
                    splits += split
                rows.append(
                    [
                        scenario,
                        adv_name,
                        f"{ok_intersect}/{TRIALS}",
                        f"{ok_coherent}/{TRIALS}",
                        f"{splits}/{TRIALS}",
                        f"{ok_budget}/{TRIALS}",
                    ]
                )
                assert ok_intersect == TRIALS
                assert ok_coherent == TRIALS
                assert ok_budget == TRIALS
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.table(
        "T7",
        f"PathsFinder guarantees (Lemma 4), n={N}, t={T}, {TRIALS} trials/cell",
        [
            "tree",
            "adversary",
            "hull intersected",
            "paths coherent",
            "split paths seen",
            "within R_PathsFinder",
        ],
        rows,
        notes=(
            "Lemma 4: every path crosses the honest hull and any two paths\n"
            "differ by at most one trailing edge.  'split paths seen' counts\n"
            "trials where the adversary actually forced two different paths\n"
            "— the situation TreeAA line 6's clamp resolves."
        ),
    )


def test_t7b_split_regime(report, benchmark):
    """The split-path regime: paths actually diverge only when the burn
    budget covers *every* RealAA iteration (any clean iteration collapses
    the range to exactly zero).  With n = 13, t = 4 and 11-vertex trees the
    iteration count drops to 4 ≤ t and splits appear."""
    from repro.protocols import realaa_iterations
    from repro.trees import list_construction

    n, t = 13, 4

    def sweep():
        rows = []
        for direction in ("up", "down", "alternate"):
            splits = coherent = 0
            trials = 25
            for seed in range(trials):
                tree = random_tree(11, seed)
                euler = list_construction(tree)
                iterations = realaa_iterations(float(len(euler) - 1), 1.0, n, t)
                rng = random.Random(seed)
                inputs = [rng.choice(tree.vertices) for _ in range(n)]
                result = run_protocol(
                    n,
                    t,
                    lambda pid: PathsFinderParty(pid, n, t, tree, inputs[pid]),
                    adversary=BurnScheduleAdversary(
                        [1] * iterations, direction=direction
                    ),
                )
                paths = list(result.honest_outputs.values())
                if len({p.vertices for p in paths}) > 1:
                    splits += 1
                longest = max(paths, key=len)
                if all(
                    p == longest
                    or (len(p) == len(longest) - 1 and p.is_prefix_of(longest))
                    for p in paths
                ):
                    coherent += 1
            rows.append([direction, f"{splits}/{trials}", f"{coherent}/{trials}"])
            assert coherent == trials
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.table(
        "T7b",
        "Split-path regime: full-budget burns on 11-vertex trees (n=13, t=4)",
        ["burn direction", "split paths", "coherent (Lemma 4.2)"],
        rows,
        notes=(
            "Every observed split still satisfies Lemma 4: the two paths\n"
            "differ by exactly one trailing edge.  This is the case TreeAA\n"
            "line 6's clamp exists for."
        ),
    )
    assert any(int(row[1].split("/")[0]) > 0 for row in rows)


def test_bench_paths_finder_run(benchmark):
    tree = random_tree(60, seed=2)
    rng = random.Random(1)
    inputs = [rng.choice(tree.vertices) for _ in range(N)]
    result = benchmark.pedantic(
        lambda: run_protocol(
            N,
            T,
            lambda pid: PathsFinderParty(pid, N, T, tree, inputs[pid]),
            adversary=BurnScheduleAdversary([1, 1]),
        ),
        rounds=3,
        iterations=1,
    )
    assert result.trace.rounds_executed > 0
