"""Experiments F1–F5: the paper's five figures, regenerated as checks.

Each figure in the paper illustrates one mechanism; here each becomes an
executable scenario whose table row states the paper's claim and the
reproduced fact.
"""

from __future__ import annotations

import pytest

from repro.adversary.realaa_attacks import BurnScheduleAdversary
from repro.core import run_tree_aa
from repro.lowerbound import one_round_view_chain
from repro.trees import (
    LabeledTree,
    TreePath,
    convex_hull,
    figure_tree,
    list_construction,
    project_onto_path,
)


def figure1_tree():
    return LabeledTree(
        edges=[
            ("u1", "u4"),
            ("u4", "u5"),
            ("u5", "u2"),
            ("u5", "u3"),
            ("u4", "w1"),
            ("u2", "w2"),
        ]
    )


def figure2_tree():
    spine = [f"v{i}" for i in range(1, 9)]
    edges = [(spine[i], spine[i + 1]) for i in range(7)]
    edges += [("v3", "u1"), ("v4", "x1"), ("x1", "u2"), ("v6", "u3")]
    return LabeledTree(edges=edges), TreePath(spine)


def figure5_tree():
    spine = [f"v{i}" for i in range(1, 8)]
    edges = [(spine[i], spine[i + 1]) for i in range(6)]
    edges.append(("v6", "w_red"))
    edges += [("v5", "u1"), ("v7", "u2"), ("v6", "u3")]
    return LabeledTree(edges=edges)


def test_figures_table(report, benchmark):
    def reproduce():
        rows = []

        # F1: convex hull of {u1, u2, u3} is {u1..u5}.
        hull = convex_hull(figure1_tree(), ["u1", "u2", "u3"])
        f1_ok = hull == frozenset({"u1", "u2", "u3", "u4", "u5"})
        rows.append(["F1", "hull{u1,u2,u3} = {u1..u5}", f1_ok])

        # F2: projections of u1, u2, u3 onto the spine are v3, v4, v6.
        tree2, spine = figure2_tree()
        projections = [
            project_onto_path(tree2, u, spine) for u in ("u1", "u2", "u3")
        ]
        f2_ok = projections == ["v3", "v4", "v6"]
        rows.append(["F2", "proj(u1,u2,u3) = v3,v4,v6", f2_ok])

        # F3: the exact Euler list of the Section-6 worked example.
        euler = list_construction(figure_tree(), root="v1")
        expected = [
            "v1", "v2", "v3", "v6", "v3", "v7", "v3", "v2",
            "v4", "v8", "v4", "v2", "v5", "v2", "v1",
        ]
        f3_ok = list(euler.entries) == expected
        rows.append(["F3", "L matches the paper's DFS list", f3_ok])

        # F4: v4/v8 indices inside the honest range, outside the hull, but
        # inside the subtree of the valid vertex v2.
        honest = ["v3", "v6", "v5"]
        hull4 = convex_hull(figure_tree(), honest)
        idx = [euler.first_occurrence(v) for v in honest]
        lo, hi = min(idx), max(idx)
        inside_range = all(
            lo <= i <= hi
            for v in ("v4", "v8")
            for i in euler.occurrences(v)
        )
        outside_hull = all(v not in hull4 for v in ("v4", "v8"))
        in_valid_subtree = all(
            euler.vertex_in_subtree(v, "v2") for v in ("v4", "v8")
        )
        f4_ok = inside_range and outside_hull and in_valid_subtree
        rows.append(["F4", "v4,v8 invalid but under valid v2", f4_ok])

        # F5: the short/long-path clamp — the red vertex is never output.
        tree5 = figure5_tree()
        inputs = ["u1", "u2", "u3", "v6", "v7", "u1", "u2"]
        f5_ok = True
        for schedule in ([2], [1, 1]):
            outcome = run_tree_aa(
                tree5, inputs, 2, adversary=BurnScheduleAdversary(schedule)
            )
            f5_ok = f5_ok and outcome.achieved_aa
            f5_ok = f5_ok and "w_red" not in set(outcome.honest_outputs.values())
        rows.append(["F5", "clamp avoids the red vertex; AA holds", f5_ok])

        return rows

    rows = benchmark.pedantic(reproduce, rounds=1, iterations=1)
    report.table(
        "F1-F5",
        "Paper figures regenerated as executable scenarios",
        ["figure", "claim", "reproduced"],
        rows,
    )
    assert all(row[2] for row in rows)


def test_bench_list_construction(benchmark):
    from repro.trees import random_tree

    tree = random_tree(2000, seed=0)
    euler = benchmark(lambda: list_construction(tree))
    assert len(euler) == 2 * tree.n_vertices - 1


def test_bench_convex_hull(benchmark):
    from repro.trees import random_tree
    import random as _random

    tree = random_tree(2000, seed=1)
    rng = _random.Random(0)
    anchors = [rng.choice(tree.vertices) for _ in range(10)]
    hull = benchmark(lambda: convex_hull(tree, anchors))
    assert set(anchors) <= hull
