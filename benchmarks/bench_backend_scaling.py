"""Experiment S1: reference-vs-batch engine wall-clock scaling on RealAA.

The reference simulator materialises every message of every round —
Θ(n³) work per execution once the echo round's O(n) payloads are counted
— so it tops out around ``n ≈ 10³``.  The batch engine
(:mod:`repro.engine`) replays the same protocol as array operations over
party *classes*, making each round O(n), and the two are proven
observably identical by the ``tests/engine`` conformance suite.  This
experiment quantifies what that buys: wall-clock for one fault-free
RealAA execution per backend across ``n = 64 … 8192``, with the
reference engine measured only up to ``n = 1024`` (its largest point
alone takes minutes; beyond that only the batch column continues).

Expected shape: the reference column grows ~cubically, the batch column
stays near-flat, and the speedup at ``n = 1024`` exceeds 10× by several
orders of magnitude.  Output equality is asserted point-by-point wherever
both engines ran.
"""

from __future__ import annotations

import time

from repro.core.api import run_real_aa
from repro.net.network import TraceLevel

SPREAD = 8.0
EPSILON = 1.0

#: Network sizes per backend.  The reference list stops where single
#: executions cross into minutes; the batch list keeps going.
REFERENCE_SIZES = [64, 256, 1024]
BATCH_SIZES = [64, 256, 1024, 2048, 4096, 8192]

#: The acceptance threshold: the batch engine must be at least this much
#: faster than the reference engine at every shared point with n >= 1024.
MIN_SPEEDUP_AT_1024 = 10.0


def worst_case_inputs(n: int) -> list:
    """Half the parties at 0, half at ``SPREAD`` — maximal initial spread."""
    return [0.0 if i % 2 == 0 else SPREAD for i in range(n)]


def timed_run(n: int, backend: str):
    """(wall seconds, outcome) of one fault-free RealAA execution."""
    inputs = worst_case_inputs(n)
    started = time.perf_counter()
    outcome = run_real_aa(
        inputs,
        max(1, n // 4),
        epsilon=EPSILON,
        known_range=SPREAD,
        trace_level=TraceLevel.AGGREGATE,
        backend=backend,
    )
    return time.perf_counter() - started, outcome


def test_s1_table(report, benchmark):
    def sweep():
        batch_points = {}
        for n in BATCH_SIZES:
            seconds, outcome = timed_run(n, "batch")
            assert outcome.achieved_aa
            batch_points[n] = (seconds, outcome)

        rows = []
        for n in BATCH_SIZES:
            batch_seconds, batch_outcome = batch_points[n]
            if n in REFERENCE_SIZES:
                ref_seconds, ref_outcome = timed_run(n, "reference")
                # The engines must agree bit-for-bit before their clocks
                # are worth comparing.
                assert ref_outcome.execution.outputs == batch_outcome.execution.outputs
                assert ref_outcome.rounds == batch_outcome.rounds
                speedup = ref_seconds / batch_seconds
                if n >= 1024:
                    assert speedup >= MIN_SPEEDUP_AT_1024
                rows.append(
                    [
                        n,
                        max(1, n // 4),
                        batch_outcome.rounds,
                        f"{ref_seconds:.3f}",
                        f"{batch_seconds:.4f}",
                        f"{speedup:.0f}x",
                    ]
                )
            else:
                rows.append(
                    [
                        n,
                        max(1, n // 4),
                        batch_outcome.rounds,
                        "-",
                        f"{batch_seconds:.4f}",
                        "-",
                    ]
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.table(
        "S1",
        "RealAA wall-clock: reference simulator vs batch engine",
        ["n", "t", "rounds", "reference s", "batch s", "speedup"],
        rows,
        notes=(
            "Fault-free RealAA(1), known range 8, worst-case bimodal\n"
            "inputs, TraceLevel.AGGREGATE.  Reference column is the\n"
            "per-message simulator (~n^3 per execution: n^2 messages per\n"
            "round, O(n) echo payloads); batch column is repro.engine's\n"
            "class-collapsed array execution (~n per round).  Outputs are\n"
            "asserted identical at every shared point; the tests/engine\n"
            "conformance suite pins the equivalence across adversaries,\n"
            "traces, and error paths.  Gate: speedup >= 10x at n >= 1024."
        ),
    )
