"""Ablation A2: gradecast distribution vs naive point-to-point sends.

Gradecast costs 3 rounds per iteration but makes equivocation *detectable*
(and hence, with memory, finitely repeatable).  Naive distribution costs 1
round but equivocation is invisible: the SplitBroadcast adversary sustains
the worst-case halving factor forever and no detection ever happens.  The
table shows the per-iteration convergence factors and the total rounds to
reach ε under sustained attack.
"""

from __future__ import annotations

import math

import pytest

from repro.adversary.realaa_attacks import (
    BurnScheduleAdversary,
    SplitBroadcastAdversary,
)
from repro.analysis import convergence_factors, honest_value_ranges
from repro.baselines import IterativeRealAAParty
from repro.net import run_protocol
from repro.protocols import RealAAParty

N, T = 7, 2
SPREAD = 1024.0
EPSILON = 1.0


def _rounds_to_epsilon(ranges, rounds_per_iteration):
    for i, value in enumerate(ranges):
        if value <= EPSILON:
            return i * rounds_per_iteration
    return None


def test_a2_table(report, benchmark):
    inputs = [0.0 if i % 2 == 0 else SPREAD for i in range(N)]

    def sweep():
        rows = []

        # Gradecast + memory (RealAA) under its worst (burn) attack.
        result = run_protocol(
            N,
            T,
            lambda pid: RealAAParty(pid, N, T, inputs[pid], iterations=12),
            adversary=BurnScheduleAdversary([1] * 12, reuse_burners=True),
        )
        ranges = honest_value_ranges(result)
        rows.append(
            [
                "gradecast + memory (RealAA)",
                3,
                _rounds_to_epsilon(ranges, 3),
                min(1.0, max(convergence_factors(ranges) or [0.0])),
                ranges[-1],
                True,
            ]
        )
        assert ranges[-1] <= EPSILON

        # Naive distribution under sustained undetectable equivocation.
        result = run_protocol(
            N,
            T,
            lambda pid: IterativeRealAAParty(
                pid, N, T, inputs[pid], iterations=12, distribution="naive"
            ),
            adversary=SplitBroadcastAdversary(),
        )
        naive_ranges = honest_value_ranges(result)
        factors = convergence_factors(naive_ranges)
        rows.append(
            [
                "naive sends (undetectable)",
                1,
                _rounds_to_epsilon(naive_ranges, 1),
                max(factors),
                naive_ranges[-1],
                False,
            ]
        )
        # every iteration still suffers the worst-case halving factor
        assert all(f >= 0.4 for f in factors if f > 0)

        # Naive + fault-free for reference.
        result = run_protocol(
            N,
            0,
            lambda pid: IterativeRealAAParty(
                pid, N, 0, inputs[pid], iterations=12, distribution="naive"
            ),
        )
        clean = honest_value_ranges(result)
        rows.append(
            [
                "naive sends, fault-free",
                1,
                _rounds_to_epsilon(clean, 1),
                max(convergence_factors(clean) or [0.0]),
                clean[-1],
                False,
            ]
        )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.table(
        "A2",
        f"Ablation: distribution mechanism under sustained attack (D={SPREAD:g}, eps={EPSILON:g})",
        [
            "variant",
            "rounds/iter",
            "rounds to eps",
            "worst iter factor",
            "final range",
            "detects equivocation",
        ],
        rows,
        notes=(
            "Expected shape: gradecast pays 3 rounds/iteration but caps the\n"
            "adversary at t total burns (fast collapse); naive sends are\n"
            "cheaper per iteration but the SplitBroadcast adversary keeps\n"
            "the worst-case ~1/2 factor every iteration, undetected, so the\n"
            "rounds-to-eps scale as log2(D/eps) forever."
        ),
    )


def test_bench_naive_iteration(benchmark):
    inputs = [0.0 if i % 2 == 0 else SPREAD for i in range(N)]
    result = benchmark.pedantic(
        lambda: run_protocol(
            N,
            T,
            lambda pid: IterativeRealAAParty(
                pid, N, T, inputs[pid], iterations=10, distribution="naive"
            ),
            adversary=SplitBroadcastAdversary(),
        ),
        rounds=3,
        iterations=1,
    )
    assert result.trace.rounds_executed == 10
