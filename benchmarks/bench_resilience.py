"""Experiment T5 (Section 2): the t < n/3 resilience threshold.

Sweeps network sizes and corruption counts: for every ``t < n/3`` and every
adversary strategy, TreeAA must achieve all three AA properties; at
``t ≥ n/3`` the protocol (correctly) refuses to instantiate, and the
underlying trimmed-mean rule demonstrably loses validity — the reason the
threshold is what it is.
"""

from __future__ import annotations

import random

import pytest

from repro.adversary import RandomNoiseAdversary, SilentAdversary
from repro.adversary.realaa_attacks import BurnScheduleAdversary
from repro.core import TreeAAParty, run_tree_aa
from repro.protocols import trimmed_mean
from repro.trees import random_tree

ADVERSARIES = {
    "silent": lambda t: SilentAdversary(),
    "noise": lambda t: RandomNoiseAdversary(seed=1),
    "burn": lambda t: BurnScheduleAdversary([1] * t if t else []),
}


def test_t5_table(report, benchmark):
    tree = random_tree(40, seed=3)

    def sweep():
        rows = []
        for n in (4, 7, 10, 13):
            for t in range((n - 1) // 3 + 1):
                rng = random.Random(n * 100 + t)
                inputs = [rng.choice(tree.vertices) for _ in range(n)]
                verdicts = []
                for name, factory in sorted(ADVERSARIES.items()):
                    outcome = run_tree_aa(tree, inputs, t, adversary=factory(t))
                    verdicts.append(outcome.achieved_aa)
                rows.append([n, t, "t < n/3", all(verdicts)])
                assert all(verdicts)
            # at the threshold, instantiation must fail
            t_bad = (n + 2) // 3
            if 3 * t_bad >= n:
                try:
                    TreeAAParty(0, n, t_bad, tree, tree.vertices[0])
                    refused = False
                except ValueError:
                    refused = True
                rows.append([n, t_bad, "t >= n/3 (refused)", refused])
                assert refused
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.table(
        "T5",
        "Resilience sweep: AA across all adversaries (random 40-vertex tree)",
        ["n", "t", "regime", "ok"],
        rows,
        notes=(
            "Paper claim: t < n/3 is the optimal threshold without\n"
            "cryptography.  Expected shape: universal success below the\n"
            "threshold; constructor-level refusal at and above it."
        ),
    )


def test_t5_why_the_threshold(report, benchmark):
    """Why n > 3t: with n = 3t an equivocating adversary keeps two honest
    trimmed cores completely disjoint — the one-iteration divergence equals
    the full honest range and convergence stalls forever.  With n = 3t + 1
    the same attack contracts the range by at least one honest value."""

    def probe():
        spread = 1.0
        rows = []
        for t in (1, 2, 4):
            for n in (3 * t, 3 * t + 1):
                honest = n - t
                # honest inputs split across the range; Byzantine equivocate:
                # they claim `spread` towards party A and 0 towards party B.
                base = [0.0] * (honest - honest // 2) + [spread] * (honest // 2)
                view_a = base + [spread] * t
                view_b = base + [0.0] * t
                divergence = abs(trimmed_mean(view_a, t) - trimmed_mean(view_b, t))
                rows.append([n, t, divergence, divergence < spread])
        return rows

    rows = benchmark.pedantic(probe, rounds=1, iterations=1)
    report.table(
        "T5b",
        "One-iteration divergence of trimmed means under equivocation",
        ["n", "t", "divergence (range=1)", "contracts"],
        rows,
        notes=(
            "Two honest views differ only in the t Byzantine entries.  At\n"
            "n = 3t the trimmed cores can be fully captured: divergence = 1\n"
            "(no contraction, ever).  At n = 3t + 1 at least one honest\n"
            "value anchors the core and the range contracts — this is the\n"
            "quantitative heart of the t < n/3 threshold."
        ),
    )
    for n, t, divergence, contracts in rows:
        if n == 3 * t:
            assert divergence == pytest.approx(1.0)
        else:
            assert contracts


def test_t5c_degradation_vs_drop_probability(report, benchmark):
    """Experiment T5c: graceful(ly measured) degradation under message loss.

    The fault-injection layer drops each honest message independently with
    probability p (an explicit model violation — synchronous AA assumes
    reliable channels).  Sweeping p charts where the guarantees actually
    die: output spread grows with p and the oracle success rate collapses,
    while p = 0 reproduces the clean baseline exactly.
    """
    from repro.resilience import Scenario, evaluate, execute_scenario

    drops = [0.0, 0.1, 0.2, 0.3, 0.45, 0.6]
    seeds = range(5)

    def sweep():
        rows = []
        for drop in drops:
            successes = 0
            spreads = []
            for seed in seeds:
                rng = random.Random(seed)
                inputs = tuple(round(rng.uniform(0, 10), 3) for _ in range(7))
                plan = None
                if drop > 0:
                    plan = {
                        "drop": drop,
                        "seed": seed,
                        "allow_model_violations": True,
                    }
                scenario = Scenario(
                    protocol="real-aa", n=7, t=2, inputs=inputs,
                    adversary="silent", corrupt=(1, 4), fault_plan=plan,
                )
                result = execute_scenario(scenario)
                successes += not evaluate(result)
                outputs = [
                    v for v in result.honest_outputs.values() if v is not None
                ]
                spreads.append(
                    max(outputs) - min(outputs) if outputs else float("nan")
                )
            rows.append(
                [
                    drop,
                    f"{successes}/{len(list(seeds))}",
                    round(sum(spreads) / len(spreads), 3),
                    successes,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.table(
        "T5c",
        "Degradation vs drop probability (RealAA, n=7, t=2, silent corruption)",
        ["drop p", "oracle success", "mean output spread", "successes"],
        rows,
        notes=(
            "Reliable channels (p=0) reproduce the clean guarantee; every\n"
            "honest-message drop rate past ~0.2 breaks eps-agreement for\n"
            "every sampled input vector.  The spread column is the damage\n"
            "metric: it rises from 0 towards the raw input spread."
        ),
    )
    by_drop = {row[0]: row for row in rows}
    assert by_drop[0.0][3] == 5  # lossless = fully clean
    assert by_drop[0.3][3] < 5  # heavy loss demonstrably violates
    assert by_drop[0.3][2] > by_drop[0.0][2]  # spread grows with p


def test_t5d_success_vs_corruption_ratio(report, benchmark):
    """Experiment T5d: the t < n/3 threshold, crossed from the outside.

    The parties keep a *legal* assumed tolerance (t = 3 for n = 12) while
    the adversary's actual corrupted set f grows past it — the resilience
    lab's t_assumed trick.  Success must be universal while f <= t and
    collapse exactly when f/n reaches 1/3, mirroring the impossibility
    bound without ever tripping a constructor guard.
    """
    from repro.resilience import Scenario, evaluate, execute_scenario

    n, t_assumed = 12, 3
    seeds = range(6)

    def sweep():
        rows = []
        for f in range(6):
            successes = 0
            for seed in seeds:
                rng = random.Random(100 + seed)
                inputs = tuple(round(rng.uniform(0, 10), 3) for _ in range(n))
                corrupt = tuple(sorted(rng.sample(range(n), f)))
                scenario = Scenario(
                    protocol="real-aa", n=n, t=t_assumed, inputs=inputs,
                    adversary="silent" if f else "none", corrupt=corrupt,
                )
                successes += not evaluate(execute_scenario(scenario))
            rows.append(
                [
                    f,
                    round(f / n, 3),
                    "f <= t" if f <= t_assumed else "f/n >= 1/3",
                    f"{successes}/{len(list(seeds))}",
                    successes,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.table(
        "T5d",
        "Oracle success vs actual corruption f (n=12, assumed t=3, silent)",
        ["f", "f/n", "regime", "oracle success", "successes"],
        rows,
        notes=(
            "The protocol never sees an illegal parameter: honest parties\n"
            "assume t=3 throughout.  The cliff sits exactly at f/n = 1/3 —\n"
            "below it every seeded run satisfies all five oracles, at and\n"
            "above it none do.  This is Section 2's threshold, measured."
        ),
    )
    for f, ratio, regime, label, successes in rows:
        if f <= t_assumed:
            assert successes == 6, (f, label)
        else:
            assert successes == 0, (f, label)
