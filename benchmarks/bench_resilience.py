"""Experiment T5 (Section 2): the t < n/3 resilience threshold.

Sweeps network sizes and corruption counts: for every ``t < n/3`` and every
adversary strategy, TreeAA must achieve all three AA properties; at
``t ≥ n/3`` the protocol (correctly) refuses to instantiate, and the
underlying trimmed-mean rule demonstrably loses validity — the reason the
threshold is what it is.
"""

from __future__ import annotations

import random

import pytest

from repro.adversary import RandomNoiseAdversary, SilentAdversary
from repro.adversary.realaa_attacks import BurnScheduleAdversary
from repro.core import TreeAAParty, run_tree_aa
from repro.protocols import trimmed_mean
from repro.trees import random_tree

ADVERSARIES = {
    "silent": lambda t: SilentAdversary(),
    "noise": lambda t: RandomNoiseAdversary(seed=1),
    "burn": lambda t: BurnScheduleAdversary([1] * t if t else []),
}


def test_t5_table(report, benchmark):
    tree = random_tree(40, seed=3)

    def sweep():
        rows = []
        for n in (4, 7, 10, 13):
            for t in range((n - 1) // 3 + 1):
                rng = random.Random(n * 100 + t)
                inputs = [rng.choice(tree.vertices) for _ in range(n)]
                verdicts = []
                for name, factory in sorted(ADVERSARIES.items()):
                    outcome = run_tree_aa(tree, inputs, t, adversary=factory(t))
                    verdicts.append(outcome.achieved_aa)
                rows.append([n, t, "t < n/3", all(verdicts)])
                assert all(verdicts)
            # at the threshold, instantiation must fail
            t_bad = (n + 2) // 3
            if 3 * t_bad >= n:
                try:
                    TreeAAParty(0, n, t_bad, tree, tree.vertices[0])
                    refused = False
                except ValueError:
                    refused = True
                rows.append([n, t_bad, "t >= n/3 (refused)", refused])
                assert refused
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.table(
        "T5",
        "Resilience sweep: AA across all adversaries (random 40-vertex tree)",
        ["n", "t", "regime", "ok"],
        rows,
        notes=(
            "Paper claim: t < n/3 is the optimal threshold without\n"
            "cryptography.  Expected shape: universal success below the\n"
            "threshold; constructor-level refusal at and above it."
        ),
    )


def test_t5_why_the_threshold(report, benchmark):
    """Why n > 3t: with n = 3t an equivocating adversary keeps two honest
    trimmed cores completely disjoint — the one-iteration divergence equals
    the full honest range and convergence stalls forever.  With n = 3t + 1
    the same attack contracts the range by at least one honest value."""

    def probe():
        spread = 1.0
        rows = []
        for t in (1, 2, 4):
            for n in (3 * t, 3 * t + 1):
                honest = n - t
                # honest inputs split across the range; Byzantine equivocate:
                # they claim `spread` towards party A and 0 towards party B.
                base = [0.0] * (honest - honest // 2) + [spread] * (honest // 2)
                view_a = base + [spread] * t
                view_b = base + [0.0] * t
                divergence = abs(trimmed_mean(view_a, t) - trimmed_mean(view_b, t))
                rows.append([n, t, divergence, divergence < spread])
        return rows

    rows = benchmark.pedantic(probe, rounds=1, iterations=1)
    report.table(
        "T5b",
        "One-iteration divergence of trimmed means under equivocation",
        ["n", "t", "divergence (range=1)", "contracts"],
        rows,
        notes=(
            "Two honest views differ only in the t Byzantine entries.  At\n"
            "n = 3t the trimmed cores can be fully captured: divergence = 1\n"
            "(no contraction, ever).  At n = 3t + 1 at least one honest\n"
            "value anchors the core and the range contracts — this is the\n"
            "quantitative heart of the t < n/3 threshold."
        ),
    )
    for n, t, divergence, contracts in rows:
        if n == 3 * t:
            assert divergence == pytest.approx(1.0)
        else:
            assert contracts
