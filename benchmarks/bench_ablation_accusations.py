"""Ablation A3: quorum accusations vs the asymmetric-trust attack.

A reproduction finding.  RealAA's detection rule — blacklist a sender your
own gradecast graded ≤ 1 — leaves a loophole: a sender graded 2 by an
honest group A and 1 by the rest is blacklisted only by the latter, and by
behaving consistently forever after it keeps A's multisets one entry apart
from everyone else's at **zero** further detection cost.  The sustained
per-iteration factor (≈ 1/2 at n = 3t + 1) breaks the once-per-party burn
accounting behind the round budget.

The defense implemented here (and on by default): parties piggyback their
BAD sets on value messages; ``t + 1`` accusers — necessarily including an
honest one — globalise the blacklisting.  Whenever the attack could bite,
the accusing group has ≥ t + 1 honest members, so the quorum lands in the
very next iteration.
"""

from __future__ import annotations

import pytest

from repro.adversary.realaa_attacks import AsymmetricTrustAdversary
from repro.analysis import honest_value_ranges
from repro.net import run_protocol
from repro.protocols import RealAAParty

N, T = 7, 2
SPREAD = 1024.0
ITERATIONS = 8


def run_variant(accusations: bool):
    inputs = [0.0 if i % 2 == 0 else SPREAD for i in range(N)]
    result = run_protocol(
        N,
        T,
        lambda pid: RealAAParty(
            pid, N, T, inputs[pid], iterations=ITERATIONS, accusations=accusations
        ),
        adversary=AsymmetricTrustAdversary(),
    )
    return honest_value_ranges(result)


def test_a3_table(report, benchmark):
    def sweep():
        rows = []
        series = {}
        for label, accusations in (
            ("RealAA + quorum accusations (default)", True),
            ("RealAA, grade-only detection (ablated)", False),
        ):
            ranges = run_variant(accusations)
            series[label] = ranges
            rows.append(
                [label]
                + [ranges[i] for i in range(0, ITERATIONS + 1, 2)]
                + [ranges[-1] <= 1.0]
            )
        assert series["RealAA + quorum accusations (default)"][-1] == 0.0
        assert series["RealAA, grade-only detection (ablated)"][-1] > 1.0
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    columns = (
        ["variant"]
        + [f"iter {i}" for i in range(0, ITERATIONS + 1, 2)]
        + ["eps-agree"]
    )
    report.table(
        "A3",
        "Ablation: quorum accusations vs the asymmetric-trust attack "
        f"(n={N}, t={T}, D={SPREAD:g})",
        columns,
        rows,
        notes=(
            "The asymmetric-trust adversary burns one party in iteration 0\n"
            "(keeping the range positive) and sets up grade-2/grade-1 trust\n"
            "asymmetry with the rest.  Ablated: the trusted parties sustain\n"
            "a 1/2 factor every iteration forever — epsilon-agreement fails\n"
            "within the round budget.  Default: the t+1 blacklisting honest\n"
            "parties reach the accusation quorum in iteration 1 and the\n"
            "range collapses to exactly 0."
        ),
    )


def test_bench_attack_run(benchmark):
    ranges = benchmark.pedantic(lambda: run_variant(True), rounds=3, iterations=1)
    assert ranges[-1] == 0.0
