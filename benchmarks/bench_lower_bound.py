"""Experiment T4 (Theorem 2 / Corollary 1): the round lower bound on trees.

Two parts:

* the *arithmetic* of Theorem 2 — for path trees of growing diameter,
  tabulate the explicit bound ``log2 D / log2 log2 D^δ``, the sharpest
  integer consequence of Corollary 1 (smallest ``R`` with ``K(R, D) ≤ 1``),
  and TreeAA's measured rounds, whose ratio to the bound stays bounded
  (asymptotic optimality for ``D ∈ |V|^Θ(1)``, ``t ∈ Θ(n)``);
* the *mechanism* of Theorem 1 — run the executable chain-of-views
  construction against the one-round output rules this library actually
  uses and confirm the forced gap meets ``K(1, D)``.
"""

from __future__ import annotations

import pytest

from repro.adversary.realaa_attacks import BurnScheduleAdversary
from repro.analysis import spread_inputs
from repro.core import run_tree_aa
from repro.lowerbound import (
    demonstrate_real,
    demonstrate_tree,
    fekete_K,
    min_rounds_required,
    safe_area_midpoint_rule,
    theorem2_lower_bound,
    trimmed_mean_rule,
)
from repro.trees import path_tree

import random

N, T = 13, 4

DIAMETERS = [15, 63, 255, 1023]


def test_t4_round_bound_table(report, benchmark):
    def sweep():
        rows = []
        for size in DIAMETERS:
            tree = path_tree(size + 1)
            rng = random.Random(size)
            inputs = spread_inputs(tree, N, rng)
            outcome = run_tree_aa(
                tree, inputs, T, adversary=BurnScheduleAdversary([1] * T)
            )
            thm2 = theorem2_lower_bound(float(size), N, T)
            integer_bound = min_rounds_required(float(size), N, T)
            rows.append(
                [
                    size,
                    round(thm2, 2),
                    integer_bound,
                    outcome.rounds,
                    round(outcome.rounds / thm2, 2),
                    outcome.achieved_aa,
                ]
            )
            assert outcome.achieved_aa
            assert outcome.rounds >= integer_bound  # no protocol can beat it
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.table(
        "T4",
        f"Lower bound vs TreeAA rounds on paths (n={N}, t={T})",
        [
            "D(T)",
            "Thm-2 bound",
            "Corollary-1 integer bound",
            "TreeAA rounds",
            "rounds / Thm-2",
            "AA ok",
        ],
        rows,
        notes=(
            "Paper claim (Thm 2): Omega(log D / (log log D + log (n+t)/t))\n"
            "rounds are necessary.  Expected shape: TreeAA's measured rounds\n"
            "stay within a bounded factor of the lower bound as D grows —\n"
            "asymptotic optimality for D in |V|^Theta(1), t in Theta(n)."
        ),
    )


def test_t4_chain_gap_table(report, benchmark):
    """Theorem 1's mechanism: the chain forces a gap ≥ K(1, D) on real
    one-round rules and on the tree safe-area rule."""

    def sweep():
        rows = []
        for n, t in ((7, 2), (13, 4), (25, 8)):
            demo = demonstrate_real(trimmed_mean_rule(t), n, t, 0.0, 1.0)
            k = fekete_K(1, 1.0, n, t)
            rows.append(
                ["real/trimmed-mean", f"n={n},t={t}", demo.max_gap, demo.guaranteed_gap, k]
            )
            assert demo.max_gap >= k - 1e-12

            tree = path_tree(101)
            tree_demo = demonstrate_tree(safe_area_midpoint_rule(tree, t), tree, n, t)
            k_tree = fekete_K(1, 100.0, n, t)
            rows.append(
                [
                    "tree/safe-midpoint",
                    f"n={n},t={t}",
                    tree_demo.max_gap,
                    tree_demo.guaranteed_gap,
                    k_tree,
                ]
            )
            assert tree_demo.max_gap >= k_tree - 1e-12
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.table(
        "T4b",
        "Chain-of-views forced gaps for one-round rules (Theorem 1 / Corollary 1)",
        ["rule", "network", "forced gap", "chain guarantee D/s", "Fekete K(1,D)"],
        rows,
        notes=(
            "Two honest parties inside one adversarial execution of the\n"
            "chain are forced to output this far apart after ONE round —\n"
            "matching Equation (1)'s K(1, D) = D*t/(n+t) up to the chain\n"
            "granularity."
        ),
    )


def test_bench_chain_construction(benchmark):
    tree = path_tree(201)
    rule = safe_area_midpoint_rule(tree, 4)
    demo = benchmark.pedantic(
        lambda: demonstrate_tree(rule, tree, 13, 4), rounds=3, iterations=1
    )
    assert demo.max_gap >= demo.guaranteed_gap
