"""Experiment T10: the authenticated setting (the paper's §7 note).

"Our reduction is independent of the number of corrupted parties": with a
``t < n/2`` real-valued engine (here Dolev–Strong exact AA via simulated
signatures), TreeAA tolerates every ``t < n/2`` — corruption levels at
which the unauthenticated protocol provably cannot exist.  The table
sweeps ``t`` across both thresholds and reports rounds and outcomes.
"""

from __future__ import annotations

import random

import pytest

from repro.adversary import ChaosAdversary, PassiveAdversary
from repro.authenticated import (
    DSEquivocatorAdversary,
    SignatureAuthority,
    run_auth_tree_aa,
)
from repro.core import TreeAAParty, run_tree_aa
from repro.trees import random_tree


def test_t10_table(report, benchmark):
    tree = random_tree(25, seed=10)

    def sweep():
        rows = []
        for n in (4, 7, 9, 13):
            for t in range(0, (n - 1) // 2 + 1):
                rng = random.Random(n * 10 + t)
                inputs = [rng.choice(tree.vertices) for _ in range(n)]
                # unauthenticated TreeAA: only for t < n/3
                if 3 * t < n:
                    unauth = run_tree_aa(
                        tree, inputs, t, adversary=PassiveAdversary()
                    )
                    unauth_cell = f"{unauth.rounds} rounds"
                    assert unauth.achieved_aa
                else:
                    try:
                        TreeAAParty(0, n, t, tree, tree.vertices[0])
                        unauth_cell = "BUG"
                    except ValueError:
                        unauth_cell = "refused (t >= n/3)"
                auth = run_auth_tree_aa(
                    tree, inputs, t, adversary=PassiveAdversary()
                )
                assert auth.achieved_aa
                rows.append(
                    [
                        n,
                        t,
                        unauth_cell,
                        f"{auth.rounds} rounds",
                        auth.achieved_aa,
                    ]
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.table(
        "T10",
        "TreeAA thresholds: unauthenticated (t < n/3) vs authenticated (t < n/2)",
        ["n", "t", "unauthenticated TreeAA", "authenticated TreeAA", "AA ok"],
        rows,
        notes=(
            "Paper note (Section 7): the reduction is engine-agnostic; any\n"
            "real-valued AA at threshold X gives tree AA at threshold X.\n"
            "Here the Dolev-Strong exact engine costs 2(t+1) rounds — not\n"
            "round-optimal (the paper points to Proxcensus for that) but\n"
            "correct at every t < n/2, including the t >= n/3 rows the\n"
            "unauthenticated protocol must refuse."
        ),
    )


def test_t10b_attacks(report, benchmark):
    """The authenticated protocol under its natural attacks."""
    tree = random_tree(20, seed=3)
    n, t = 5, 2

    def sweep():
        rows = []
        rng = random.Random(1)
        inputs = [rng.choice(tree.vertices) for _ in range(n)]
        for name, factory in (
            ("passive", lambda: PassiveAdversary()),
            ("chaos", lambda: ChaosAdversary(seed=8)),
            (
                "DS equivocation",
                lambda: DSEquivocatorAdversary(
                    values=lambda pid: (tree.vertices[0], tree.vertices[-1])
                ),
            ),
        ):
            outcome = run_auth_tree_aa(tree, inputs, t, adversary=factory())
            rows.append(
                [
                    name,
                    outcome.rounds,
                    outcome.achieved_aa,
                    len(set(outcome.honest_outputs.values())),
                ]
            )
            assert outcome.achieved_aa
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.table(
        "T10b",
        f"Authenticated TreeAA under attack (n={n}, t={t} >= n/3)",
        ["adversary", "rounds", "AA ok", "distinct outputs"],
        rows,
        notes=(
            "The exact engine yields a single common output vertex in every\n"
            "run — equivocating signers collapse to a consistent ⊥ and are\n"
            "excluded from the multiset."
        ),
    )


def test_bench_auth_tree_aa(benchmark):
    tree = random_tree(25, seed=10)
    n, t = 9, 4
    rng = random.Random(2)
    inputs = [rng.choice(tree.vertices) for _ in range(n)]
    outcome = benchmark.pedantic(
        lambda: run_auth_tree_aa(tree, inputs, t, adversary=PassiveAdversary()),
        rounds=3,
        iterations=1,
    )
    assert outcome.achieved_aa
