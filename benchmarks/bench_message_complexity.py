"""Experiment T8: message complexity of RealAA and TreeAA.

The paper cites [6]'s message complexity of ``O(R·n³)`` — compared with
[19]'s ``O(n^R)`` — as one reason RealAA is the right building block.  In
this implementation the shape shows up as: ``n²`` point-to-point messages
per round (all-to-all), each value round carrying ``O(1)`` units and each
echo/support round carrying ``O(n)``-entry vectors, i.e. ``Θ(n³)`` payload
units per iteration.  The sweep verifies both slopes.
"""

from __future__ import annotations

import pytest

from repro.adversary import SilentAdversary
from repro.core import run_real_aa, run_tree_aa
from repro.net import run_protocol
from repro.protocols import RealAAParty
from repro.trees import random_tree

import random


def run_realaa_trace(n, t, iterations):
    inputs = [0.0 if i % 2 == 0 else 100.0 for i in range(n)]
    result = run_protocol(
        n,
        t,
        lambda pid: RealAAParty(pid, n, t, inputs[pid], iterations=iterations),
        adversary=SilentAdversary(),
    )
    return result.trace


def test_t8_table(report, benchmark):
    iterations = 3

    def sweep():
        rows = []
        for n, t in ((4, 1), (7, 2), (13, 4), (25, 8)):
            trace = run_realaa_trace(n, t, iterations)
            honest = n - t
            rounds = trace.rounds_executed
            messages_per_round = trace.honest_message_count / rounds
            units_per_iteration = trace.honest_payload_units / iterations
            rows.append(
                [
                    f"n={n},t={t}",
                    rounds,
                    trace.honest_message_count,
                    round(messages_per_round / (honest * n), 2),
                    trace.honest_payload_units,
                    round(units_per_iteration / (honest * n * n), 2),
                ]
            )
            # n^2 messages per round (honest portion: (n-t) senders x n)
            assert messages_per_round == honest * n
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.table(
        "T8",
        f"RealAA message complexity, {iterations} iterations, silent adversary",
        [
            "network",
            "rounds",
            "honest messages",
            "msgs/round / hn",
            "payload units",
            "units/iter / hn^2",
        ],
        rows,
        notes=(
            "Paper context: [6] costs O(R n^3) messages vs O(n^R) for [19].\n"
            "Expected shape: messages/round = (n-t)*n exactly (all-to-all);\n"
            "payload units per iteration = Theta(n^3) — the normalised\n"
            "column 'units/iter / hn^2' stays a small constant across n."
        ),
    )
    # the normalised n^3 coefficient stays within a factor 2 across the sweep
    coefficients = [row[5] for row in rows]
    assert max(coefficients) <= 2 * min(coefficients) + 1


def test_t8b_tree_aa_totals(report, benchmark):
    """End-to-end TreeAA totals across tree sizes: rounds × n² messages."""

    def sweep():
        rows = []
        n, t = 7, 2
        for size in (15, 63, 255):
            tree = random_tree(size, seed=1)
            rng = random.Random(size)
            inputs = [rng.choice(tree.vertices) for _ in range(n)]
            outcome = run_tree_aa(tree, inputs, t, adversary=SilentAdversary())
            trace = outcome.execution.trace
            rows.append(
                [
                    size,
                    outcome.rounds,
                    trace.honest_message_count,
                    trace.honest_message_count // max(1, outcome.rounds),
                    trace.honest_payload_units,
                    outcome.achieved_aa,
                ]
            )
            assert outcome.achieved_aa
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.table(
        "T8b",
        "TreeAA end-to-end traffic (n=7, t=2)",
        [
            "|V(T)|",
            "rounds",
            "messages",
            "messages/round",
            "payload units",
            "AA ok",
        ],
        rows,
        notes=(
            "Message complexity is independent of |V(T)| (values are list\n"
            "indices, not tree structures); only the round count moves."
        ),
    )


def test_bench_message_accounting_overhead(benchmark):
    trace = benchmark.pedantic(
        lambda: run_realaa_trace(13, 4, 3), rounds=3, iterations=1
    )
    assert trace.honest_payload_units > 0
