"""Experiment T9: the asynchronous state of the art ([33]) vs TreeAA.

The paper positions TreeAA against the asynchronous tree protocol of
Nowak–Rybicki: ``O(log D)`` iterations there (each a reliable-broadcast +
witness exchange) vs ``O(log V / log log V)`` synchronous rounds here.
This bench runs the *actual* asynchronous protocol — Bracha RBC, witness
technique, safe-area midpoints, adversarial scheduling — and tabulates its
iteration counts and traffic against TreeAA's.
"""

from __future__ import annotations

import random

import pytest

from repro.adversary import SilentAdversary
from repro.analysis import tree_agreement, tree_validity
from repro.asynchrony import (
    AsyncNoiseAdversary,
    AsyncTreeAAParty,
    RandomScheduler,
    run_async_protocol,
)
from repro.core import run_tree_aa
from repro.trees import diameter, path_tree

N, T = 7, 2


def run_async_tree(tree, inputs, seed=0):
    return run_async_protocol(
        N,
        T,
        lambda pid: AsyncTreeAAParty(pid, N, T, tree, inputs[pid]),
        adversary=AsyncNoiseAdversary(seed=seed),
        scheduler=RandomScheduler(seed),
        max_steps=2_000_000,
    )


def test_t9_table(report, benchmark):
    def sweep():
        rows = []
        for size in (16, 64, 256):
            tree = path_tree(size)
            rng = random.Random(size)
            inputs = [rng.choice(tree.vertices) for _ in range(N)]

            async_result = run_async_tree(tree, inputs)
            assert async_result.completed
            async_outputs = list(async_result.honest_outputs.values())
            honest_inputs = [inputs[p] for p in sorted(async_result.honest)]
            assert tree_validity(tree, honest_inputs, async_outputs)
            assert tree_agreement(tree, async_outputs)
            iterations = async_result.parties[0].iterations

            sync_outcome = run_tree_aa(tree, inputs, T, adversary=SilentAdversary())
            assert sync_outcome.achieved_aa

            rows.append(
                [
                    size - 1,
                    iterations,
                    async_result.trace.honest_message_count,
                    sync_outcome.rounds,
                    sync_outcome.execution.trace.honest_message_count,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.table(
        "T9",
        f"Async [33]-style tree AA vs synchronous TreeAA (n={N}, t={T})",
        [
            "D(T)",
            "async iterations",
            "async messages",
            "TreeAA rounds",
            "TreeAA messages",
        ],
        rows,
        notes=(
            "Paper context: O(log D) iterations is the asynchronous state\n"
            "of the art; TreeAA's synchronous rounds saturate at 6(t+1)\n"
            "here.  Expected shape: async iterations grow by +2 per 4x\n"
            "diameter (log2), TreeAA rounds stay flat; the async protocol\n"
            "pays heavily in messages for its reliable-broadcast substrate."
        ),
    )
    assert rows[-1][1] > rows[0][1]  # async grows with D
    assert rows[-1][3] == rows[0][3]  # TreeAA saturated at this (n, t)


def test_bench_async_tree_run(benchmark):
    tree = path_tree(33)
    rng = random.Random(0)
    inputs = [rng.choice(tree.vertices) for _ in range(N)]
    result = benchmark.pedantic(
        lambda: run_async_tree(tree, inputs), rounds=1, iterations=1
    )
    assert result.completed
