"""Ablation A1: the BAD-set memory is what beats the 2^-R outline.

Identical distribution substrate (gradecast), identical sustained
equivocation attack; the only difference is whether detected equivocators
are remembered.  With memory the adversary's budget is consumed after
``t`` burns and the range collapses; without it the same two parties
re-equivocate forever and convergence is pinned at the halving rate.
"""

from __future__ import annotations

import pytest

from repro.adversary.realaa_attacks import BurnScheduleAdversary
from repro.analysis import honest_value_ranges
from repro.baselines import IterativeRealAAParty
from repro.net import run_protocol
from repro.protocols import RealAAParty

N, T = 7, 2
SPREAD = 1024.0
ITERATIONS = 8


def run_variant(memory: bool, update: str):
    inputs = [0.0 if i % 2 == 0 else SPREAD for i in range(N)]
    adversary = BurnScheduleAdversary([T] * ITERATIONS, reuse_burners=True)
    if update == "trimmed-mean":
        factory = lambda pid: RealAAParty(  # noqa: E731
            pid, N, T, inputs[pid], iterations=ITERATIONS
        )
    else:
        factory = lambda pid: IterativeRealAAParty(  # noqa: E731
            pid, N, T, inputs[pid], iterations=ITERATIONS, memory=memory
        )
    result = run_protocol(N, T, factory, adversary=adversary)
    return honest_value_ranges(result)


def test_a1_table(report, benchmark):
    def sweep():
        variants = [
            ("RealAA (memory, trimmed mean)", True, "trimmed-mean"),
            ("outline + memory (midpoint)", True, "midpoint"),
            ("outline, memoryless (midpoint)", False, "midpoint"),
        ]
        rows = []
        series = {}
        for label, memory, update in variants:
            ranges = run_variant(memory, update)
            series[label] = ranges
            rows.append(
                [label]
                + [ranges[i] for i in range(0, ITERATIONS + 1, 2)]
                + [ranges[-1]]
            )
        # With memory the attack budget runs out: exact collapse.
        assert series["RealAA (memory, trimmed mean)"][-1] == 0.0
        assert series["outline + memory (midpoint)"][-1] == 0.0
        # Without memory the adversary sustains divergence to the end.
        assert series["outline, memoryless (midpoint)"][-1] > 0.0
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    columns = ["variant"] + [f"iter {i}" for i in range(0, ITERATIONS + 1, 2)] + [
        "final"
    ]
    report.table(
        "A1",
        f"Ablation: detection memory under sustained equivocation (D={SPREAD:g})",
        columns,
        rows,
        notes=(
            "Same gradecast substrate, same adversary re-equivocating every\n"
            "iteration.  Expected shape: memory variants hit range 0 once\n"
            "the t-burn budget is spent (iteration <= t+1); the memoryless\n"
            "outline still has positive range after 8 iterations, halving\n"
            "at best — the paper's core argument for why RealAA matches\n"
            "Fekete's bound and the outline cannot."
        ),
    )


def test_bench_memoryless_run(benchmark):
    result = benchmark.pedantic(
        lambda: run_variant(False, "midpoint"), rounds=3, iterations=1
    )
    assert result[0] == SPREAD
