"""Experiment T1 (Theorem 4): TreeAA round complexity vs the O(log D) baseline.

Regenerates the paper's headline comparison: TreeAA terminates within
``O(log |V| / log log |V|)`` rounds while the prior state of the art [33]
needs ``Θ(log D)`` iterations.  On large-diameter trees (paths,
caterpillars) TreeAA wins by a growing factor; on tiny-diameter trees
(stars) the baseline's log D is already constant and the crossover shows.
"""

from __future__ import annotations

import random

import pytest

from repro.adversary.realaa_attacks import BurnScheduleAdversary
from repro.analysis import spread_inputs, tree_spec_for
from repro.core import run_tree_aa
from repro.protocols import tree_aa_round_bound
from repro.trees import path_tree, random_tree

N, T = 7, 2

FAMILIES = ["path", "caterpillar", "random", "star"]

SIZES = [15, 63, 255, 1023]

#: The T1 grid as engine data (see repro.analysis.parallel): the explicit
#: per-point seed matches the historical serial sweep exactly.
T1_GRID = [
    {
        "family": family,
        "tree": tree_spec_for(family, size),
        "n": N,
        "t": T,
        "adversary": "burn",
        "seed": size,
    }
    for family in FAMILIES
    for size in SIZES
]


def test_t1_table(report, benchmark, sweep_config):
    rows = []

    def sweep():
        return sweep_config.run("t1-tree-aa", "tree-point", T1_GRID).rows

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for point in points:
        bound = tree_aa_round_bound(point["n_vertices"], point["tree_diameter"])
        winner = (
            "TreeAA"
            if point["tree_rounds"] < point["baseline_rounds"]
            else "baseline"
            if point["baseline_rounds"] < point["tree_rounds"]
            else "tie"
        )
        rows.append(
            [
                point["family"],
                point["n_vertices"],
                point["tree_diameter"],
                point["tree_rounds"],
                bound,
                point["baseline_rounds"],
                winner,
                point["tree_ok"] and point["baseline_ok"],
            ]
        )
        assert point["tree_ok"] and point["baseline_ok"]
        assert point["tree_rounds"] <= bound
    report.table(
        "T1",
        "TreeAA rounds vs iterated-safe-area baseline (n=7, t=2, burn adversary)",
        [
            "family",
            "|V(T)|",
            "D(T)",
            "TreeAA rounds",
            "Thm-4 bound",
            "baseline rounds",
            "winner",
            "AA ok",
        ],
        rows,
        notes=(
            "Paper claim: TreeAA needs O(log V / log log V) rounds vs the\n"
            "baseline's O(log D).  Expected shape: TreeAA wins on paths and\n"
            "caterpillars (D ~ V), loses on stars (D = 2), with its round\n"
            "count growing visibly slower than the baseline's in D."
        ),
    )


def test_t1b_asymptotic_budgets(report, benchmark):
    """Theorem 4's growth claim needs t ∈ Θ(n) scaling jointly with |V|:
    for fixed small t the protocol saturates at 6(t+1) rounds (every clean
    iteration collapses the range exactly), which is *better* than the
    asymptotic bound but hides its shape.  This table evaluates the exact
    deterministic protocol durations — TreeAA's two-phase round count vs
    the baseline's 3·(⌈log2 D⌉ + 2) — for path input spaces with n = 3t + 1
    growing alongside |V|.  Durations are what the synchronous protocol
    runs by construction; executions at the smaller sizes (T1) confirm they
    are exact."""
    from repro.baselines import tree_halving_iterations
    from repro.core.tree_aa import projection_phase_iterations
    from repro.core.paths_finder import paths_finder_duration
    from repro.protocols import ROUNDS_PER_ITERATION

    def sweep():
        rows = []
        for exponent, t in ((6, 4), (10, 8), (14, 16), (18, 32), (22, 64)):
            size = 2**exponent
            n = 3 * t + 1
            tree = path_tree(size + 1)
            tree_rounds = paths_finder_duration(tree, n, t) + (
                ROUNDS_PER_ITERATION * projection_phase_iterations(tree, n, t)
            )
            baseline_rounds = ROUNDS_PER_ITERATION * tree_halving_iterations(size)
            bound = tree_aa_round_bound(size + 1, size)
            rows.append(
                [
                    f"2^{exponent}",
                    f"n={n},t={t}",
                    tree_rounds,
                    bound,
                    baseline_rounds,
                    "TreeAA" if tree_rounds < baseline_rounds else "baseline",
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.table(
        "T1b",
        "Asymptotic round budgets on paths, t = Θ(n) scaling with D",
        [
            "D(T)",
            "network",
            "TreeAA rounds",
            "Thm-4 bound",
            "baseline rounds",
            "winner",
        ],
        rows,
        notes=(
            "Theorem 4 (vs [33]): with t = Theta(n) growing alongside D,\n"
            "TreeAA is O(log V / log log V) vs the baseline's O(log D).\n"
            "Measured shape: this implementation's PROVABLE budget (the\n"
            "conservative worst_burn_factor DP of DESIGN.md finding 1) grows\n"
            "at the same slope as the baseline here and stays a ~1.2x\n"
            "constant above it — the asymptotic separation is given away to\n"
            "the core-shrinkage accounting, not to the protocol: the\n"
            "*measured* rounds under the strongest implemented adversaries\n"
            "(T2's measured column) sit well below both."
        ),
    )
    # the budget tracks the baseline within a modest constant factor
    ratios = [row[2] / row[4] for row in rows]
    assert all(ratio < 1.5 for ratio in ratios)


@pytest.mark.parametrize("size", [63, 1023])
def test_bench_tree_aa_path(benchmark, size):
    """Time one full TreeAA execution on a path of the given size."""
    tree = path_tree(size)
    rng = random.Random(0)
    inputs = spread_inputs(tree, N, rng)

    def run():
        return run_tree_aa(
            tree, inputs, T, adversary=BurnScheduleAdversary([1] * T)
        )

    outcome = benchmark.pedantic(run, rounds=3, iterations=1)
    assert outcome.achieved_aa


def test_bench_tree_aa_random(benchmark):
    tree = random_tree(255, seed=7)
    rng = random.Random(1)
    inputs = spread_inputs(tree, N, rng)
    outcome = benchmark.pedantic(
        lambda: run_tree_aa(tree, inputs, T), rounds=3, iterations=1
    )
    assert outcome.achieved_aa
