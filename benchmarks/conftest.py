"""Shared infrastructure for the experiment benchmarks.

Every benchmark file regenerates one experiment from DESIGN.md's
per-experiment index.  The experiment's table is written to
``benchmarks/results/<exp_id>.txt`` (and echoed to stdout — visible with
``pytest benchmarks/ -s``); the pytest-benchmark machinery additionally
times the central operation of each experiment.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Iterable, Optional, Sequence

import pytest

from repro.analysis import format_table

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
DEFAULT_CACHE_DIR = os.path.join(RESULTS_DIR, "cache")


def pytest_addoption(parser: pytest.Parser) -> None:
    group = parser.getgroup("sweep", "parallel sweep engine")
    group.addoption(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for sweep benchmarks (0 = all cores, 1 = serial)",
    )
    group.addoption(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help="sweep result cache directory",
    )
    group.addoption(
        "--no-cache",
        action="store_true",
        help="disable the sweep result cache (recompute every grid point)",
    )


@dataclass(frozen=True)
class SweepConfig:
    """Engine knobs shared by every sweep benchmark in this directory."""

    jobs: int
    cache_dir: Optional[str]
    no_cache: bool

    def run(self, name: str, runner: str, grid, **kwargs):
        """Run a grid with this configuration (thin `run_grid` wrapper)."""
        from repro.analysis import run_grid

        return run_grid(
            name,
            runner,
            grid,
            jobs=self.jobs,
            cache_dir=self.cache_dir,
            no_cache=self.no_cache,
            **kwargs,
        )


@pytest.fixture(scope="session")
def sweep_config(request: pytest.FixtureRequest) -> SweepConfig:
    return SweepConfig(
        jobs=request.config.getoption("--jobs"),
        cache_dir=request.config.getoption("--cache-dir"),
        no_cache=request.config.getoption("--no-cache"),
    )


class Reporter:
    """Writes experiment tables to the results directory.

    Every table lands twice: human-readable ``results/<exp_id>.txt`` and
    machine-readable ``results/<exp_id>.jsonl`` (one ``table_row`` record
    per row, keyed by the column headers), so downstream analyses diff and
    plot experiment outputs without re-parsing rendered tables.  See
    docs/OBSERVABILITY.md.
    """

    JSONL_SCHEMA_VERSION = 1

    def __init__(self) -> None:
        os.makedirs(RESULTS_DIR, exist_ok=True)

    def table(
        self,
        exp_id: str,
        title: str,
        headers: Sequence[str],
        rows: Iterable[Sequence[Any]],
        notes: str = "",
    ) -> str:
        rows = [list(row) for row in rows]
        text = format_table(headers, rows, title=f"[{exp_id}] {title}")
        if notes:
            text += "\n" + notes
        path = os.path.join(RESULTS_DIR, f"{exp_id}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        self._write_jsonl(exp_id, title, headers, rows)
        print()
        print(text)
        return text

    def _write_jsonl(
        self,
        exp_id: str,
        title: str,
        headers: Sequence[str],
        rows: Sequence[Sequence[Any]],
    ) -> None:
        path = os.path.join(RESULTS_DIR, f"{exp_id}.jsonl")
        keys = [str(header) for header in headers]
        with open(path, "w") as handle:
            handle.write(
                json.dumps(
                    {
                        "type": "table_header",
                        "schema_version": self.JSONL_SCHEMA_VERSION,
                        "exp": exp_id,
                        "title": title,
                        "headers": keys,
                        "rows": len(rows),
                    },
                    sort_keys=True,
                )
                + "\n"
            )
            for index, row in enumerate(rows):
                handle.write(
                    json.dumps(
                        {
                            "type": "table_row",
                            "index": index,
                            "row": dict(zip(keys, row)),
                        },
                        sort_keys=True,
                        default=str,
                    )
                    + "\n"
                )


@pytest.fixture(scope="session")
def report() -> Reporter:
    return Reporter()
