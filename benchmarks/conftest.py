"""Shared infrastructure for the experiment benchmarks.

Every benchmark file regenerates one experiment from DESIGN.md's
per-experiment index.  The experiment's table is written to
``benchmarks/results/<exp_id>.txt`` (and echoed to stdout — visible with
``pytest benchmarks/ -s``); the pytest-benchmark machinery additionally
times the central operation of each experiment.
"""

from __future__ import annotations

import os
from typing import Any, Iterable, Sequence

import pytest

from repro.analysis import format_table

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


class Reporter:
    """Writes experiment tables to the results directory."""

    def __init__(self) -> None:
        os.makedirs(RESULTS_DIR, exist_ok=True)

    def table(
        self,
        exp_id: str,
        title: str,
        headers: Sequence[str],
        rows: Iterable[Sequence[Any]],
        notes: str = "",
    ) -> str:
        text = format_table(headers, rows, title=f"[{exp_id}] {title}")
        if notes:
            text += "\n" + notes
        path = os.path.join(RESULTS_DIR, f"{exp_id}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        print()
        print(text)
        return text


@pytest.fixture(scope="session")
def report() -> Reporter:
    return Reporter()
