"""Ablation A4: how much does the delivery schedule cost the async baseline?

The asynchronous adversary's other half is the scheduler.  This ablation
runs the [33]-style async tree protocol under increasingly hostile
delivery orders and reports the extra steps (and forced fairness
deliveries) each one causes — the price the witness technique pays to stay
correct under any schedule.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import tree_agreement, tree_validity
from repro.asynchrony import (
    AsyncNoiseAdversary,
    AsyncTreeAAParty,
    DelaySendersScheduler,
    FIFOScheduler,
    RandomScheduler,
    SplitScheduler,
    run_async_protocol,
)
from repro.trees import random_tree

N, T = 7, 2


def run_with(scheduler, tree, inputs):
    from repro.asynchrony import AsynchronousNetwork

    parties = {
        pid: AsyncTreeAAParty(pid, N, T, tree, inputs[pid]) for pid in range(N)
    }
    network = AsynchronousNetwork(
        parties,
        T,
        adversary=AsyncNoiseAdversary(seed=4),
        scheduler=scheduler,
        max_steps=1_000_000,
    )
    # instrument: track when each honest party first finishes
    first_done = {}
    original_pick = network._pick

    def picking():
        index = original_pick()
        for pid in range(N):
            if pid not in first_done and parties[pid].finished:
                first_done[pid] = network.trace.steps
        return index

    network._pick = picking
    result = network.run()
    result.first_done = first_done
    return result


def test_a4_table(report, benchmark):
    tree = random_tree(20, seed=6)
    rng = random.Random(2)
    inputs = [rng.choice(tree.vertices) for _ in range(N)]

    def sweep():
        rows = []
        baseline_steps = None
        for name, scheduler in (
            ("FIFO", FIFOScheduler()),
            ("random", RandomScheduler(3)),
            ("delay 2 honest senders", DelaySendersScheduler([0, 1])),
            ("partition 3|4", SplitScheduler([0, 1, 2])),
        ):
            result = run_with(scheduler, tree, inputs)
            assert result.completed
            outputs = list(result.honest_outputs.values())
            honest_inputs = [inputs[p] for p in sorted(result.honest)]
            assert tree_validity(tree, honest_inputs, outputs)
            assert tree_agreement(tree, outputs)
            if baseline_steps is None:
                baseline_steps = result.trace.steps
            first = min(result.first_done.values()) if result.first_done else 0
            rows.append(
                [
                    name,
                    result.trace.steps,
                    first,
                    result.trace.forced_fair_deliveries,
                    True,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.table(
        "A4",
        f"Async scheduler ablation ([33]-style tree AA, n={N}, t={T})",
        [
            "scheduler",
            "total steps",
            "first output at step",
            "forced fair deliveries",
            "AA ok",
        ],
        rows,
        notes=(
            "Hostile schedules cannot break the protocol (the witness\n"
            "technique + RBC totality absorb them), and they barely move the\n"
            "total step count: the iterated protocol eventually consumes\n"
            "almost every message whatever the order.  What they DO move is\n"
            "when progress happens — how many deliveries had to be forced\n"
            "through the fairness window, and how late the first party\n"
            "crosses the finish line."
        ),
    )


def test_bench_hostile_schedule(benchmark):
    tree = random_tree(20, seed=6)
    rng = random.Random(2)
    inputs = [rng.choice(tree.vertices) for _ in range(N)]
    result = benchmark.pedantic(
        lambda: run_with(SplitScheduler([0, 1, 2]), tree, inputs),
        rounds=1,
        iterations=1,
    )
    assert result.completed
