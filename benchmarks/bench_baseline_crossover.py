"""Experiment T6: RealAA vs the halving outline — who wins, where.

The outline needs ``⌈log2(D/ε)⌉`` iterations; RealAA needs at most
``t + 1`` (one per possible burn, plus the clean collapse), and fewer when
the Lemma-5 arithmetic allows.  The crossover: for small spreads the simple
outline is competitive (or even cheaper); once ``log2(D/ε) > t + 1`` RealAA
wins by a factor that grows without bound.
"""

from __future__ import annotations

import pytest

from repro.adversary.realaa_attacks import BurnScheduleAdversary, even_burn_schedule
from repro.analysis import honest_value_ranges
from repro.baselines import IterativeRealAAParty, halving_iterations
from repro.net import run_protocol
from repro.protocols import RealAAParty, realaa_duration

N, T = 13, 4

SPREADS = [2.0**2, 2.0**4, 2.0**6, 2.0**10, 2.0**16, 2.0**24]


def _verify_realaa(spread):
    """Run both protocols under their worst sustained attacks and confirm
    both still reach ε-agreement within their budgets."""
    inputs = [0.0 if i % 2 == 0 else spread for i in range(N)]
    realaa = run_protocol(
        N,
        T,
        lambda pid: RealAAParty(
            pid, N, T, inputs[pid], epsilon=1.0, known_range=spread
        ),
        adversary=BurnScheduleAdversary(even_burn_schedule(T, T)),
    )
    baseline = run_protocol(
        N,
        T,
        lambda pid: IterativeRealAAParty(
            pid, N, T, inputs[pid], epsilon=1.0, known_range=spread
        ),
        adversary=BurnScheduleAdversary([1] * 50, reuse_burners=True),
    )
    real_spread = honest_value_ranges(realaa)[-1]
    base_spread = honest_value_ranges(baseline)[-1]
    return real_spread, base_spread


def test_t6_table(report, benchmark):
    def sweep():
        rows = []
        for spread in SPREADS:
            real_rounds = realaa_duration(spread, 1.0, N, T)
            outline_rounds = 3 * halving_iterations(spread, 1.0)
            real_spread, base_spread = _verify_realaa(spread)
            winner = (
                "RealAA"
                if real_rounds < outline_rounds
                else "outline"
                if outline_rounds < real_rounds
                else "tie"
            )
            rows.append(
                [
                    f"2^{int(spread).bit_length() - 1}",
                    real_rounds,
                    outline_rounds,
                    winner,
                    round(outline_rounds / real_rounds, 2),
                    real_spread <= 1.0 and base_spread <= 1.0,
                ]
            )
            assert real_spread <= 1.0
            assert base_spread <= 1.0
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.table(
        "T6",
        f"Round-complexity crossover: RealAA vs halving outline (n={N}, t={T})",
        [
            "D/eps",
            "RealAA rounds",
            "outline rounds",
            "winner",
            "outline/RealAA",
            "both eps-agree",
        ],
        rows,
        notes=(
            "Expected shape: the outline is competitive while log2(D/eps)\n"
            "<= t + 1; beyond the crossover RealAA's detect-and-ignore\n"
            "mechanism wins by an unbounded factor (here up to 24/5)."
        ),
    )
    # the crossover exists: outline wins (or ties) somewhere, RealAA wins at the top
    assert rows[0][3] in ("outline", "tie")
    assert rows[-1][3] == "RealAA"


@pytest.mark.parametrize("spread", [2.0**6, 2.0**24])
def test_bench_outline_run(benchmark, spread):
    inputs = [0.0 if i % 2 == 0 else spread for i in range(N)]
    result = benchmark.pedantic(
        lambda: run_protocol(
            N,
            T,
            lambda pid: IterativeRealAAParty(
                pid, N, T, inputs[pid], epsilon=1.0, known_range=spread
            ),
        ),
        rounds=1,
        iterations=1,
    )
    assert honest_value_ranges(result)[-1] <= 1.0
