"""Experiment T2 (Theorem 3): RealAA terminates within
``⌈7·log2(D/ε) / log2 log2(D/ε)⌉`` rounds.

Theorem 3's regime is ``t ∈ Θ(n)`` with the required iteration count below
the corruption budget, so the sweep varies both the spread ``D/ε`` and the
network size (``n = 3t + 1``).  Reported per point: the deterministic round
budget the implementation derives (provably sound worst-case burn DP, at
most ``3(t+1)`` rounds), the *measured* rounds under an even burn schedule,
the paper's closed-form bound, and the ``3·⌈log2(D/ε)⌉`` rounds of the
memoryless outline.  Expected shape: measured ≤ budget; both grow like
log/loglog and sit below the outline for large spreads.
"""

from __future__ import annotations

import pytest

from repro.adversary.realaa_attacks import BurnScheduleAdversary, even_burn_schedule
from repro.baselines import halving_iterations
from repro.core import run_real_aa
from repro.protocols import theorem3_round_bound

NETWORKS = [(7, 2), (13, 4), (25, 8), (49, 16)]
SPREADS = [2.0**4, 2.0**10, 2.0**16]

#: The T2 grid as engine data; the "even-burn" adversary spec reproduces
#: the even burn schedule the serial sweep constructed inline.
T2_GRID = [
    {
        "n": n,
        "t": t,
        "spread": spread,
        "epsilon": 1.0,
        "adversary": "even-burn",
        "seed": 0,
    }
    for n, t in NETWORKS
    for spread in SPREADS
]


def test_t2_table(report, benchmark, sweep_config):
    def sweep():
        rows = []
        for point in sweep_config.run("t2-realaa", "realaa-point", T2_GRID):
            n, t, spread = point["n"], point["t"], point["spread"]
            budget, measured, ok = point["budget"], point["measured"], point["ok"]
            bound = theorem3_round_bound(spread, 1.0)
            outline = 3 * halving_iterations(spread, 1.0)
            rows.append(
                [
                    f"n={n},t={t}",
                    f"2^{int(spread).bit_length() - 1}",
                    budget,
                    measured if measured is not None else "-",
                    bound,
                    outline,
                    ok,
                ]
            )
            assert ok
            assert budget <= 3 * (t + 1)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.table(
        "T2",
        "RealAA(1) round complexity vs Theorem 3 (even burn schedule)",
        [
            "network",
            "D/eps",
            "round budget",
            "measured rounds",
            "Thm-3 bound",
            "outline 3*log2",
            "AA ok",
        ],
        rows,
        notes=(
            "Paper claim (Thm 3): termination within ceil(7 log2(D/e) /\n"
            "log2 log2(D/e)) rounds.  Expected shape: for fixed (n, t) the\n"
            "budget saturates at 3(t+1) (a clean iteration collapses the\n"
            "range exactly); in the t = Theta(n) regime the budget grows\n"
            "with D like log/loglog, far below the outline's 3 log2(D/e).\n"
            "The closed-form bound is asymptotic: its constants only\n"
            "dominate once D/e is large relative to n."
        ),
    )


@pytest.mark.parametrize("spread", [2.0**8, 2.0**20])
def test_bench_realaa_run(benchmark, spread):
    n, t = 7, 2
    inputs = [0.0 if i % 2 == 0 else spread for i in range(n)]
    outcome = benchmark.pedantic(
        lambda: run_real_aa(
            inputs,
            t,
            epsilon=1.0,
            known_range=spread,
            adversary=BurnScheduleAdversary([1, 1]),
        ),
        rounds=3,
        iterations=1,
    )
    assert outcome.achieved_aa


def test_bench_realaa_large_network(benchmark):
    n, t = 25, 8
    inputs = [0.0 if i % 2 == 0 else 1000.0 for i in range(n)]
    outcome = benchmark.pedantic(
        lambda: run_real_aa(
            inputs,
            t,
            epsilon=1.0,
            known_range=1000.0,
            adversary=BurnScheduleAdversary(even_burn_schedule(8, 4)),
        ),
        rounds=1,
        iterations=1,
    )
    assert outcome.achieved_aa
