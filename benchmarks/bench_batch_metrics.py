"""Experiment S2: metrics collection overhead on the batch backend.

``BatchMetrics`` (:mod:`repro.engine.metrics`) replays a reference
``MetricsCollector``'s per-round rows from the batch engine's round
reductions instead of walking per-message objects.  That is what makes
structured observability affordable at scale: the reference simulator
with a collector attached takes *minutes* at ``n = 256`` (every message
is materialised and its payload walked), while the batch engine carries
the same collector to ``n = 100,000`` in seconds.

This experiment measures what the replayed collector costs on the batch
side: one fault-free TreeAA execution per size with and without a
``MetricsCollector(tree=...)`` attached, for ``n = 1,000 … 100,000``.
Row fidelity is asserted against the reference backend at a small parity
point (the ``tests/engine`` conformance suite pins it exhaustively; the
assertion here keeps the benchmark honest on its own).
"""

from __future__ import annotations

import time

from repro.core.api import run_tree_aa
from repro.observability import MetricsCollector
from repro.trees import figure_tree

#: Batch sizes for the overhead table.  The acceptance point is the
#: largest: the collector must ride along at n = 100,000.
BATCH_SIZES = [1_000, 10_000, 100_000]

#: Where reference and batch rows are compared field-by-field.  The
#: reference simulator with a collector attached is minutes-per-run by
#: n = 256, so the parity point stays small.
PARITY_N = 64


def bimodal_inputs(n: int) -> list:
    """Half the parties at v3, half at v8 — opposite ends of Figure 3."""
    return ["v3" if i % 2 == 0 else "v8" for i in range(n)]


def comparable_rows(collector: MetricsCollector) -> list:
    """The collector's rows minus ``wall_seconds`` (non-deterministic)."""
    rows = []
    for row in collector.rounds:
        fields = dict(row.__dict__)
        fields.pop("wall_seconds", None)
        rows.append(fields)
    return rows


def timed_run(tree, n: int, backend: str, with_metrics: bool):
    """(wall seconds, outcome, collector) of one fault-free TreeAA run."""
    collector = MetricsCollector(tree=tree) if with_metrics else None
    started = time.perf_counter()
    outcome = run_tree_aa(
        tree,
        bimodal_inputs(n),
        max(1, n // 4),
        observer=collector,
        backend=backend,
    )
    return time.perf_counter() - started, outcome, collector


def test_s2_table(report, benchmark):
    tree = figure_tree()

    def sweep():
        # Parity gate: the batch collector's rows must be the reference
        # collector's rows, wall clock aside, before its speed means
        # anything.
        _, ref_outcome, ref_collector = timed_run(
            tree, PARITY_N, "reference", with_metrics=True
        )
        _, batch_outcome, batch_collector = timed_run(
            tree, PARITY_N, "batch", with_metrics=True
        )
        assert (
            ref_outcome.execution.outputs == batch_outcome.execution.outputs
        )
        assert comparable_rows(ref_collector) == comparable_rows(
            batch_collector
        )

        rows = []
        for n in BATCH_SIZES:
            # Warm the (n, t)-keyed round-budget table so both timed runs
            # see it cached and the overhead column isolates the metrics
            # work itself.
            timed_run(tree, n, "batch", with_metrics=False)
            bare_seconds, bare_outcome, _ = timed_run(
                tree, n, "batch", with_metrics=False
            )
            metric_seconds, outcome, collector = timed_run(
                tree, n, "batch", with_metrics=True
            )
            assert outcome.achieved_aa
            assert outcome.execution.outputs == bare_outcome.execution.outputs
            assert len(collector.rounds) == outcome.rounds
            assert collector.rounds[-1].hull_diameter == 0
            rows.append(
                [
                    n,
                    max(1, n // 4),
                    outcome.rounds,
                    f"{bare_seconds:.4f}",
                    f"{metric_seconds:.4f}",
                    f"{metric_seconds / bare_seconds:.2f}x",
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.table(
        "S2",
        "TreeAA batch engine: metrics collection overhead",
        ["n", "t", "rounds", "batch s", "batch+metrics s", "overhead"],
        rows,
        notes=(
            "Fault-free TreeAA on the Figure-3 tree, bimodal v3/v8\n"
            "inputs, backend=batch.  The metrics column attaches\n"
            "MetricsCollector(tree=...), replayed by BatchMetrics from\n"
            "round reductions; rows are asserted identical to the\n"
            "reference collector's at n = 64 (and pinned across seeds,\n"
            "adversaries, and fault plans by tests/engine/).  The\n"
            "reference simulator with the same collector attached is\n"
            "minutes-per-run by n = 256 — off this chart entirely."
        ),
    )
