"""Safe areas on trees — the substrate of the iteration-based baseline.

The iteration-based outline described in the paper's introduction has each
party compute, from the ``m`` values it received (of which up to ``t`` come
from Byzantine parties), a *safe area*: a set of vertices guaranteed to lie
in the convex hull of the honestly distributed values.  Formally the safe
area is ``⋂ ⟨W'⟩`` over all subsets ``W'`` obtained by deleting ``t`` values.

For trees this intersection has a clean characterisation: a vertex ``w`` is
safe iff **every** connected component of ``T − w`` contains at most
``m − t − 1`` of the received values.  (If some component held ``≥ m − t``
values the adversary could delete all values elsewhere, leaving a hull that
avoids ``w``; conversely, if no component can absorb ``m − t`` values then
every ``(m − t)``-subset either contains ``w`` or spans two components, and
in both cases ``w`` is in its hull.)

A counting argument on the tree median shows the safe area is non-empty
whenever ``m ≥ 2t + 1``, which the protocols guarantee via ``m ≥ n − t`` and
``n > 3t``.  :func:`brute_force_safe_area` cross-checks the fast rule in the
test suite.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from .convex import convex_hull
from .labeled_tree import Label, LabeledTree
from .paths import TreePath, diameter_path


def component_value_counts(
    tree: LabeledTree, vertex: Label, values: Sequence[Label]
) -> Tuple[int, ...]:
    """How many received values fall in each component of ``T − vertex``."""
    counts: List[int] = []
    for component in tree.components_without(vertex):
        counts.append(sum(1 for value in values if value in component))
    return tuple(counts)


def is_safe_vertex(
    tree: LabeledTree, vertex: Label, values: Sequence[Label], t: int
) -> bool:
    """Whether *vertex* lies in ``⟨W'⟩`` for every ``(m − t)``-subset ``W'``."""
    if t < 0:
        raise ValueError("t must be non-negative")
    m = len(values)
    if m - t < 1:
        raise ValueError(f"need at least t + 1 = {t + 1} values, got {m}")
    threshold = m - t  # a component holding this many values makes w unsafe
    for count in component_value_counts(tree, vertex, values):
        if count >= threshold:
            return False
    return True


def safe_area(
    tree: LabeledTree, values: Sequence[Label], t: int
) -> FrozenSet[Label]:
    """All safe vertices.  Non-empty whenever ``len(values) ≥ 2t + 1``.

    Linear time: rooting the tree once, each component of ``T − v`` is
    either a child subtree of ``v`` or the rest of the tree, so component
    value counts reduce to subtree value sums computed in one post-order
    pass.  (:func:`is_safe_vertex` is the O(|V|) per-vertex reference rule;
    the test suite cross-checks the two and the brute-force intersection.)
    """
    m = len(values)
    if t < 0:
        raise ValueError("t must be non-negative")
    if m - t < 1:
        raise ValueError(f"need at least t + 1 = {t + 1} values, got {m}")
    for value in values:
        tree.require_vertex(value)

    from .lca import RootedTree  # local import: avoid a module cycle

    rooted = RootedTree(tree)
    at_vertex: Dict[Label, int] = {}
    for value in values:
        at_vertex[value] = at_vertex.get(value, 0) + 1
    # Post-order subtree sums (preorder reversed is a valid post-order).
    subtree_count: Dict[Label, int] = {}
    for vertex in reversed(rooted.preorder()):
        total = at_vertex.get(vertex, 0)
        for child in rooted.children(vertex):
            total += subtree_count[child]
        subtree_count[vertex] = total

    threshold = m - t  # a component reaching this count makes v unsafe
    area: Set[Label] = set()
    for vertex in tree.vertices:
        safe = True
        for child in rooted.children(vertex):
            if subtree_count[child] >= threshold:
                safe = False
                break
        if safe and vertex != rooted.root:
            if m - subtree_count[vertex] >= threshold:
                safe = False
        if safe:
            area.add(vertex)
    if not area and m >= 2 * t + 1:
        raise AssertionError(
            "safe area unexpectedly empty despite m >= 2t + 1; "
            "this indicates a bug in the safe-area rule"
        )
    return frozenset(area)


def brute_force_safe_area(
    tree: LabeledTree, values: Sequence[Label], t: int
) -> FrozenSet[Label]:
    """Reference implementation: intersect hulls of all ``(m − t)``-subsets.

    Exponential in ``t``; used only in tests to validate :func:`safe_area`.
    """
    m = len(values)
    if m - t < 1:
        raise ValueError(f"need at least t + 1 = {t + 1} values, got {m}")
    area: Set[Label] = set(tree.vertices)
    for keep in combinations(range(m), m - t):
        subset = [values[i] for i in keep]
        area &= convex_hull(tree, subset)
        if not area:
            break
    return frozenset(area)


def safe_area_subtree_path(
    tree: LabeledTree, values: Sequence[Label], t: int
) -> TreePath:
    """The canonical diameter path of the safe area's induced subtree."""
    area = safe_area(tree, values, t)
    if not area:
        raise ValueError("safe area is empty; cannot take its midpoint")
    if len(area) == 1:
        return TreePath([next(iter(area))])
    edges = [(u, v) for u, v in tree.edges() if u in area and v in area]
    sub = LabeledTree(edges=edges) if edges else LabeledTree(vertices=sorted(area))
    return diameter_path(sub)


def safe_area_midpoint(
    tree: LabeledTree, values: Sequence[Label], t: int
) -> Label:
    """The midpoint of the safe area — the baseline's per-iteration update.

    Deterministic: the midpoint of the canonical diameter path of the safe
    subtree (ties broken towards the lower-labeled endpoint).  Choosing the
    diameter midpoint roughly halves the safe area's spread per iteration,
    which is exactly the ``2^{-R}`` convergence the paper's introduction
    attributes to the iteration-based outline.
    """
    path = safe_area_subtree_path(tree, values, t)
    return path[path.length // 2]
