"""Serialization for labeled trees: JSON round-trips and DOT export.

The input space tree is *public knowledge* in the paper's model; in
practice that means it must be distributable as a document.  This module
fixes a canonical JSON form (sorted vertices, sorted edges), so two
parties exchanging serialized trees derive identical
:class:`~repro.trees.labeled_tree.LabeledTree` objects — and hence
identical Euler lists, roots, and path orientations.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .labeled_tree import Label, LabeledTree

#: Canonical dict schema version.
SCHEMA = "repro/labeled-tree/v1"


def tree_to_dict(tree: LabeledTree) -> Dict[str, Any]:
    """The canonical dict form: schema tag + sorted vertices + sorted edges."""
    return {
        "schema": SCHEMA,
        "vertices": list(tree.vertices),
        "edges": [list(edge) for edge in tree.edges()],
    }


def tree_from_dict(data: Dict[str, Any]) -> LabeledTree:
    """Rebuild a tree from its canonical dict form (validating as we go)."""
    if not isinstance(data, dict):
        raise ValueError("expected a dict")
    if data.get("schema") != SCHEMA:
        raise ValueError(f"unknown schema {data.get('schema')!r}")
    vertices = data.get("vertices")
    edges = data.get("edges")
    if not isinstance(vertices, list) or not isinstance(edges, list):
        raise ValueError("vertices and edges must be lists")
    parsed_edges = []
    for edge in edges:
        if not isinstance(edge, (list, tuple)) or len(edge) != 2:
            raise ValueError(f"malformed edge {edge!r}")
        parsed_edges.append((edge[0], edge[1]))
    return LabeledTree(edges=parsed_edges, vertices=vertices)


def tree_to_json(tree: LabeledTree, indent: int = None) -> str:
    """Canonical JSON text.  Deterministic: equal trees serialize equally."""
    return json.dumps(tree_to_dict(tree), indent=indent, sort_keys=True)


def tree_from_json(text: str) -> LabeledTree:
    """Inverse of :func:`tree_to_json`."""
    return tree_from_dict(json.loads(text))


def tree_to_dot(
    tree: LabeledTree,
    highlight: Dict[Label, str] = None,
    name: str = "tree",
) -> str:
    """GraphViz DOT text; *highlight* maps vertices to fill colors."""
    highlight = highlight or {}
    lines: List[str] = [f"graph {json.dumps(name)} {{"]
    lines.append("  node [shape=circle];")
    for vertex in tree.vertices:
        attrs = ""
        color = highlight.get(vertex)
        if color:
            attrs = f' [style=filled, fillcolor="{color}"]'
        lines.append(f"  {json.dumps(str(vertex))}{attrs};")
    for u, v in tree.edges():
        lines.append(f"  {json.dumps(str(u))} -- {json.dumps(str(v))};")
    lines.append("}")
    return "\n".join(lines)
