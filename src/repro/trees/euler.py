"""``ListConstruction`` — the Euler-tour list representation (Section 6).

Every party deterministically transforms the rooted input space tree into a
list ``L`` by a DFS from the root that records each vertex on entry and after
returning from each child.  Children are visited in label order, so all
honest parties derive the identical list.

Lemma 2 gives four properties of ``L``; all are exercised by the test suite:

1. consecutive list entries are adjacent vertices (if ``|V(T)| > 1``);
2. ``|L| ≤ 2 · |V(T)|`` and every vertex occurs at least once;
3. ``u`` is in the subtree rooted at ``v`` iff all occurrences of ``u`` fall
   within ``[min L(v), max L(v)]``;
4. the lowest common ancestor of ``v`` and ``v'`` occurs between any pair of
   their indices.

Indices are 0-based throughout (the paper uses 1-based indices; only the
origin differs, never the structure).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .labeled_tree import Label, LabeledTree
from .lca import RootedTree


class EulerList:
    """The list ``L`` produced by ``ListConstruction(T, v_root)``.

    Parameters
    ----------
    rooted:
        The rooted view of the input space tree.  All parties must use the
        same root (TreeAA fixes the lowest-labeled vertex).
    """

    def __init__(self, rooted: RootedTree) -> None:
        self._rooted = rooted
        entries: List[Label] = []
        # DFS recording each vertex on entry and after each child returns.
        stack: List[Tuple[Label, int]] = [(rooted.root, 0)]
        while stack:
            vertex, child_index = stack.pop()
            entries.append(vertex)
            kids = rooted.children(vertex)
            if child_index < len(kids):
                stack.append((vertex, child_index + 1))
                stack.append((kids[child_index], 0))
        self._entries: Tuple[Label, ...] = tuple(entries)
        occurrences: Dict[Label, List[int]] = {}
        for index, vertex in enumerate(self._entries):
            occurrences.setdefault(vertex, []).append(index)
        self._occurrences: Dict[Label, Tuple[int, ...]] = {
            vertex: tuple(indices) for vertex, indices in occurrences.items()
        }

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def rooted(self) -> RootedTree:
        return self._rooted

    @property
    def tree(self) -> LabeledTree:
        return self._rooted.tree

    @property
    def entries(self) -> Tuple[Label, ...]:
        """The full list ``L`` (0-based)."""
        return self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __getitem__(self, index: int) -> Label:
        """``L_index`` (0-based)."""
        return self._entries[index]

    def occurrences(self, vertex: Label) -> Tuple[int, ...]:
        """``L(vertex)`` — all indices at which *vertex* occurs, ascending."""
        try:
            return self._occurrences[vertex]
        except KeyError:
            raise KeyError(f"vertex {vertex!r} is not in the tree") from None

    def first_occurrence(self, vertex: Label) -> int:
        """``min L(vertex)`` — the canonical RealAA input for this vertex."""
        return self.occurrences(vertex)[0]

    def last_occurrence(self, vertex: Label) -> int:
        """``max L(vertex)``."""
        return self.occurrences(vertex)[-1]

    def subtree_interval(self, vertex: Label) -> Tuple[int, int]:
        """``[min L(v), max L(v)]`` — encloses exactly ``v``'s subtree
        (Lemma 2, property 3)."""
        indices = self.occurrences(vertex)
        return indices[0], indices[-1]

    def vertex_in_subtree(self, candidate: Label, subtree_root: Label) -> bool:
        """Whether *candidate* is in the subtree rooted at *subtree_root*,
        decided purely from the list (Lemma 2, property 3)."""
        lo, hi = self.subtree_interval(subtree_root)
        return all(lo <= i <= hi for i in self.occurrences(candidate))


def list_construction(
    tree: LabeledTree, root: Optional[Label] = None
) -> EulerList:
    """``ListConstruction(T, v_root)`` (Section 6).

    Deterministic; every honest party computes the identical list.  When
    *root* is omitted, the lowest-labeled vertex is used, exactly as TreeAA
    line 1 prescribes.
    """
    rooted = RootedTree(tree, root)
    return EulerList(rooted)
