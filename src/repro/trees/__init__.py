"""Labeled-tree substrate: input spaces for Approximate Agreement on trees.

Exports the tree data structures, the geometric primitives of Sections 2
and 5 (paths, distances, convex hulls, projections), the ``ListConstruction``
Euler tour of Section 6, the safe-area machinery used by the baseline, and
generators for the tree families swept by the benchmarks.
"""

from .convex import (
    convex_hull,
    hull_is_path,
    in_convex_hull,
    induced_subtree,
    steiner_diameter,
)
from .euler import EulerList, list_construction
from .generators import (
    binary_tree,
    broom_tree,
    caterpillar_tree,
    figure_tree,
    path_tree,
    random_tree,
    spider_tree,
    star_tree,
    tree_from_pruefer,
)
from .labeled_tree import Label, LabeledTree, NotATreeError
from .lca import RootedTree
from .paths import (
    TreePath,
    diameter,
    diameter_path,
    distance,
    distances_from,
    eccentricity,
    farthest_vertex,
    is_path_in_tree,
    path_between,
)
from .projection import project_all, project_onto_path, projection_distance
from .serialization import (
    tree_from_dict,
    tree_from_json,
    tree_to_dict,
    tree_to_dot,
    tree_to_json,
)
from .safe_area import (
    brute_force_safe_area,
    component_value_counts,
    is_safe_vertex,
    safe_area,
    safe_area_midpoint,
    safe_area_subtree_path,
)

__all__ = [
    "Label",
    "LabeledTree",
    "NotATreeError",
    "RootedTree",
    "TreePath",
    "EulerList",
    "list_construction",
    "path_between",
    "distance",
    "distances_from",
    "diameter",
    "diameter_path",
    "eccentricity",
    "farthest_vertex",
    "is_path_in_tree",
    "convex_hull",
    "in_convex_hull",
    "hull_is_path",
    "induced_subtree",
    "steiner_diameter",
    "project_onto_path",
    "project_all",
    "projection_distance",
    "safe_area",
    "is_safe_vertex",
    "safe_area_midpoint",
    "safe_area_subtree_path",
    "brute_force_safe_area",
    "component_value_counts",
    "path_tree",
    "star_tree",
    "binary_tree",
    "caterpillar_tree",
    "spider_tree",
    "broom_tree",
    "random_tree",
    "tree_from_pruefer",
    "figure_tree",
    "tree_to_dict",
    "tree_from_dict",
    "tree_to_json",
    "tree_from_json",
    "tree_to_dot",
]
