"""Labeled trees: the input spaces for Approximate Agreement on trees.

The paper considers a publicly known *labeled tree* ``T``.  All parties hold
the same description of ``T`` and identify vertices by their labels.  Labels
must be mutually comparable (the protocol breaks ties lexicographically, e.g.
when choosing the root vertex), and hashable.

This module provides :class:`LabeledTree`, an immutable adjacency-list tree
with validation.  Algorithms that need a *rooted* view of the tree live in
:mod:`repro.trees.lca`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Tuple

Label = Hashable


class NotATreeError(ValueError):
    """Raised when the supplied edge set does not describe a tree."""


class LabeledTree:
    """An immutable, connected, acyclic, labeled graph.

    Parameters
    ----------
    edges:
        Iterable of ``(u, v)`` label pairs.  Self-loops and duplicate edges
        are rejected.
    vertices:
        Optional iterable of labels.  Required for the single-vertex tree
        (which has no edges); otherwise inferred from the edges.  If given
        together with edges, it must match the labels appearing in the edges.

    Raises
    ------
    NotATreeError
        If the resulting graph is empty, disconnected, or contains a cycle.
    """

    __slots__ = ("_adjacency", "_vertices", "_root_label")

    def __init__(
        self,
        edges: Iterable[Tuple[Label, Label]] = (),
        vertices: Iterable[Label] = (),
    ) -> None:
        adjacency: Dict[Label, List[Label]] = {}
        for label in vertices:
            adjacency.setdefault(label, [])
        edge_count = 0
        for u, v in edges:
            if u == v:
                raise NotATreeError(f"self-loop at vertex {u!r}")
            adjacency.setdefault(u, [])
            adjacency.setdefault(v, [])
            if v in adjacency[u]:
                raise NotATreeError(f"duplicate edge ({u!r}, {v!r})")
            adjacency[u].append(v)
            adjacency[v].append(u)
            edge_count += 1
        if not adjacency:
            raise NotATreeError("a tree must contain at least one vertex")
        if edge_count != len(adjacency) - 1:
            raise NotATreeError(
                f"{len(adjacency)} vertices require {len(adjacency) - 1} edges "
                f"to form a tree, got {edge_count}"
            )
        self._vertices: Tuple[Label, ...] = tuple(sorted(adjacency))
        self._adjacency: Dict[Label, Tuple[Label, ...]] = {
            label: tuple(sorted(neighbors)) for label, neighbors in adjacency.items()
        }
        self._check_connected()
        self._root_label: Label = self._vertices[0]

    def _check_connected(self) -> None:
        start = next(iter(self._adjacency))
        seen = {start}
        frontier = [start]
        while frontier:
            vertex = frontier.pop()
            for neighbor in self._adjacency[vertex]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        if len(seen) != len(self._adjacency):
            raise NotATreeError("the edge set does not form a connected graph")

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def vertices(self) -> Tuple[Label, ...]:
        """All vertex labels, in sorted (lexicographic) order."""
        return self._vertices

    @property
    def n_vertices(self) -> int:
        """``|V(T)|``."""
        return len(self._vertices)

    @property
    def root_label(self) -> Label:
        """The vertex with the lowest label — TreeAA's canonical root."""
        return self._root_label

    def edges(self) -> Iterator[Tuple[Label, Label]]:
        """Each edge once, as a sorted ``(u, v)`` pair, in sorted order."""
        for u in self._vertices:
            for v in self._adjacency[u]:
                if u < v:
                    yield (u, v)

    def neighbors(self, vertex: Label) -> Tuple[Label, ...]:
        """The sorted neighbors of *vertex*."""
        return self._adjacency[vertex]

    def degree(self, vertex: Label) -> int:
        """The number of edges incident to *vertex*."""
        return len(self._adjacency[vertex])

    def leaves(self) -> Tuple[Label, ...]:
        """All vertices of degree ≤ 1 (a single vertex counts as a leaf)."""
        return tuple(v for v in self._vertices if len(self._adjacency[v]) <= 1)

    def __contains__(self, vertex: Label) -> bool:
        return vertex in self._adjacency

    def __len__(self) -> int:
        return len(self._vertices)

    def __iter__(self) -> Iterator[Label]:
        return iter(self._vertices)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LabeledTree):
            return NotImplemented
        return self._adjacency == other._adjacency

    def __hash__(self) -> int:
        return hash(tuple((v, self._adjacency[v]) for v in self._vertices))

    def __repr__(self) -> str:
        return f"LabeledTree(n_vertices={self.n_vertices}, root={self._root_label!r})"

    # ------------------------------------------------------------------
    # Validation helpers used throughout the protocols
    # ------------------------------------------------------------------

    def require_vertex(self, vertex: Label) -> None:
        """Raise ``KeyError`` unless *vertex* belongs to this tree."""
        if vertex not in self._adjacency:
            raise KeyError(f"vertex {vertex!r} is not in the tree")

    def adjacent(self, u: Label, v: Label) -> bool:
        """Whether ``(u, v)`` is an edge of the tree."""
        self.require_vertex(u)
        return v in self._adjacency[u]

    def components_without(self, vertex: Label) -> Tuple[FrozenSet[Label], ...]:
        """The connected components of ``T − vertex``, one per neighbor.

        Used by the safe-area computation (each component is the subtree
        hanging off one neighbor of *vertex*).
        """
        self.require_vertex(vertex)
        components: List[FrozenSet[Label]] = []
        for neighbor in self._adjacency[vertex]:
            seen = {vertex, neighbor}
            frontier = [neighbor]
            while frontier:
                current = frontier.pop()
                for nxt in self._adjacency[current]:
                    if nxt not in seen:
                        seen.add(nxt)
                        frontier.append(nxt)
            seen.discard(vertex)
            components.append(frozenset(seen))
        return tuple(components)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_parent_map(cls, parents: Dict[Label, Label]) -> "LabeledTree":
        """Build a tree from a child → parent mapping (roots map to nothing)."""
        return cls(edges=[(child, parent) for child, parent in parents.items()])

    def to_edge_list(self) -> List[Tuple[Label, Label]]:
        """A sorted list of edges; round-trips through the constructor."""
        return list(self.edges())

    def relabel(self, mapping: Dict[Label, Label]) -> "LabeledTree":
        """Return a copy with every vertex ``v`` renamed to ``mapping[v]``.

        The mapping must be injective over the tree's vertices.
        """
        targets = [mapping[v] for v in self._vertices]
        if len(set(targets)) != len(targets):
            raise ValueError("relabeling mapping is not injective")
        if self.n_vertices == 1:
            return LabeledTree(vertices=targets)
        return LabeledTree(edges=[(mapping[u], mapping[v]) for u, v in self.edges()])
