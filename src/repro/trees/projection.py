"""Projection of a vertex onto a path (Section 5, Figure 2).

``proj_P(v)`` is the vertex of path ``P`` closest to ``v``.  In a tree this
vertex is unique: walking from ``v`` towards any vertex of ``P``, the first
path vertex encountered is the projection (Lemma 1's proof relies on exactly
this characterisation).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable

from .labeled_tree import Label, LabeledTree
from .paths import TreePath


def project_onto_path(tree: LabeledTree, vertex: Label, path: TreePath) -> Label:
    """``proj_P(vertex)`` — the unique vertex of *path* nearest to *vertex*.

    Runs a BFS from *vertex* and returns the first path vertex reached; the
    tree structure guarantees exactly one path vertex is at minimum distance.
    """
    tree.require_vertex(vertex)
    for p in path:
        tree.require_vertex(p)
    if vertex in path:
        return vertex
    seen = {vertex}
    queue = deque([vertex])
    while queue:
        current = queue.popleft()
        for neighbor in tree.neighbors(current):
            if neighbor in path:
                return neighbor
            if neighbor not in seen:
                seen.add(neighbor)
                queue.append(neighbor)
    raise ValueError("path vertices are unreachable; not a path of this tree")


def projection_distance(tree: LabeledTree, vertex: Label, path: TreePath) -> int:
    """``d(vertex, proj_P(vertex))`` — how far *vertex* is from the path."""
    if vertex in path:
        return 0
    seen = {vertex}
    queue = deque([(vertex, 0)])
    while queue:
        current, dist = queue.popleft()
        for neighbor in tree.neighbors(current):
            if neighbor in path:
                return dist + 1
            if neighbor not in seen:
                seen.add(neighbor)
                queue.append((neighbor, dist + 1))
    raise ValueError("path vertices are unreachable; not a path of this tree")


def project_all(
    tree: LabeledTree, vertices: Iterable[Label], path: TreePath
) -> Dict[Label, Label]:
    """Project each vertex in *vertices* onto *path* (Figure 2 en masse)."""
    return {v: project_onto_path(tree, v, path) for v in vertices}
