"""Rooted views of labeled trees and O(1) lowest-common-ancestor queries.

PathsFinder (Section 6) roots the input space tree at the lowest-labeled
vertex and reasons about subtrees and lowest common ancestors.  The LCA
structure uses the Euler-tour + sparse-table technique of Bender and
Farach-Colton [8] — the same tree-traversal idea that underlies the paper's
``ListConstruction``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .labeled_tree import Label, LabeledTree


class RootedTree:
    """A labeled tree together with a distinguished root.

    Exposes parent/depth/subtree structure and O(1) LCA queries after
    O(|V| log |V|) preprocessing.  Children are ordered by label so that
    every party derives the identical rooted view, as the protocol requires.
    """

    def __init__(self, tree: LabeledTree, root: Optional[Label] = None) -> None:
        if root is None:
            root = tree.root_label
        tree.require_vertex(root)
        self._tree = tree
        self._root = root
        self._parent: Dict[Label, Optional[Label]] = {root: None}
        self._depth: Dict[Label, int] = {root: 0}
        self._children: Dict[Label, Tuple[Label, ...]] = {}
        self._order: List[Label] = []  # preorder (DFS, children by label)
        stack: List[Label] = [root]
        while stack:
            vertex = stack.pop()
            self._order.append(vertex)
            kids = tuple(
                n for n in tree.neighbors(vertex) if n != self._parent[vertex]
            )
            self._children[vertex] = kids
            for child in reversed(kids):
                self._parent[child] = vertex
                self._depth[child] = self._depth[vertex] + 1
                stack.append(child)
        # The O(|V| log |V|) LCA structure is built lazily on the first
        # lca() query: many callers (TreeAA's duration formulas, the
        # safe-area pass) only need parents/depths/children, and the sparse
        # table would dominate both time and memory on large trees.
        self._sparse: Optional[List[List[Tuple[int, Label]]]] = None

    def _build_euler_sparse_table(self) -> None:
        """Euler tour of (depth, vertex) pairs plus a min sparse table."""
        tour: List[Tuple[int, Label]] = []
        first: Dict[Label, int] = {}
        # Iterative DFS recording the (depth, vertex) pair on entry and after
        # each child returns — the classic Euler tour for LCA.
        stack: List[Tuple[Label, int]] = [(self._root, 0)]
        while stack:
            vertex, child_index = stack.pop()
            if child_index == 0:
                first.setdefault(vertex, len(tour))
            tour.append((self._depth[vertex], vertex))
            kids = self._children[vertex]
            if child_index < len(kids):
                stack.append((vertex, child_index + 1))
                stack.append((kids[child_index], 0))
        self._euler = tour
        self._first = first
        size = len(tour)
        levels = max(1, size.bit_length())
        table: List[List[Tuple[int, Label]]] = [tour[:]]
        span = 1
        for _ in range(1, levels):
            previous = table[-1]
            if 2 * span > size:
                break
            row = [
                min(previous[i], previous[i + span])
                for i in range(size - 2 * span + 1)
            ]
            table.append(row)
            span *= 2
        self._sparse = table

    # ------------------------------------------------------------------
    # Structure accessors
    # ------------------------------------------------------------------

    @property
    def tree(self) -> LabeledTree:
        return self._tree

    @property
    def root(self) -> Label:
        return self._root

    def parent(self, vertex: Label) -> Optional[Label]:
        """The parent of *vertex*, or ``None`` for the root."""
        return self._parent[vertex]

    def depth(self, vertex: Label) -> int:
        """Edges between *vertex* and the root."""
        return self._depth[vertex]

    def children(self, vertex: Label) -> Tuple[Label, ...]:
        """The children of *vertex*, ordered by label."""
        return self._children[vertex]

    def preorder(self) -> Tuple[Label, ...]:
        """All vertices in preorder (children visited in label order)."""
        return tuple(self._order)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def lca(self, u: Label, v: Label) -> Label:
        """The lowest common ancestor of *u* and *v*."""
        if self._sparse is None:
            self._build_euler_sparse_table()
        try:
            i, j = self._first[u], self._first[v]
        except KeyError as exc:
            raise KeyError(f"vertex {exc.args[0]!r} is not in the tree") from None
        if i > j:
            i, j = j, i
        width = j - i + 1
        level = width.bit_length() - 1
        row = self._sparse[level]
        left = row[i]
        right = row[j - (1 << level) + 1]
        return min(left, right)[1]

    def is_ancestor(self, ancestor: Label, descendant: Label) -> bool:
        """Whether *ancestor* lies on the root-to-*descendant* path."""
        return self.lca(ancestor, descendant) == ancestor

    def distance(self, u: Label, v: Label) -> int:
        """``d(u, v)`` computed via depths and the LCA (O(1))."""
        w = self.lca(u, v)
        return self._depth[u] + self._depth[v] - 2 * self._depth[w]

    def root_path(self, vertex: Label) -> Tuple[Label, ...]:
        """The vertices of ``P(root, vertex)``, root first."""
        chain: List[Label] = []
        current: Optional[Label] = vertex
        while current is not None:
            chain.append(current)
            current = self._parent[current]
        chain.reverse()
        return tuple(chain)

    def subtree_vertices(self, vertex: Label) -> Tuple[Label, ...]:
        """All vertices of the subtree rooted at *vertex* (preorder)."""
        out: List[Label] = []
        stack = [vertex]
        while stack:
            current = stack.pop()
            out.append(current)
            for child in reversed(self._children[current]):
                stack.append(child)
        return tuple(out)
