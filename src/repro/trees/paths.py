"""Paths, distances, and diameters in labeled trees.

Implements the notation of Section 2 of the paper:

* ``P(u, v)`` — the unique path between two vertices (:func:`path_between`);
* ``d(u, v)`` — its length in edges (:func:`distance`);
* ``D(T)`` — the tree's diameter (:func:`diameter`);
* ``P ⊕ (v, w)`` — extending a path by one edge (:meth:`TreePath.extended`).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Sequence, Tuple

from .labeled_tree import Label, LabeledTree


class TreePath:
    """A simple path in a tree: an ordered sequence of adjacent vertices.

    The paper writes a path of ``k`` vertices as ``(v_1, ..., v_k)``; its
    *length* is ``k − 1`` edges.  Instances are immutable.
    """

    __slots__ = ("_vertices", "_index")

    def __init__(self, vertices: Sequence[Label]) -> None:
        if not vertices:
            raise ValueError("a path must contain at least one vertex")
        if len(set(vertices)) != len(vertices):
            raise ValueError("a simple path may not repeat vertices")
        self._vertices: Tuple[Label, ...] = tuple(vertices)
        self._index: Dict[Label, int] = {v: i for i, v in enumerate(self._vertices)}

    @property
    def vertices(self) -> Tuple[Label, ...]:
        return self._vertices

    @property
    def start(self) -> Label:
        return self._vertices[0]

    @property
    def end(self) -> Label:
        return self._vertices[-1]

    @property
    def length(self) -> int:
        """Number of edges (``k − 1`` for ``k`` vertices)."""
        return len(self._vertices) - 1

    def __len__(self) -> int:
        """Number of vertices ``k = |V(P)|``."""
        return len(self._vertices)

    def __iter__(self) -> Iterator[Label]:
        return iter(self._vertices)

    def __contains__(self, vertex: Label) -> bool:
        return vertex in self._index

    def __getitem__(self, position: int) -> Label:
        return self._vertices[position]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TreePath):
            return NotImplemented
        return self._vertices == other._vertices

    def __hash__(self) -> int:
        return hash(self._vertices)

    def __repr__(self) -> str:
        return f"TreePath({list(self._vertices)!r})"

    def position_of(self, vertex: Label) -> int:
        """The 0-based position of *vertex* on this path."""
        try:
            return self._index[vertex]
        except KeyError:
            raise KeyError(f"vertex {vertex!r} is not on the path") from None

    def extended(self, vertex: Label) -> "TreePath":
        """The path ``P ⊕ (end, vertex)`` (paper notation), one edge longer."""
        if vertex in self._index:
            raise ValueError(f"vertex {vertex!r} already lies on the path")
        return TreePath(self._vertices + (vertex,))

    def reversed(self) -> "TreePath":
        return TreePath(tuple(reversed(self._vertices)))

    def prefix(self, k: int) -> "TreePath":
        """The sub-path consisting of the first *k* vertices."""
        if not 1 <= k <= len(self._vertices):
            raise ValueError(f"prefix length {k} out of range")
        return TreePath(self._vertices[:k])

    def is_prefix_of(self, other: "TreePath") -> bool:
        """Whether *other* starts with exactly this path's vertices."""
        return other.vertices[: len(self._vertices)] == self._vertices

    def canonical(self) -> "TreePath":
        """The orientation whose first endpoint has the lower label.

        Section 4 orders the path so that ``v_1`` is the endpoint with the
        lexicographically lower label.
        """
        if len(self._vertices) == 1 or self.start <= self.end:
            return self
        return self.reversed()


def _bfs_parents(tree: LabeledTree, source: Label) -> Dict[Label, Label]:
    """BFS parent pointers from *source* over the whole tree.

    *source* itself has no entry, so every stored parent is a real vertex
    and callers walking parent chains toward *source* need no None checks.
    """
    tree.require_vertex(source)
    seen = {source}
    parents: Dict[Label, Label] = {}
    queue = deque([source])
    while queue:
        current = queue.popleft()
        for neighbor in tree.neighbors(current):
            if neighbor not in seen:
                seen.add(neighbor)
                parents[neighbor] = current
                queue.append(neighbor)
    return parents


def path_between(tree: LabeledTree, u: Label, v: Label) -> TreePath:
    """The unique path ``P(u, v)`` in the tree, as a :class:`TreePath`."""
    tree.require_vertex(u)
    tree.require_vertex(v)
    if u == v:
        return TreePath([u])
    parents = _bfs_parents(tree, u)
    chain: List[Label] = [v]
    while chain[-1] != u:
        chain.append(parents[chain[-1]])
    chain.reverse()
    return TreePath(chain)


def distance(tree: LabeledTree, u: Label, v: Label) -> int:
    """``d(u, v)`` — the number of edges on ``P(u, v)``."""
    return path_between(tree, u, v).length


def distances_from(tree: LabeledTree, source: Label) -> Dict[Label, int]:
    """BFS distances from *source* to every vertex."""
    tree.require_vertex(source)
    dist = {source: 0}
    queue = deque([source])
    while queue:
        current = queue.popleft()
        for neighbor in tree.neighbors(current):
            if neighbor not in dist:
                dist[neighbor] = dist[current] + 1
                queue.append(neighbor)
    return dist


def eccentricity(tree: LabeledTree, vertex: Label) -> int:
    """The largest distance from *vertex* to any other vertex."""
    return max(distances_from(tree, vertex).values())


def farthest_vertex(tree: LabeledTree, source: Label) -> Tuple[Label, int]:
    """A vertex at maximum distance from *source* (lowest label on ties)."""
    dist = distances_from(tree, source)
    best = max(dist.values())
    winner = min(v for v, d in dist.items() if d == best)
    return winner, best


def diameter_path(tree: LabeledTree) -> TreePath:
    """A longest path in the tree, via the classic double-BFS.

    Deterministic: ties are broken towards lower labels, and the result is
    returned in canonical orientation (lower-labeled endpoint first).
    """
    a, _ = farthest_vertex(tree, tree.root_label)
    b, _ = farthest_vertex(tree, a)
    return path_between(tree, a, b).canonical()


def diameter(tree: LabeledTree) -> int:
    """``D(T)`` — the length of the tree's longest path."""
    return diameter_path(tree).length


def is_path_in_tree(tree: LabeledTree, path: TreePath) -> bool:
    """Whether every consecutive pair on *path* is an edge of *tree*."""
    vertices = path.vertices
    if any(v not in tree for v in vertices):
        return False
    return all(
        tree.adjacent(vertices[i], vertices[i + 1]) for i in range(len(vertices) - 1)
    )
