"""Convex hulls of vertex sets in trees (Section 2 of the paper).

The convex hull ``⟨S⟩`` of a vertex set ``S`` is the vertex set of the
smallest connected subtree containing ``S``.  Equivalently, ``w ∈ ⟨S⟩`` iff
``w`` lies on the path ``P(u, v)`` for some ``u, v ∈ S`` (see Figure 1).

Validity for AA on trees requires every honest output to lie in the convex
hull of the honest inputs; :func:`convex_hull` and :func:`in_convex_hull` are
the checkers used by both the protocols and the test suite.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Set

from .labeled_tree import Label, LabeledTree
from .paths import path_between


def convex_hull(tree: LabeledTree, vertices: Iterable[Label]) -> FrozenSet[Label]:
    """``⟨S⟩``: the vertex set of the minimal subtree containing *vertices*.

    Uses the identity ``⟨S⟩ = ⋃_{v ∈ S} V(P(s, v))`` for any fixed ``s ∈ S``:
    that union is connected and contains ``S``, so it contains the minimal
    subtree; and every vertex on ``P(s, v)`` lies on a path between two
    members of ``S``, so it is contained in the hull.
    """
    anchors = sorted(set(vertices))
    if not anchors:
        raise ValueError("the convex hull of an empty set is undefined")
    for v in anchors:
        tree.require_vertex(v)
    base = anchors[0]
    hull: Set[Label] = {base}
    for v in anchors[1:]:
        hull.update(path_between(tree, base, v).vertices)
    return frozenset(hull)


def in_convex_hull(tree: LabeledTree, vertex: Label, anchors: Iterable[Label]) -> bool:
    """Whether *vertex* ∈ ``⟨anchors⟩``.

    Decided without materialising the hull: ``w ∈ ⟨S⟩`` iff ``w ∈ S`` or at
    least two connected components of ``T − w`` contain members of ``S``.
    """
    tree.require_vertex(vertex)
    anchor_set = set(anchors)
    if not anchor_set:
        raise ValueError("the convex hull of an empty set is undefined")
    if vertex in anchor_set:
        return True
    occupied = 0
    for component in tree.components_without(vertex):
        if anchor_set & component:
            occupied += 1
            if occupied >= 2:
                return True
    return False


def hull_is_path(tree: LabeledTree, anchors: Iterable[Label]) -> bool:
    """Whether ``⟨anchors⟩`` induces a path (every hull vertex has ≤ 2 hull
    neighbors)."""
    hull = convex_hull(tree, anchors)
    for v in sorted(hull):
        if sum(1 for n in tree.neighbors(v) if n in hull) > 2:
            return False
    return True


def induced_subtree(tree: LabeledTree, vertices: Iterable[Label]) -> LabeledTree:
    """The minimal subtree containing *vertices*, as a new :class:`LabeledTree`.

    Useful for analysis (e.g. the diameter of the honest inputs' hull).
    """
    hull = convex_hull(tree, vertices)
    if len(hull) == 1:
        return LabeledTree(vertices=list(hull))
    edges: List = [
        (u, v) for u, v in tree.edges() if u in hull and v in hull
    ]
    return LabeledTree(edges=edges)


def steiner_diameter(tree: LabeledTree, vertices: Iterable[Label]) -> int:
    """The diameter of ``⟨vertices⟩`` — how spread out the inputs are.

    This is the quantity ``D`` such that the honest inputs are ``D``-close.
    """
    from .paths import diameter  # local import to avoid a cycle at import time

    return diameter(induced_subtree(tree, vertices))
