"""Tree family generators for tests, examples, and benchmarks.

The benchmarks sweep the tree families below because they stress different
regimes of the paper's bounds:

* paths maximise ``D(T)`` relative to ``|V(T)|`` (the regime where the upper
  and lower bounds meet, ``D(T) ∈ |V(T)|^Θ(1)``);
* stars minimise the diameter (``D = 2``) while growing ``|V|``;
* caterpillars, spiders, and brooms interpolate between the two;
* complete binary trees have ``D = Θ(log |V|)`` (the open-gap regime the
  conclusion highlights);
* random trees (uniform via Prüfer sequences) exercise everything else.

All generators label vertices with zero-padded strings so that
lexicographic label order matches numeric order, which keeps examples and
tests easy to read.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from .labeled_tree import LabeledTree


def _labels(count: int, prefix: str = "v") -> List[str]:
    width = max(2, len(str(count - 1)))
    return [f"{prefix}{i:0{width}d}" for i in range(count)]


def path_tree(n_vertices: int) -> LabeledTree:
    """A path of *n_vertices* vertices (diameter ``n_vertices − 1``)."""
    if n_vertices < 1:
        raise ValueError("a tree needs at least one vertex")
    names = _labels(n_vertices)
    if n_vertices == 1:
        return LabeledTree(vertices=names)
    return LabeledTree(edges=[(names[i], names[i + 1]) for i in range(n_vertices - 1)])


def star_tree(n_leaves: int) -> LabeledTree:
    """A star: one center (``v00``) with *n_leaves* leaves (diameter 2)."""
    if n_leaves < 1:
        raise ValueError("a star needs at least one leaf")
    names = _labels(n_leaves + 1)
    return LabeledTree(edges=[(names[0], leaf) for leaf in names[1:]])


def binary_tree(depth: int) -> LabeledTree:
    """A complete binary tree of the given *depth* (depth 0 = single vertex)."""
    if depth < 0:
        raise ValueError("depth must be non-negative")
    count = 2 ** (depth + 1) - 1
    names = _labels(count)
    if count == 1:
        return LabeledTree(vertices=names)
    edges = []
    for i in range(1, count):
        edges.append((names[(i - 1) // 2], names[i]))
    return LabeledTree(edges=edges)


def caterpillar_tree(spine_length: int, legs_per_vertex: int = 1) -> LabeledTree:
    """A caterpillar: a spine path with *legs_per_vertex* leaves per vertex."""
    if spine_length < 1:
        raise ValueError("the spine needs at least one vertex")
    if legs_per_vertex < 0:
        raise ValueError("legs_per_vertex must be non-negative")
    total = spine_length * (1 + legs_per_vertex)
    names = _labels(total)
    spine = names[:spine_length]
    edges: List[Tuple[str, str]] = [
        (spine[i], spine[i + 1]) for i in range(spine_length - 1)
    ]
    cursor = spine_length
    for s in spine:
        for _ in range(legs_per_vertex):
            edges.append((s, names[cursor]))
            cursor += 1
    if not edges:
        return LabeledTree(vertices=spine)
    return LabeledTree(edges=edges)


def spider_tree(n_arms: int, arm_length: int) -> LabeledTree:
    """A spider: *n_arms* paths of *arm_length* edges from a common center."""
    if n_arms < 1 or arm_length < 1:
        raise ValueError("a spider needs at least one arm of length ≥ 1")
    names = _labels(1 + n_arms * arm_length)
    center = names[0]
    edges = []
    cursor = 1
    for _ in range(n_arms):
        previous = center
        for _ in range(arm_length):
            edges.append((previous, names[cursor]))
            previous = names[cursor]
            cursor += 1
    return LabeledTree(edges=edges)


def broom_tree(handle_length: int, n_bristles: int) -> LabeledTree:
    """A broom: a path of *handle_length* edges ending in *n_bristles* leaves."""
    if handle_length < 1 or n_bristles < 1:
        raise ValueError("a broom needs a handle and bristles")
    names = _labels(handle_length + 1 + n_bristles)
    edges = [(names[i], names[i + 1]) for i in range(handle_length)]
    tip = names[handle_length]
    for leaf in names[handle_length + 1 :]:
        edges.append((tip, leaf))
    return LabeledTree(edges=edges)


def random_tree(n_vertices: int, seed: Optional[int] = None) -> LabeledTree:
    """A uniformly random labeled tree via a random Prüfer sequence."""
    if n_vertices < 1:
        raise ValueError("a tree needs at least one vertex")
    names = _labels(n_vertices)
    if n_vertices == 1:
        return LabeledTree(vertices=names)
    if n_vertices == 2:
        return LabeledTree(edges=[(names[0], names[1])])
    rng = random.Random(seed)
    sequence = [rng.randrange(n_vertices) for _ in range(n_vertices - 2)]
    return LabeledTree(edges=_edges_from_pruefer(sequence, names))


def tree_from_pruefer(sequence: Sequence[int]) -> LabeledTree:
    """The labeled tree on ``len(sequence) + 2`` vertices encoded by a Prüfer
    sequence.  Useful for exhaustively or randomly enumerating trees in
    property-based tests."""
    n = len(sequence) + 2
    names = _labels(n)
    if any(not 0 <= s < n for s in sequence):
        raise ValueError("Prüfer entries must be vertex indices")
    if n == 2:
        return LabeledTree(edges=[(names[0], names[1])])
    return LabeledTree(edges=_edges_from_pruefer(list(sequence), names))


def _edges_from_pruefer(
    sequence: List[int], names: Sequence[str]
) -> List[Tuple[str, str]]:
    n = len(sequence) + 2
    degree = [1] * n
    for s in sequence:
        degree[s] += 1
    edges: List[Tuple[str, str]] = []
    # Standard decoding: repeatedly join the smallest leaf to the next entry.
    import heapq

    leaves = [i for i in range(n) if degree[i] == 1]
    heapq.heapify(leaves)
    for s in sequence:
        leaf = heapq.heappop(leaves)
        edges.append((names[leaf], names[s]))
        degree[s] -= 1
        if degree[s] == 1:
            heapq.heappush(leaves, s)
    u, v = heapq.heappop(leaves), heapq.heappop(leaves)
    edges.append((names[u], names[v]))
    return edges


def figure_tree() -> LabeledTree:
    """The 8-vertex tree of Figures 3 and 4 of the paper.

    ``v1`` is the root; ``v2`` has children ``v3, v4, v5``; ``v3`` has
    children ``v6, v7``; ``v4`` has child ``v8``.
    """
    return LabeledTree(
        edges=[
            ("v1", "v2"),
            ("v2", "v3"),
            ("v2", "v4"),
            ("v2", "v5"),
            ("v3", "v6"),
            ("v3", "v7"),
            ("v4", "v8"),
        ]
    )
