"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------

``tree-aa``     run TreeAA on a generated or JSON-loaded tree
``auth-tree-aa`` run the authenticated (t < n/2) TreeAA variant
``real-aa``     run RealAA(ε) on real-valued inputs
``sweep``       run an experiment grid through the parallel engine
                (``--jobs N``, ``--cache-dir DIR``, ``--no-cache``,
                ``--jsonl FILE`` for machine-readable rows, ``--spec
                FILE`` to run declarative ScenarioSpecs)
``serve``       run the long-lived scenario service (HTTP job server
                over ScenarioSpec grids; see docs/SERVICE.md)
``submit``      POST a scenario grid to a running service (``--wait``
                polls it to completion, ``--retries`` retransmits
                through connection errors and 429s)
``status``      list a running service's jobs, or one job's points
``cancel``      request cancellation of a running service job
``service-chaos`` chaos-test a service's fault tolerance (seeded
                fault-injection campaign over the service itself)
``trace``       record one execution as a JSONL trace (``--out FILE``),
                with per-round structured metrics
``report``      summarise a recorded JSONL trace (rounds, messages,
                convergence)
``bounds``      print the paper's round bounds for given parameters
``lint``        run the protocol-invariant linter (rules PL001-PL004;
                same engine and flags as ``tools/protolint.py``)
``campaign``    run a seeded fault-injection campaign with invariant
                oracles (``--count``, ``--seed``, degradation knobs)
``shrink``      delta-debug a violating scenario JSON to a minimal
                reproduction (``repro campaign --save-violations`` or a
                corpus file supplies the input)
``make-tree``   generate a tree and print it (edges / JSON / DOT)
``chain-demo``  execute Fekete's one-round chain-of-views construction

Tree specs (``--tree``): ``path:K``, ``star:K``, ``binary:DEPTH``,
``caterpillar:SPINExLEGS``, ``spider:ARMSxLEN``, ``broom:HANDLExLEAVES``,
``random:K[:SEED]``, ``figure`` (the paper's Figure-3 tree), or
``@file.json`` (canonical JSON form).

Adversaries (``--adversary``): ``none``, ``silent``, ``passive``,
``noise[:SEED]``, ``crash[:ROUND[:PARTIAL]]``, ``chaos[:SEED]``,
``burn``, ``burn-down``, ``asym`` — the shared
:func:`repro.analysis.spec.build_adversary` grammar.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
from typing import Any, List, Optional, Sequence

from .adversary import NoAdversary
from .analysis import format_table
from .core import run_real_aa, run_tree_aa
from .lowerbound import (
    demonstrate_real,
    fekete_K,
    min_rounds_required,
    theorem2_lower_bound,
    trimmed_mean_rule,
)
from .protocols import (
    realaa_duration,
    theorem3_round_bound,
    tree_aa_round_bound,
)
from .trees import (
    LabeledTree,
    binary_tree,
    broom_tree,
    caterpillar_tree,
    diameter,
    figure_tree,
    path_tree,
    random_tree,
    spider_tree,
    star_tree,
    tree_from_json,
    tree_to_dot,
    tree_to_json,
)


class CLIError(ValueError):
    """A user-facing argument error."""


def parse_tree_spec(spec: str) -> LabeledTree:
    """Parse a ``--tree`` specification (see module docstring)."""
    if spec.startswith("@"):
        with open(spec[1:]) as handle:
            return tree_from_json(handle.read())
    if spec == "figure":
        return figure_tree()
    parts = spec.split(":")
    kind = parts[0]
    try:
        if kind == "path":
            return path_tree(int(parts[1]))
        if kind == "star":
            return star_tree(int(parts[1]))
        if kind == "binary":
            return binary_tree(int(parts[1]))
        if kind == "caterpillar":
            spine, legs = parts[1].split("x")
            return caterpillar_tree(int(spine), int(legs))
        if kind == "spider":
            arms, length = parts[1].split("x")
            return spider_tree(int(arms), int(length))
        if kind == "broom":
            handle, leaves = parts[1].split("x")
            return broom_tree(int(handle), int(leaves))
        if kind == "random":
            size = int(parts[1])
            seed = int(parts[2]) if len(parts) > 2 else 0
            return random_tree(size, seed)
    except (IndexError, ValueError) as exc:
        raise CLIError(f"malformed tree spec {spec!r}: {exc}") from None
    raise CLIError(f"unknown tree family {kind!r}")


def make_adversary(spec: str, t: int):
    """Parse an ``--adversary`` specification.

    Delegates to the shared :func:`repro.analysis.spec.build_adversary`
    grammar, with two CLI-level conventions kept for compatibility:
    ``none`` returns a :class:`NoAdversary` (an explicit empty corruption
    set rather than no adversary object), and a bare ``crash`` crashes at
    round 3 (the spec-layer default is round 1).
    """
    from .analysis.spec import SpecError, build_adversary

    if spec == "none":
        return NoAdversary()
    if spec == "crash":
        spec = "crash:3"
    try:
        return build_adversary(spec, t=t)
    except SpecError as exc:
        raise CLIError(str(exc)) from None


def pick_inputs(tree: LabeledTree, spec: str, n: int) -> List:
    """Parse ``--inputs``: a comma list of labels, or ``random[:SEED]``."""
    if spec.startswith("random"):
        parts = spec.split(":")
        seed = int(parts[1]) if len(parts) > 1 else 0
        rng = random.Random(seed)
        return [rng.choice(tree.vertices) for _ in range(n)]
    labels = [label.strip() for label in spec.split(",") if label.strip()]
    if len(labels) != n:
        raise CLIError(f"need exactly n={n} inputs, got {len(labels)}")
    for label in labels:
        if label not in tree:
            raise CLIError(f"input {label!r} is not a vertex of the tree")
    return labels


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------


def cmd_tree_aa(args: argparse.Namespace) -> int:
    """Run one TreeAA execution and print the verdict table."""
    tree = parse_tree_spec(args.tree)
    inputs = pick_inputs(tree, args.inputs, args.n)
    adversary = make_adversary(args.adversary, args.t)
    outcome = run_tree_aa(tree, inputs, args.t, adversary=adversary)
    rows = [
        ["|V(T)|", tree.n_vertices],
        ["D(T)", diameter(tree)],
        ["rounds", outcome.rounds],
        ["Theorem-4 bound", tree_aa_round_bound(tree.n_vertices, diameter(tree))],
        ["terminated", outcome.terminated],
        ["valid", outcome.valid],
        ["1-agreement", outcome.agreement],
        ["output diameter", outcome.output_diameter],
    ]
    print(format_table(["property", "value"], rows, title="TreeAA"))
    print()
    print(
        format_table(
            ["party", "input", "output"],
            [
                [pid, outcome.honest_inputs[pid], outcome.honest_outputs[pid]]
                for pid in sorted(outcome.honest_outputs)
            ],
            title="honest parties",
        )
    )
    return 0 if outcome.achieved_aa else 1


def cmd_auth_tree_aa(args: argparse.Namespace) -> int:
    """Run one authenticated (t < n/2) TreeAA execution."""
    from .authenticated import run_auth_tree_aa

    tree = parse_tree_spec(args.tree)
    inputs = pick_inputs(tree, args.inputs, args.n)
    adversary = make_adversary(args.adversary, args.t)
    outcome = run_auth_tree_aa(tree, inputs, args.t, adversary=adversary)
    rows = [
        ["|V(T)|", tree.n_vertices],
        ["threshold", f"t={args.t} < n/2={args.n / 2:g}"],
        ["rounds", outcome.rounds],
        ["terminated", outcome.terminated],
        ["valid", outcome.valid],
        ["1-agreement", outcome.agreement],
        ["distinct outputs", len(set(outcome.honest_outputs.values()))],
    ]
    print(
        format_table(
            ["property", "value"], rows, title="TreeAA (authenticated, t < n/2)"
        )
    )
    return 0 if outcome.achieved_aa else 1


def cmd_real_aa(args: argparse.Namespace) -> int:
    """Run one RealAA(eps) execution on the given real inputs."""
    try:
        inputs = [float(x) for x in args.inputs.split(",")]
    except ValueError as exc:
        raise CLIError(f"malformed inputs: {exc}") from None
    adversary = make_adversary(args.adversary, args.t)
    outcome = run_real_aa(inputs, args.t, epsilon=args.epsilon, adversary=adversary)
    rows = [
        ["rounds", outcome.rounds],
        ["measured rounds", outcome.measured_rounds],
        ["terminated", outcome.terminated],
        ["valid", outcome.valid],
        ["output spread", outcome.output_spread],
        ["eps-agreement", outcome.agreement],
    ]
    print(format_table(["property", "value"], rows, title=f"RealAA(eps={args.epsilon})"))
    print()
    print(
        format_table(
            ["party", "input", "output"],
            [
                [pid, outcome.honest_inputs[pid], round(outcome.honest_outputs[pid], 9)]
                for pid in sorted(outcome.honest_outputs)
            ],
            title="honest parties",
        )
    )
    return 0 if outcome.achieved_aa else 1


def _load_spec_payload(path: str) -> dict:
    """Read a ``--spec`` file and normalise it to a planner payload.

    Accepts a single spec object, a bare list of specs, or the service's
    native ``{"points": ...}`` / ``{"base": ..., "grid": ...}`` shapes —
    the same file works for ``repro sweep --spec`` and ``repro submit``.
    """
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise CLIError(f"cannot read spec file {path!r}: {exc}") from None
    if isinstance(payload, list):
        return {"points": payload}
    if isinstance(payload, dict) and "points" not in payload and "grid" not in payload:
        return {"points": [payload]}
    if not isinstance(payload, dict):
        raise CLIError(f"spec file {path!r} must hold a JSON object or list")
    return payload


def _spec_sweep(args: argparse.Namespace) -> int:
    """``repro sweep --spec``: run ScenarioSpecs through the grid engine."""
    from .analysis import format_table, run_grid
    from .analysis.spec import SPEC_RUNNER, SPEC_SWEEP_NAME
    from .service import PlanError, plan_points

    payload = _load_spec_payload(args.spec)
    try:
        specs = plan_points(payload, base_seed=args.base_seed)
    except PlanError as exc:
        raise CLIError(str(exc)) from None
    # Each spec carries its own backend inside the params, so the grid
    # runs with the engine's default backend key — the same keying the
    # scenario service uses, which is what makes their caches shared.
    report = run_grid(
        SPEC_SWEEP_NAME,
        SPEC_RUNNER,
        [spec.to_dict() for spec in specs],
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        no_cache=args.no_cache,
        jsonl_path=args.jsonl,
    )
    rows = [
        [
            row["protocol"],
            f"n={row['n']},t={row['t']}",
            row["backend"],
            row["adversary"],
            row["rounds"],
            row["ok"],
        ]
        for row in report.rows
    ]
    print(
        format_table(
            ["protocol", "network", "backend", "adversary", "rounds", "AA ok"],
            rows,
            title=f"sweep scenario-spec ({len(rows)} points)",
        )
    )
    print()
    print(report.summary())
    return 0 if all(row["ok"] for row in report.rows) else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run a TreeAA or RealAA experiment grid through the parallel engine."""
    from .analysis import format_table, run_grid, tree_spec_for

    if args.jobs < 0:
        raise CLIError("--jobs must be >= 1, or 0 for all cores")
    if args.spec:
        return _spec_sweep(args)
    if args.kind == "tree-aa":
        try:
            grid = [
                {
                    "family": family,
                    "tree": tree_spec_for(family, size),
                    "n": args.n,
                    "t": args.t,
                    "adversary": args.adversary,
                    "seed": size,
                }
                for family in args.families.split(",")
                for size in (int(s) for s in args.sizes.split(","))
            ]
        except ValueError as exc:
            raise CLIError(str(exc)) from None
        runner = "tree-point"
        headers = [
            "family",
            "|V(T)|",
            "D(T)",
            "TreeAA rounds",
            "baseline rounds",
            "AA ok",
        ]
        to_row = lambda r: [  # noqa: E731
            r["family"],
            r["n_vertices"],
            r["tree_diameter"],
            r["tree_rounds"],
            r["baseline_rounds"],
            r["tree_ok"] and r["baseline_ok"],
        ]
        all_ok = lambda r: r["tree_ok"] and r["baseline_ok"]  # noqa: E731
    else:
        try:
            networks = [
                tuple(int(x) for x in pair.split(":"))
                for pair in args.networks.split(",")
            ]
            spreads = [float(s) for s in args.spreads.split(",")]
        except ValueError as exc:
            raise CLIError(f"malformed sweep grid: {exc}") from None
        if any(len(pair) != 2 for pair in networks):
            raise CLIError("--networks takes comma-separated n:t pairs")
        grid = [
            {
                "n": n,
                "t": t,
                "spread": spread,
                "epsilon": args.epsilon,
                "adversary": args.adversary,
                "seed": 0,
            }
            for n, t in networks
            for spread in spreads
        ]
        runner = "realaa-point"
        headers = ["network", "spread", "budget", "measured", "AA ok"]
        to_row = lambda r: [  # noqa: E731
            f"n={r['n']},t={r['t']}",
            f"{r['spread']:g}",
            r["budget"],
            r["measured"] if r["measured"] is not None else "-",
            r["ok"],
        ]
        all_ok = lambda r: r["ok"]  # noqa: E731

    from .engine import UnsupportedBackendError

    try:
        report = run_grid(
            f"cli-{args.kind}",
            runner,
            grid,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            no_cache=args.no_cache,
            base_seed=args.base_seed,
            jsonl_path=args.jsonl,
            backend=args.backend,
        )
    except UnsupportedBackendError as exc:
        # e.g. --backend batch with an equivocating adversary spec: the
        # refusal is part of the contract, but the CLI surfaces it as a
        # clean error, not a traceback.
        raise CLIError(str(exc)) from None
    print(
        format_table(
            headers,
            [to_row(row) for row in report.rows],
            title=f"sweep {args.kind} (adversary={args.adversary})",
        )
    )
    print()
    print(report.summary())
    return 0 if all(all_ok(row) for row in report.rows) else 1


def cmd_trace(args: argparse.Namespace) -> int:
    """Record one protocol execution as a JSONL trace file."""
    from .observability import MetricsCollector, export_run

    adversary = make_adversary(args.adversary, args.t)
    if args.kind == "tree-aa":
        if not args.tree:
            raise CLIError("--tree is required for tree-aa traces")
        tree = parse_tree_spec(args.tree)
        inputs = pick_inputs(tree, args.inputs, args.n)
        collector = MetricsCollector(tree=tree)
        outcome = run_tree_aa(
            tree, inputs, args.t, adversary=adversary, observer=collector
        )
        params = {
            "tree": args.tree,
            "inputs": args.inputs,
            "adversary": args.adversary,
        }
        verdicts = {
            "terminated": outcome.terminated,
            "valid": outcome.valid,
            "agreement": outcome.agreement,
            "output_diameter": outcome.output_diameter,
        }
        export_inputs: List = inputs
    else:
        try:
            inputs = [float(x) for x in args.inputs.split(",")]
        except ValueError as exc:
            raise CLIError(f"malformed inputs: {exc}") from None
        collector = MetricsCollector()
        outcome = run_real_aa(
            inputs,
            args.t,
            epsilon=args.epsilon,
            adversary=adversary,
            observer=collector,
        )
        params = {"epsilon": args.epsilon, "adversary": args.adversary}
        verdicts = {
            "terminated": outcome.terminated,
            "valid": outcome.valid,
            "agreement": outcome.agreement,
            "output_spread": outcome.output_spread,
        }
        export_inputs = inputs
    try:
        records = export_run(
            args.out,
            collector,
            outcome.execution,
            protocol=args.kind,
            params=params,
            inputs=export_inputs,
            verdicts=verdicts,
            t=args.t,
        )
    except OSError as exc:
        raise CLIError(f"cannot write {args.out!r}: {exc}") from None
    print(
        f"recorded {collector.rounds_observed} rounds "
        f"({collector.message_total} messages, {records} records) -> {args.out}"
    )
    return 0 if outcome.achieved_aa else 1


def cmd_report(args: argparse.Namespace) -> int:
    """Render the summary of a recorded JSONL trace."""
    from .observability import TraceFormatError, load_run, render_report

    try:
        run = load_run(args.trace)
    except OSError as exc:
        raise CLIError(f"cannot read {args.trace!r}: {exc}") from None
    except TraceFormatError as exc:
        raise CLIError(str(exc)) from None
    print(render_report(run, max_rounds=args.rounds))
    return 0


def cmd_bounds(args: argparse.Namespace) -> int:
    """Print the paper's round bounds for the given D, n, t, eps."""
    d, n, t = args.diameter, args.n, args.t
    rows = [
        ["Theorem 3 upper (RealAA rounds)", theorem3_round_bound(d, args.epsilon)],
        ["operational RealAA budget", realaa_duration(d, args.epsilon, n, t)],
        ["Theorem 4 upper (TreeAA rounds)", tree_aa_round_bound(int(d) + 1, int(d))],
        ["Theorem 2 lower", round(theorem2_lower_bound(d, n, t), 3)],
        ["Corollary 1 integer lower", min_rounds_required(d, n, t)],
        ["K(1, D)", round(fekete_K(1, d, n, t), 6)],
        ["K(2, D)", round(fekete_K(2, d, n, t), 6)],
    ]
    print(
        format_table(
            ["bound", "rounds"],
            rows,
            title=f"Round bounds for D={d:g}, n={n}, t={t}, eps={args.epsilon:g}",
        )
    )
    return 0


def cmd_make_tree(args: argparse.Namespace) -> int:
    """Generate a tree and print it as edges, JSON, or DOT."""
    tree = parse_tree_spec(args.tree)
    if args.format == "edges":
        for u, v in tree.edges():
            print(f"{u} {v}")
    elif args.format == "json":
        print(tree_to_json(tree, indent=2))
    elif args.format == "dot":
        print(tree_to_dot(tree))
    else:
        raise CLIError(f"unknown format {args.format!r}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the protocol-invariant linter (shared with tools/protolint.py).

    Exit codes follow the linter's contract: 0 clean, 1 findings,
    2 usage error.
    """
    from .statics.cli import run as lint_run

    return lint_run(args.lint_args, prog="repro lint")


def cmd_campaign(args: argparse.Namespace) -> int:
    """Run a seeded resilience campaign and summarise the verdicts.

    Exit code 0 when every scenario satisfies every oracle, 1 otherwise —
    so a clean campaign doubles as a CI gate.
    """
    import json as json_module

    from .resilience import CampaignConfig, run_campaign

    overrides = {}
    if args.protocols:
        overrides["protocols"] = tuple(args.protocols.split(","))
    if args.adversaries:
        overrides["adversaries"] = tuple(args.adversaries.split(","))
    try:
        config = CampaignConfig(
            count=args.count,
            seed=args.seed,
            corruption_ratio=args.corruption_ratio,
            max_fault_probability=args.fault_probability,
            allow_model_violations=args.allow_model_violations,
            epsilon=args.epsilon,
            **overrides,
        )
    except ValueError as exc:
        raise CLIError(str(exc)) from None
    try:
        report = run_campaign(
            config,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            no_cache=args.no_cache,
            jsonl_path=args.jsonl,
        )
    except ValueError as exc:
        # e.g. a typo'd --protocols/--adversaries name surfacing as a
        # ScenarioError during generation
        raise CLIError(str(exc)) from None
    print(report.summary())
    if report.violating_rows:
        print()
        rows = [
            [
                row["protocol"],
                row["adversary"],
                f"n={row['n']},t={row['t']},|F|={row['n_corrupt']}",
                ",".join(row["violated"]),
            ]
            for row in report.violating_rows[: args.show]
        ]
        print(
            format_table(
                ["protocol", "adversary", "parameters", "violated oracles"],
                rows,
                title=f"violating scenarios (first {len(rows)})",
            )
        )
    if args.save_violations:
        os.makedirs(args.save_violations, exist_ok=True)
        for index, row in enumerate(report.violating_rows):
            path = os.path.join(
                args.save_violations, f"violation-{index:04d}.json"
            )
            with open(path, "w") as handle:
                json_module.dump(row["scenario"], handle, indent=2, sort_keys=True)
                handle.write("\n")
        print(
            f"\nsaved {len(report.violating_rows)} violating scenarios "
            f"to {args.save_violations}/"
        )
    return 0 if report.ok else 1


def cmd_shrink(args: argparse.Namespace) -> int:
    """Delta-debug a violating scenario JSON to a minimal reproduction."""
    import json as json_module

    from .resilience import (
        NotViolatingError,
        ReproCase,
        Scenario,
        ScenarioError,
        save_case,
        shrink,
        shrink_report,
    )

    try:
        with open(args.scenario) as handle:
            payload = json_module.load(handle)
    except (OSError, ValueError) as exc:
        raise CLIError(f"cannot read {args.scenario!r}: {exc}") from None
    # Accept both bare scenarios and full corpus cases.
    if "scenario" in payload and "protocol" not in payload:
        payload = payload["scenario"]
    try:
        scenario = Scenario.from_dict(payload)
    except (KeyError, ScenarioError, TypeError, ValueError) as exc:
        raise CLIError(f"malformed scenario: {exc}") from None
    try:
        result = shrink(scenario, max_checks=args.max_checks)
    except NotViolatingError as exc:
        raise CLIError(str(exc)) from None
    print(shrink_report(result))
    if args.out:
        case = ReproCase(
            name=os.path.splitext(os.path.basename(args.out))[0],
            description=args.description,
            scenario=result.minimal,
            expected_violations=result.minimal_violations,
        )
        path = save_case(case, os.path.dirname(os.path.abspath(args.out)))
        print(f"\nminimal reproduction saved to {path}")
    else:
        print()
        print(
            json_module.dumps(result.minimal.to_dict(), indent=2, sort_keys=True)
        )
    return 0


def _flywheel_config(args: argparse.Namespace) -> Any:
    """Build a :class:`~repro.flywheel.FlywheelConfig` from CLI flags."""
    from .flywheel import FlywheelConfig
    from .flywheel.selftest import PERTURBATIONS

    perturb = getattr(args, "inject_divergence", None)
    if perturb:
        perturb = PERTURBATIONS.get(perturb, perturb)
    return FlywheelConfig(
        seed=args.seed,
        count=args.count,
        ledger_path=args.ledger,
        shard_size=args.shard_size,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        no_cache=args.no_cache or perturb is not None,
        corpus_dir=args.corpus_dir,
        max_shrink_checks=args.max_shrink_checks,
        perturb=perturb or None,
    )


def _flywheel_finish(report: Any) -> int:
    """Print a campaign report; exit 1 when any oracle diverged."""
    import json as json_module

    print(report.summary())
    for record in report.divergences:
        line = {
            "index": record.get("index"),
            "oracles": record.get("oracles"),
            "case": record.get("case"),
            "shrunk": record.get("shrunk"),
        }
        print(json_module.dumps(line, sort_keys=True))
    return 0 if report.ok else 1


def cmd_flywheel_run(args: argparse.Namespace) -> int:
    """Start a fresh differential campaign (see docs/FLYWHEEL.md)."""
    from .flywheel import LedgerError, run_flywheel

    try:
        report = run_flywheel(_flywheel_config(args))
    except (LedgerError, ValueError) as exc:
        raise CLIError(str(exc)) from None
    return _flywheel_finish(report)


def cmd_flywheel_resume(args: argparse.Namespace) -> int:
    """Continue a killed campaign from its ledger (exactly-once)."""
    from .flywheel import LedgerError, run_flywheel

    try:
        report = run_flywheel(_flywheel_config(args), resume=True)
    except (LedgerError, ValueError) as exc:
        raise CLIError(str(exc)) from None
    return _flywheel_finish(report)


def cmd_flywheel_status(args: argparse.Namespace) -> int:
    """Summarise a campaign ledger: progress, divergences, completion."""
    from .flywheel import LedgerError, load_state

    try:
        state = load_state(args.ledger)
    except LedgerError as exc:
        raise CLIError(str(exc)) from None
    if state.header is None:
        raise CLIError(f"{args.ledger!r} holds no campaign header")
    header = state.header
    remaining = len(state.remaining())
    print(
        f"flywheel seed={header['seed']}: "
        f"{len(state.executed)}/{header['count']} points executed, "
        f"{remaining} remaining, {len(state.divergences)} divergences, "
        f"{'complete' if state.done else 'interrupted'}"
    )
    for record in state.divergences:
        filed = record.get("case") or "ledger-only"
        print(f"  point {record['index']}: {record['oracles']} -> {filed}")
    return 0 if not state.divergences else 1


def cmd_flywheel_selftest(args: argparse.Namespace) -> int:
    """Inject a batch-engine bug and assert detect -> shrink -> file."""
    import tempfile

    from .flywheel import SelfTestError, run_selftest

    workdir = args.workdir or tempfile.mkdtemp(prefix="flywheel-selftest-")
    try:
        report = run_selftest(
            os.path.join(workdir, "ledger.jsonl"),
            os.path.join(workdir, "corpus"),
            seed=args.seed,
            count=args.count,
            jobs=args.jobs,
            perturbation=args.perturbation,
        )
    except SelfTestError as exc:
        raise CLIError(str(exc)) from None
    caught = [
        d for d in report.divergences if d.get("case") or d.get("filed")
    ]
    print(
        f"selftest OK: {len(report.divergences)} injected divergences "
        f"caught, {len(caught)} filed as corpus cases under {workdir}"
    )
    return 0


def cmd_flywheel_soak(args: argparse.Namespace) -> int:
    """Drive the seeded stream through a running service, comparing engines."""
    from .flywheel import run_soak
    from .service import ServiceClient, ServiceClientError

    client = ServiceClient(args.url)
    try:
        report = run_soak(
            client,
            seed=args.seed,
            count=args.count,
            batch=args.batch,
            timeout=args.timeout,
        )
    except ServiceClientError as exc:
        raise CLIError(f"service error: {exc}") from None
    print(report.summary())
    for record in report.divergences:
        print(f"  point {record['index']}: {record['detail']}")
    return 0 if report.ok else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the scenario service in the foreground until stopped.

    Stops on ``POST /shutdown`` or Ctrl-C; either way pending points are
    marked ``cancelled`` before the process exits (see docs/SERVICE.md).
    """
    from .service import ScenarioService, ServiceConfig

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        data_dir=args.data_dir,
        pool_jobs=args.jobs,
        no_cache=args.no_cache,
        base_seed=args.base_seed,
        max_queue_depth=args.queue_depth,
        retry_max_attempts=args.retry_attempts,
        executor=args.executor,
    )
    try:
        service = ScenarioService(config).start()
    except OSError as exc:
        raise CLIError(f"cannot bind {args.host}:{args.port}: {exc}") from None
    print(f"serving on {service.url}", flush=True)
    if args.data_dir:
        print(f"results persist to {args.data_dir}", flush=True)
    if service.recovered_jobs:
        print(
            f"recovered {len(service.recovered_jobs)} unfinished job(s) "
            f"from the journal: {', '.join(service.recovered_jobs)}",
            flush=True,
        )
    try:
        # The worker thread lives for the service's whole life; waiting on
        # it is how the foreground process notices a POST /shutdown.
        while service.worker.is_alive():
            service.worker.join(timeout=0.5)
    except KeyboardInterrupt:
        print("\nshutting down", flush=True)
    finally:
        service.shutdown()
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit a scenario grid to a running service (and optionally wait)."""
    from .service import ServiceClient, ServiceClientError

    payload = _load_spec_payload(args.spec)
    client = ServiceClient(args.url, retries=args.retries)
    try:
        submitted = client.submit(payload)
    except (ServiceClientError, OSError) as exc:
        raise CLIError(f"submit to {args.url} failed: {exc}") from None
    print(f"{submitted['job_id']}: {submitted['points']} points queued")
    if not args.wait:
        return 0
    try:
        final = client.wait(submitted["job_id"], timeout=args.timeout)
    except (ServiceClientError, OSError, TimeoutError) as exc:
        raise CLIError(str(exc)) from None
    counts = final["counts"]
    print(
        f"{final['job_id']}: {final['status']} "
        f"({counts['cached']} cached, {counts['done']} computed, "
        f"{counts['failed']} failed, {counts['cancelled']} cancelled)"
    )
    # done_with_errors still exits non-zero: completed rows are served,
    # but a quarantined point is a failure the caller must notice.
    return 0 if final["status"] == "done" else 1


def cmd_cancel(args: argparse.Namespace) -> int:
    """Request cancellation of a job on a running service."""
    from .service import ServiceClient, ServiceClientError

    client = ServiceClient(args.url)
    try:
        outcome = client.cancel(args.job)
    except ServiceClientError as exc:
        # 409 is a meaningful answer, not a failure: the job already
        # reached a terminal state, so there is nothing left to cancel.
        if exc.code == 409:
            print(f"{args.job}: already terminal")
            return 1
        raise CLIError(f"cancel at {args.url} failed: {exc}") from None
    except OSError as exc:
        raise CLIError(f"cancel at {args.url} failed: {exc}") from None
    print(f"{outcome['job_id']}: cancellation requested")
    return 0


def cmd_service_chaos(args: argparse.Namespace) -> int:
    """Run the service chaos campaign (fault injection + invariants)."""
    from .service.chaos import ChaosConfig, run_chaos_campaign

    report = run_chaos_campaign(
        ChaosConfig(scenarios=args.scenarios, seed=args.seed)
    )
    print(report.summary())
    for scenario, violation in report.violations:
        print(
            f"  scenario {scenario.index} ({scenario.kind}, "
            f"seed {scenario.seed}): {violation.oracle}: {violation.detail}"
        )
    return 0 if report.ok else 1


def cmd_status(args: argparse.Namespace) -> int:
    """Show a running service's jobs, or one job's per-point status."""
    from .service import ServiceClient, ServiceClientError

    client = ServiceClient(args.url)
    try:
        if not args.job:
            jobs = client.jobs()
            rows = [
                [
                    job["job_id"],
                    job["status"],
                    sum(job["counts"].values()),
                    job["counts"]["cached"],
                    job["counts"]["failed"],
                ]
                for job in jobs
            ]
            print(
                format_table(
                    ["job", "status", "points", "cached", "failed"],
                    rows,
                    title=f"jobs at {args.url}",
                )
            )
            return 0
        status = client.job(args.job)
    except (ServiceClientError, OSError) as exc:
        raise CLIError(f"status from {args.url} failed: {exc}") from None
    rows = [
        [
            point["index"],
            point["status"],
            point["protocol"],
            f"n={point['n']},t={point['t']}",
            point["backend"],
            point["adversary"],
            point.get("rounds", "-"),
            point.get("ok", "-"),
        ]
        for point in status["points"]
    ]
    print(
        format_table(
            ["#", "status", "protocol", "network", "backend", "adversary",
             "rounds", "AA ok"],
            rows,
            title=f"{status['job_id']}: {status['status']}",
        )
    )
    return 0


def cmd_chain_demo(args: argparse.Namespace) -> int:
    """Execute Fekete's one-round chain-of-views construction."""
    demo = demonstrate_real(trimmed_mean_rule(args.t), args.n, args.t, 0.0, 1.0)
    rows = [
        [k, " ".join(format(x, "g") for x in view), round(output, 4)]
        for k, (view, output) in enumerate(zip(demo.views, demo.outputs))
    ]
    print(
        format_table(
            ["k", "view V_k", "f(V_k)"],
            rows,
            title=f"Fekete chain, one round, n={args.n}, t={args.t}",
        )
    )
    print(
        f"\nforced gap {demo.max_gap:.4f} >= guaranteed {demo.guaranteed_gap:.4f} "
        f">= K(1, 1) = {fekete_K(1, 1.0, args.n, args.t):.4f}"
    )
    return 0


# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """The `python -m repro` argument parser, one subcommand per cmd_*."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Round-optimal Byzantine Approximate Agreement on trees",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("tree-aa", help="run TreeAA")
    p.add_argument("--tree", required=True, help="tree spec (e.g. path:30)")
    p.add_argument("--n", type=int, default=7)
    p.add_argument("--t", type=int, default=2)
    p.add_argument("--inputs", default="random:0", help="labels or random[:SEED]")
    p.add_argument("--adversary", default="burn")
    p.set_defaults(func=cmd_tree_aa)

    p = sub.add_parser(
        "auth-tree-aa", help="run the authenticated (t < n/2) TreeAA"
    )
    p.add_argument("--tree", required=True)
    p.add_argument("--n", type=int, default=5)
    p.add_argument("--t", type=int, default=2)
    p.add_argument("--inputs", default="random:0")
    p.add_argument("--adversary", default="passive")
    p.set_defaults(func=cmd_auth_tree_aa)

    p = sub.add_parser("real-aa", help="run RealAA(eps)")
    p.add_argument("--inputs", required=True, help="comma-separated reals")
    p.add_argument("--t", type=int, default=1)
    p.add_argument("--epsilon", type=float, default=0.5)
    p.add_argument("--adversary", default="silent")
    p.set_defaults(func=cmd_real_aa)

    p = sub.add_parser(
        "sweep", help="run an experiment grid (parallel, cached)"
    )
    p.add_argument(
        "--kind", default="tree-aa", choices=["tree-aa", "real-aa"]
    )
    p.add_argument("--jobs", type=int, default=1, help="worker processes (0 = all cores)")
    p.add_argument("--cache-dir", default=None, help="result cache directory")
    p.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    p.add_argument("--base-seed", type=int, default=0)
    p.add_argument("--n", type=int, default=7)
    p.add_argument("--t", type=int, default=2)
    p.add_argument(
        "--families",
        default="path,caterpillar,random,star",
        help="tree-aa: comma-separated tree families",
    )
    p.add_argument(
        "--sizes", default="15,63,255", help="tree-aa: comma-separated |V(T)|"
    )
    p.add_argument(
        "--networks", default="7:2,13:4", help="real-aa: comma-separated n:t"
    )
    p.add_argument(
        "--spreads", default="16,1024", help="real-aa: comma-separated D"
    )
    p.add_argument("--epsilon", type=float, default=1.0)
    p.add_argument("--adversary", default="burn")
    p.add_argument(
        "--jsonl",
        default=None,
        help="also persist the sweep rows as machine-readable JSONL",
    )
    p.add_argument(
        "--backend",
        default="reference",
        choices=["reference", "batch"],
        help="execution engine (batch = vectorized large-n engine)",
    )
    p.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help="run ScenarioSpecs from a JSON file instead of --kind grids "
        "(one spec, a list, or a base+grid payload; shares the scenario "
        "service's cache entries)",
    )
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "trace", help="record one execution as a JSONL trace"
    )
    p.add_argument(
        "--kind", default="tree-aa", choices=["tree-aa", "real-aa"]
    )
    p.add_argument("--tree", help="tree spec (tree-aa only)")
    p.add_argument("--n", type=int, default=7)
    p.add_argument("--t", type=int, default=2)
    p.add_argument(
        "--inputs",
        default="random:0",
        help="tree-aa: labels or random[:SEED]; real-aa: comma-separated reals",
    )
    p.add_argument("--epsilon", type=float, default=0.5, help="real-aa only")
    p.add_argument("--adversary", default="burn")
    p.add_argument("--out", required=True, help="JSONL trace output path")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "report", help="summarise a recorded JSONL trace"
    )
    p.add_argument("trace", help="path to a file written by `repro trace`")
    p.add_argument(
        "--rounds",
        type=int,
        default=None,
        help="limit the per-round table to the first N rounds",
    )
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("bounds", help="print the paper's round bounds")
    p.add_argument("--diameter", type=float, required=True)
    p.add_argument("--n", type=int, default=13)
    p.add_argument("--t", type=int, default=4)
    p.add_argument("--epsilon", type=float, default=1.0)
    p.set_defaults(func=cmd_bounds)

    p = sub.add_parser("make-tree", help="generate and print a tree")
    p.add_argument("tree", help="tree spec (e.g. caterpillar:6x2)")
    p.add_argument("--format", default="edges", choices=["edges", "json", "dot"])
    p.set_defaults(func=cmd_make_tree)

    p = sub.add_parser(
        "lint",
        help="run the protocol-invariant linter (PL001-PL004)",
        add_help=False,
    )
    p.add_argument(
        "lint_args",
        nargs=argparse.REMAINDER,
        help="arguments forwarded to the linter (see `repro lint --help`)",
    )
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "campaign",
        help="run a seeded fault-injection campaign with invariant oracles",
    )
    p.add_argument("--count", type=int, default=200, help="scenarios to generate")
    p.add_argument("--seed", type=int, default=0, help="campaign master seed")
    p.add_argument("--jobs", type=int, default=1, help="worker processes (0 = all cores)")
    p.add_argument("--cache-dir", default=None, help="result cache directory")
    p.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    p.add_argument("--epsilon", type=float, default=0.5)
    p.add_argument(
        "--protocols",
        default=None,
        help="comma-separated protocol subset (default: all three)",
    )
    p.add_argument(
        "--adversaries",
        default=None,
        help="comma-separated adversary kinds (default: all)",
    )
    p.add_argument(
        "--corruption-ratio",
        type=float,
        default=None,
        help="|F|/n for every scenario (past 1/3 = degradation mode)",
    )
    p.add_argument(
        "--fault-probability",
        type=float,
        default=0.0,
        help="cap for sampled drop/duplicate/corrupt probabilities",
    )
    p.add_argument(
        "--allow-model-violations",
        action="store_true",
        help="required with --fault-probability: fault plans break the "
        "Byzantine model on purpose",
    )
    p.add_argument(
        "--show", type=int, default=10, help="violating scenarios to print"
    )
    p.add_argument(
        "--save-violations",
        default=None,
        metavar="DIR",
        help="write violating scenarios as JSON files (inputs for `repro shrink`)",
    )
    p.add_argument(
        "--jsonl",
        default=None,
        help="also persist every scenario row as machine-readable JSONL",
    )
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser(
        "shrink",
        help="delta-debug a violating scenario JSON to a minimal reproduction",
    )
    p.add_argument(
        "scenario",
        help="scenario JSON (from `repro campaign --save-violations` or a corpus case)",
    )
    p.add_argument(
        "--out",
        default=None,
        help="write the minimal reproduction as a corpus case JSON",
    )
    p.add_argument(
        "--description",
        default="shrunk by `repro shrink`",
        help="description stored in the corpus case",
    )
    p.add_argument(
        "--max-checks",
        type=int,
        default=400,
        help="execution budget for the shrinker",
    )
    p.set_defaults(func=cmd_shrink)

    p = sub.add_parser(
        "serve", help="run the scenario service (sweep-as-a-service)"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=8642, help="bind port (0 = pick a free one)"
    )
    p.add_argument("--jobs", type=int, default=1, help="worker processes per job")
    p.add_argument("--cache-dir", default=None, help="result cache directory")
    p.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    p.add_argument(
        "--data-dir",
        default=None,
        help="persist finished jobs as sweep JSONL here (also what "
        "GET /results queries across restarts)",
    )
    p.add_argument("--base-seed", type=int, default=0)
    p.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        help="jobs allowed to queue before POST /jobs sheds load with "
        "429 (0 = unlimited)",
    )
    p.add_argument(
        "--retry-attempts",
        type=int,
        default=3,
        help="attempts per point before it is quarantined as failed",
    )
    p.add_argument(
        "--executor",
        default=None,
        help="point executor as module:function (default: the real one; "
        "the chaos harness injects faults here)",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "submit", help="submit a scenario grid to a running service"
    )
    p.add_argument(
        "spec",
        help="JSON file: one ScenarioSpec, a list, or a base+grid payload",
    )
    p.add_argument("--url", default="http://127.0.0.1:8642")
    p.add_argument(
        "--wait", action="store_true", help="poll until the job finishes"
    )
    p.add_argument(
        "--timeout", type=float, default=300.0, help="--wait deadline in seconds"
    )
    p.add_argument(
        "--retries",
        type=int,
        default=0,
        help="retransmit through connection errors/5xx/429 this many "
        "times (deterministic seeds make resubmission cache-safe)",
    )
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser(
        "status", help="show a running service's jobs (or one job's points)"
    )
    p.add_argument("job", nargs="?", default=None, help="job id (omit to list)")
    p.add_argument("--url", default="http://127.0.0.1:8642")
    p.set_defaults(func=cmd_status)

    p = sub.add_parser(
        "cancel", help="request cancellation of a running service job"
    )
    p.add_argument("job", help="job id to cancel")
    p.add_argument("--url", default="http://127.0.0.1:8642")
    p.set_defaults(func=cmd_cancel)

    p = sub.add_parser(
        "service-chaos",
        help="chaos-test the scenario service (fault injection + invariants)",
    )
    p.add_argument(
        "--scenarios", type=int, default=50, help="seeded scenario count"
    )
    p.add_argument("--seed", type=int, default=0, help="campaign master seed")
    p.set_defaults(func=cmd_service_chaos)

    p = sub.add_parser(
        "flywheel",
        help="resumable differential mega-campaigns (docs/FLYWHEEL.md)",
    )
    fsub = p.add_subparsers(dest="flywheel_command", required=True)

    def _campaign_flags(fp: argparse.ArgumentParser) -> None:
        fp.add_argument("--seed", type=int, default=0, help="stream seed")
        fp.add_argument(
            "--count", type=int, default=5000, help="points in the campaign"
        )
        fp.add_argument(
            "--ledger",
            default="flywheel-ledger.jsonl",
            help="campaign ledger JSONL (the resume checkpoint)",
        )
        fp.add_argument(
            "--shard-size",
            type=int,
            default=250,
            help="points per checkpointed shard",
        )
        fp.add_argument(
            "--jobs", type=int, default=1, help="worker processes (0 = cpus)"
        )
        fp.add_argument("--cache-dir", default=None, help="sweep cache dir")
        fp.add_argument(
            "--no-cache", action="store_true", help="bypass the sweep cache"
        )
        fp.add_argument(
            "--corpus-dir",
            default=None,
            help="file shrunk divergences here (e.g. tests/corpus)",
        )
        fp.add_argument(
            "--max-shrink-checks",
            type=int,
            default=200,
            help="execution budget per divergence shrink",
        )
        fp.add_argument(
            "--inject-divergence",
            default=None,
            metavar="NAME",
            help=(
                "perturb batch rows via a named seam (rounds, verdicts) or "
                "module:function — oracle self-testing only; implies "
                "--no-cache"
            ),
        )

    fp = fsub.add_parser("run", help="start a fresh campaign")
    _campaign_flags(fp)
    fp.set_defaults(func=cmd_flywheel_run)

    fp = fsub.add_parser(
        "resume", help="continue a killed campaign from its ledger"
    )
    _campaign_flags(fp)
    fp.set_defaults(func=cmd_flywheel_resume)

    fp = fsub.add_parser("status", help="summarise a campaign ledger")
    fp.add_argument("ledger", help="campaign ledger JSONL")
    fp.set_defaults(func=cmd_flywheel_status)

    fp = fsub.add_parser(
        "selftest",
        help="inject a batch bug; assert it is detected, shrunk, and filed",
    )
    fp.add_argument("--seed", type=int, default=2025)
    fp.add_argument("--count", type=int, default=24)
    fp.add_argument("--jobs", type=int, default=1)
    fp.add_argument(
        "--perturbation",
        default="rounds",
        help="named seam (rounds, verdicts) or module:function",
    )
    fp.add_argument(
        "--workdir",
        default=None,
        help="where the throwaway ledger/corpus land (default: a tempdir)",
    )
    fp.set_defaults(func=cmd_flywheel_selftest)

    fp = fsub.add_parser(
        "soak", help="stream the campaign through a running service"
    )
    fp.add_argument("--url", required=True, help="service base URL")
    fp.add_argument("--seed", type=int, default=0)
    fp.add_argument("--count", type=int, default=500)
    fp.add_argument("--batch", type=int, default=50, help="points per job")
    fp.add_argument(
        "--timeout", type=float, default=300.0, help="per-job wait budget"
    )
    fp.set_defaults(func=cmd_flywheel_soak)

    p = sub.add_parser("chain-demo", help="Fekete's chain of views, executed")
    p.add_argument("--n", type=int, default=7)
    p.add_argument("--t", type=int, default=2)
    p.set_defaults(func=cmd_chain_demo)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code (2 = usage error)."""
    arglist = list(argv) if argv is not None else sys.argv[1:]
    # `lint` forwards its flags verbatim to the shared linter CLI;
    # argparse.REMAINDER cannot capture leading optionals, so dispatch
    # before the main parser sees them.
    if arglist and arglist[0] == "lint":
        from .statics.cli import run as lint_run

        return lint_run(arglist[1:], prog="repro lint")
    parser = build_parser()
    args = parser.parse_args(arglist)
    try:
        return args.func(args)
    except CLIError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout went away (e.g. `repro report ... | head`); exit quietly.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 1


if __name__ == "__main__":
    sys.exit(main())
