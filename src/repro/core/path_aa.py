"""AA on paths — the warm-up protocol (Section 4).

When the input space is a labeled path ``P = (v_1, …, v_k)`` (ordered so
that ``v_1`` is the lexicographically lower endpoint), AA on ``P`` reduces
directly to ``RealAA(1)``: a party with input ``v_i`` joins with the real
value ``i`` and outputs ``v_closestInt(j)``.  Remark 1 gives Validity and
Remark 2 gives 1-Agreement; Theorem 3 gives
``O(log D(P) / log log D(P))`` rounds.

Positions here are 0-based (the paper's are 1-based; only the origin
differs).
"""

from __future__ import annotations


from ..net.messages import PartyId
from ..protocols.realaa import RealAAParty
from ..trees.labeled_tree import Label
from ..trees.paths import TreePath
from .closest_int import closest_int
from .errors import check_index_in_range


class PathAAParty(RealAAParty):
    """One party of the Section-4 protocol for a path input space.

    Parameters
    ----------
    path:
        The publicly known input space path, in canonical orientation.
        Every honest party must be constructed with the identical path.
    input_vertex:
        The party's input, a vertex of *path*.
    """

    def __init__(
        self,
        pid: PartyId,
        n: int,
        t: int,
        path: TreePath,
        input_vertex: Label,
    ) -> None:
        canonical = path.canonical()
        if canonical != path:
            raise ValueError(
                "path must be in canonical orientation (lower-labeled "
                "endpoint first) so that all parties index it identically"
            )
        position = path.position_of(input_vertex)
        super().__init__(
            pid,
            n,
            t,
            input_value=float(position),
            epsilon=1.0,
            known_range=float(path.length),
        )
        self.path = path
        self.input_vertex = input_vertex

    def _final_output(self) -> Label:
        index = closest_int(self.value)
        # Remark 1: RealAA validity keeps j within the honest positions, so
        # the rounded index is a legal position; the guard enforces that.
        check_index_in_range(index, len(self.path), "the path", self.value)
        return self.path[index]
