"""PathsFinder — approximately agreeing on a path (Section 6).

Finding a path through the honest inputs' convex hull exactly would amount
to Byzantine Agreement and cost ``t + 1 = O(n)`` rounds.  PathsFinder
instead lets the honest parties *approximately* agree on such a path:

1. every party computes the identical Euler-tour list
   ``L = ListConstruction(T, v_root)`` (Lemma 2);
2. every party joins ``RealAA(1)`` with ``min L(v_IN)``, the first index of
   its input vertex;
3. the 1-close, valid indices ``closestInt(j)`` select 1-close vertices
   ``L_closestInt(j)`` lying in a subtree rooted at a *valid* vertex
   (Lemma 3), and each party returns the root path ``P(v_root, L_...)``.

Lemma 4 summarises the guarantees: every returned path intersects the
honest inputs' hull, and any two returned paths are equal or differ by one
trailing edge.
"""

from __future__ import annotations

from typing import Optional

from ..net.messages import PartyId
from ..protocols.realaa import RealAAParty
from ..protocols.rounds import realaa_duration
from ..trees.euler import EulerList, list_construction
from ..trees.labeled_tree import Label, LabeledTree
from ..trees.paths import TreePath
from .closest_int import closest_int
from .errors import check_index_in_range


def paths_finder_duration(tree: LabeledTree, n: int, t: int) -> int:
    """The publicly computable duration of PathsFinder, in rounds.

    The honest RealAA inputs are indices into ``L``, hence at most
    ``|L| − 1 ≤ 2·|V(T)| − 1`` apart (Lemma 2 property 2); the list itself
    is public, so the exact ``|L| − 1`` is used.  This is the operational
    counterpart of the paper's ``R_PathsFinder := R_RealAA(2·|V(T)|, 1)``.
    """
    euler = list_construction(tree)
    return realaa_duration(float(len(euler) - 1), 1.0, n, t)


class PathsFinderParty(RealAAParty):
    """One party of ``PathsFinder(T, v_root, v_IN)``.

    Output: a :class:`~repro.trees.paths.TreePath` from the root to the
    selected vertex (Lemma 4's ``P``).
    """

    def __init__(
        self,
        pid: PartyId,
        n: int,
        t: int,
        tree: LabeledTree,
        input_vertex: Label,
        root: Optional[Label] = None,
    ) -> None:
        tree.require_vertex(input_vertex)
        euler = list_construction(tree, root)
        index = euler.first_occurrence(input_vertex)  # i := min L(v_IN)
        super().__init__(
            pid,
            n,
            t,
            input_value=float(index),
            epsilon=1.0,
            known_range=float(len(euler) - 1),
        )
        self.tree = tree
        self.euler: EulerList = euler
        self.input_vertex = input_vertex
        #: The vertex ``L_closestInt(j)`` selected by the final real value.
        self.selected_vertex: Optional[Label] = None

    def _final_output(self) -> TreePath:
        index = closest_int(self.value)
        check_index_in_range(index, len(self.euler), "L", self.value)
        self.selected_vertex = self.euler[index]
        return TreePath(self.euler.rooted.root_path(self.selected_vertex))
