"""Exception types for the paper's protocol layer.

The final-output steps of Sections 4–7 rely on RealAA's *Validity*: the
rounded index ``closestInt(j)`` provably lands inside the path / Euler
list.  If it ever does not, the engine (or the harness wiring) is broken
and the execution must fail loudly.  These guards used to be ``assert``
statements, which ``python -O`` strips — turning a protocol-soundness bug
into a silent ``IndexError`` (or worse, a wrong output).  They are real
exceptions now and regression-tested under ``-O``
(``tests/core/test_validity_guards.py``).
"""

from __future__ import annotations


class ValidityViolationError(RuntimeError):
    """A final value fell outside the range RealAA validity guarantees.

    Reaching this means the underlying AA engine violated Validity (or was
    wired to the wrong public range) — a bug in the implementation or the
    experiment, never a legal Byzantine behaviour.
    """


def check_index_in_range(index: int, length: int, what: str, value: float) -> None:
    """Raise :class:`ValidityViolationError` unless ``0 <= index < length``."""
    if not 0 <= index < length:
        raise ValidityViolationError(
            f"closestInt({value}) = {index} fell outside {what} "
            f"(length {length}) — RealAA validity was violated"
        )
