"""AA on trees given a known path — the stepping stone (Section 5).

Assume all parties know one common path ``P`` of the input space tree that
intersects the honest inputs' convex hull.  Then each party projects its
input vertex onto ``P`` (Lemma 1: the projection lies in ``V(P) ∩ ⟨S⟩``)
and the problem becomes AA on the path ``P``, solved as in Section 4.

The full protocol (Section 7) replaces the "known path" assumption with
PathsFinder; this module exists both as the paper presents it — a correct
protocol under the stronger assumption — and as the second phase's logic.
"""

from __future__ import annotations

from ..net.messages import PartyId
from ..protocols.realaa import RealAAParty
from ..trees.labeled_tree import Label, LabeledTree
from ..trees.paths import TreePath
from ..trees.projection import project_onto_path
from .closest_int import closest_int
from .errors import check_index_in_range


class KnownPathAAParty(RealAAParty):
    """One party of the Section-5 protocol.

    Parameters
    ----------
    tree:
        The publicly known input space tree.
    path:
        The commonly known path intersecting the honest inputs' hull.  Every
        honest party must be constructed with the identical path (Section 5
        *assumes* this; Section 6 constructs it).
    input_vertex:
        The party's input — any vertex of *tree*.
    """

    def __init__(
        self,
        pid: PartyId,
        n: int,
        t: int,
        tree: LabeledTree,
        path: TreePath,
        input_vertex: Label,
    ) -> None:
        tree.require_vertex(input_vertex)
        projection = project_onto_path(tree, input_vertex, path)
        position = path.position_of(projection)
        super().__init__(
            pid,
            n,
            t,
            input_value=float(position),
            epsilon=1.0,
            known_range=float(path.length),
        )
        self.tree = tree
        self.path = path
        self.input_vertex = input_vertex
        self.projection = projection

    def _final_output(self) -> Label:
        index = closest_int(self.value)
        check_index_in_range(index, len(self.path), "the path", self.value)
        return self.path[index]
