"""TreeAA — round-optimal Approximate Agreement on trees (Section 7).

The final protocol composes the pieces of Sections 4–6:

1. fix ``v_root`` as the lowest-labeled vertex (line 1);
2. run **PathsFinder** to approximately agree on a root path intersecting
   the honest inputs' convex hull (line 2);
3. wait until round ``R_PathsFinder`` ends so every honest party enters the
   next stage simultaneously (line 4) — realised here by the fixed phase
   boundary of :class:`~repro.net.protocol.PhasedParty`;
4. project the input onto the obtained path and run ``RealAA(1)`` on the
   path positions (line 5);
5. output the vertex at position ``closestInt(j)`` — or, if ``closestInt(j)``
   points one past the own (shorter) path, the own path's last vertex
   (line 6, the Figure-5 case).

Theorem 4: the protocol achieves AA (Termination, Validity, 1-Agreement)
for any ``t < n/3`` within ``O(log |V(T)| / log log |V(T)|)`` rounds.
"""

from __future__ import annotations

from typing import Optional

from ..net.messages import Inbox, Outbox, PartyId
from ..net.protocol import PhasedParty, ProtocolParty
from ..protocols.realaa import RealAAParty
from ..protocols.rounds import (
    ROUNDS_PER_ITERATION,
    check_resilience,
    realaa_iterations,
)
from ..trees.labeled_tree import Label, LabeledTree
from ..trees.lca import RootedTree
from ..trees.paths import TreePath, diameter
from ..trees.projection import project_onto_path
from .closest_int import closest_int
from .errors import ValidityViolationError
from .paths_finder import PathsFinderParty, paths_finder_duration


class ProjectionPhaseParty(RealAAParty):
    """Phase 2 of TreeAA: ``RealAA(1)`` on path positions with clamping.

    The iteration count must be supplied explicitly (it is fixed from the
    public tree height so that all parties — who may hold paths of slightly
    different lengths — run the same number of rounds).
    """

    def __init__(
        self,
        pid: PartyId,
        n: int,
        t: int,
        tree: LabeledTree,
        path: TreePath,
        input_vertex: Label,
        iterations: int,
    ) -> None:
        projection = project_onto_path(tree, input_vertex, path)
        position = path.position_of(projection)
        super().__init__(
            pid,
            n,
            t,
            input_value=float(position),
            epsilon=1.0,
            iterations=iterations,
        )
        self.path = path
        self.projection = projection

    def _final_output(self) -> Label:
        index = closest_int(self.value)
        if index < 0:
            raise ValidityViolationError(
                f"closestInt({self.value}) = {index} below the path start — "
                "RealAA validity was violated"
            )
        if index >= len(self.path):
            # TreeAA line 6: this party holds the shorter path of the
            # Lemma-4 pair; output its last vertex (v_k).  Theorem 4 shows
            # all honest parties then output v_{k*} or v_{k*+1}.
            return self.path.end
        return self.path[index]


def projection_phase_iterations(
    tree: LabeledTree, n: int, t: int, root: Optional[Label] = None
) -> int:
    """The public iteration count of TreeAA's second RealAA run.

    Honest inputs to the second run are positions on root paths, which are
    bounded by the rooted tree's height — a public quantity (and at most
    ``D(T)``, the bound Theorem 4's statement uses).
    """
    rooted = RootedTree(tree, root)
    height = max(rooted.depth(v) for v in tree.vertices)
    return realaa_iterations(float(max(1, height)), 1.0, n, t)


class TreeAAParty(ProtocolParty):
    """One party of TreeAA.

    For trees of diameter ≤ 1 the problem is trivial (every party returns
    its input immediately; Section 2), so the protocol proper only runs for
    ``D(T) > 1``.

    Attributes
    ----------
    paths_finder:
        The phase-1 sub-party (available after construction; its output and
        diagnostics are populated as rounds execute).
    projection_phase:
        The phase-2 sub-party (available once phase 1's boundary passed).
    """

    def __init__(
        self,
        pid: PartyId,
        n: int,
        t: int,
        tree: LabeledTree,
        input_vertex: Label,
        root: Optional[Label] = None,
    ) -> None:
        super().__init__(pid, n, t)
        check_resilience(n, t)
        tree.require_vertex(input_vertex)
        self.tree = tree
        self.input_vertex = input_vertex
        self.root = tree.root_label if root is None else root
        self.paths_finder: Optional[PathsFinderParty] = None
        self.projection_phase: Optional[ProjectionPhaseParty] = None
        self._inner: Optional[PhasedParty] = None
        if diameter(tree) <= 1:
            # Trivial input space: 0 rounds, output the own input.
            self.output = input_vertex
            return

        phase1_rounds = paths_finder_duration(tree, n, t)
        phase2_iterations = projection_phase_iterations(tree, n, t, self.root)
        phase2_rounds = ROUNDS_PER_ITERATION * phase2_iterations

        def make_phase1(_previous: object) -> ProtocolParty:
            self.paths_finder = PathsFinderParty(
                pid, n, t, tree, input_vertex, root=self.root
            )
            return self.paths_finder

        def make_phase2(path: TreePath) -> ProtocolParty:
            self.projection_phase = ProjectionPhaseParty(
                pid, n, t, tree, path, input_vertex, phase2_iterations
            )
            return self.projection_phase

        self._inner = PhasedParty(
            pid,
            n,
            t,
            phases=[(phase1_rounds, make_phase1), (phase2_rounds, make_phase2)],
        )

    @property
    def duration(self) -> int:
        return 0 if self._inner is None else self._inner.duration

    @property
    def path(self) -> Optional[TreePath]:
        """The path obtained from PathsFinder (``None`` until phase 1 ends)."""
        if self.paths_finder is None:
            return None
        return self.paths_finder.output

    def messages_for_round(self, round_index: int) -> Outbox:
        if self._inner is None:
            return {}
        return self._inner.messages_for_round(round_index)

    def receive_round(self, round_index: int, inbox: Inbox) -> None:
        if self._inner is None:
            return
        self._inner.receive_round(round_index, inbox)
        if self._inner.output is not None:
            self.output = self._inner.output
