"""``closestInt`` — rounding reals to path positions (Section 4).

The paper defines, for ``z ≤ j < z + 1`` with ``z ∈ ℤ``::

    closestInt(j) = z      if j − z < (z + 1) − j
    closestInt(j) = z + 1  otherwise

i.e. round-half-up.  Two remarks drive the correctness of every reduction
in the paper and are verified by unit and property tests:

* **Remark 1** — if ``j ∈ [i_min, i_max]`` with integer endpoints then
  ``closestInt(j) ∈ [i_min, i_max]`` (validity survives rounding);
* **Remark 2** — ``|j − j'| ≤ 1`` implies
  ``|closestInt(j) − closestInt(j')| ≤ 1`` (1-agreement survives rounding).
"""

from __future__ import annotations

import math


def closest_int(j: float) -> int:
    """The closest integer to *j*, rounding ``.5`` up (paper's definition)."""
    if not math.isfinite(j):
        raise ValueError(f"closestInt requires a finite real, got {j!r}")
    z = math.floor(j)
    if j - z < (z + 1) - j:
        return int(z)
    return int(z) + 1
