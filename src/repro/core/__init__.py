"""The paper's contribution: TreeAA and its reduction pipeline.

``closestInt`` (Section 4) → AA on paths (Section 4) → AA with a known path
(Section 5) → PathsFinder (Section 6) → TreeAA (Section 7), plus the
high-level :func:`run_tree_aa` / :func:`run_path_aa` / :func:`run_real_aa`
entry points.
"""

from .api import (
    RealAAOutcome,
    TreeAAOutcome,
    run_path_aa,
    run_real_aa,
    run_tree_aa,
)
from .closest_int import closest_int
from .errors import ValidityViolationError
from .path_aa import PathAAParty
from .paths_finder import PathsFinderParty, paths_finder_duration
from .projection_aa import KnownPathAAParty
from .tree_aa import (
    ProjectionPhaseParty,
    TreeAAParty,
    projection_phase_iterations,
)

__all__ = [
    "closest_int",
    "ValidityViolationError",
    "PathAAParty",
    "KnownPathAAParty",
    "PathsFinderParty",
    "paths_finder_duration",
    "TreeAAParty",
    "ProjectionPhaseParty",
    "projection_phase_iterations",
    "run_tree_aa",
    "run_path_aa",
    "run_real_aa",
    "TreeAAOutcome",
    "RealAAOutcome",
]
