"""High-level API: run the paper's protocols end to end and check AA.

These helpers are what the examples and benchmarks use: build the parties,
run the synchronous network under a chosen adversary, and evaluate the AA
properties (Termination / Validity / 1- or ε-Agreement) on the honest
outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

from ..net.faults import FaultPlan
from ..net.messages import PartyId
from ..net.network import ExecutionResult, TraceLevel
from ..net.runner import PartyFactory, run_protocol
from ..protocols.realaa import RealAAParty
from ..trees.convex import in_convex_hull
from ..trees.labeled_tree import Label, LabeledTree
from ..trees.paths import TreePath, distance
from .path_aa import PathAAParty
from .projection_aa import KnownPathAAParty
from .tree_aa import TreeAAParty

if TYPE_CHECKING:
    from ..adversary.base import Adversary
    from ..net.trace import Observer


@dataclass
class TreeAAOutcome:
    """A TreeAA (or path-AA) execution together with its AA verdicts."""

    execution: ExecutionResult
    tree: LabeledTree
    honest_inputs: Dict[PartyId, Label]
    honest_outputs: Dict[PartyId, Label]
    #: Termination: every honest party produced a vertex of the tree.
    terminated: bool
    #: Validity: every honest output is in the honest inputs' convex hull.
    valid: bool
    #: The largest pairwise distance between honest outputs.
    output_diameter: int
    #: 1-Agreement: ``output_diameter ≤ 1``.
    agreement: bool
    rounds: int

    @property
    def achieved_aa(self) -> bool:
        return self.terminated and self.valid and self.agreement


@dataclass
class RealAAOutcome:
    """A RealAA execution together with its AA verdicts."""

    execution: ExecutionResult
    epsilon: float
    honest_inputs: Dict[PartyId, float]
    honest_outputs: Dict[PartyId, float]
    terminated: bool
    valid: bool
    output_spread: float
    agreement: bool
    rounds: int
    #: Rounds until the last honest party first observed ε-closeness
    #: (3 × the latest local termination iteration) — the measured round
    #: complexity the benchmarks compare against Theorem 3.
    measured_rounds: Optional[int]

    @property
    def achieved_aa(self) -> bool:
        return self.terminated and self.valid and self.agreement


def _evaluate_tree_outputs(
    tree: LabeledTree,
    honest_inputs: Dict[PartyId, Label],
    honest_outputs: Dict[PartyId, Any],
) -> Dict[str, Any]:
    terminated = all(
        output is not None and output in tree for output in honest_outputs.values()
    )
    # Hull membership and pairwise distance depend only on the *distinct*
    # labels involved, so dedupe before the tree walks: honest outputs
    # cluster on a handful of vertices even at n = 100,000, and the naive
    # per-party loops were the quadratic term in large-n verdicts.
    anchors = sorted(set(honest_inputs.values()))
    distinct = sorted(set(honest_outputs.values())) if terminated else []
    valid = terminated and all(
        in_convex_hull(tree, output, anchors) for output in distinct
    )
    output_diameter = 0
    if terminated and distinct:
        for i in range(len(distinct)):
            for j in range(i + 1, len(distinct)):
                output_diameter = max(
                    output_diameter, distance(tree, distinct[i], distinct[j])
                )
    return {
        "terminated": terminated,
        "valid": valid,
        "output_diameter": output_diameter,
        "agreement": terminated and output_diameter <= 1,
    }


def _select_backend(backend: str) -> Any:
    """Resolve *backend* to an engine object, or ``None`` for the reference.

    The batch engine is imported lazily so that the NumPy stack is only
    loaded when a caller actually opts into ``backend="batch"``.
    """
    if backend == "reference":
        return None
    if backend != "batch":
        raise ValueError(
            f"unknown backend {backend!r} (choose 'reference' or 'batch')"
        )
    from ..engine.backend import BatchSynchronousEngine

    return BatchSynchronousEngine()


def run_tree_aa(
    tree: LabeledTree,
    inputs: Sequence[Label],
    t: int,
    adversary: Optional[Adversary] = None,
    root: Optional[Label] = None,
    trace_level: TraceLevel = TraceLevel.FULL,
    observer: Optional[Observer] = None,
    fault_plan: Optional[FaultPlan] = None,
    t_assumed: Optional[int] = None,
    backend: str = "reference",
) -> TreeAAOutcome:
    """Run **TreeAA** with ``inputs[pid]`` as party ``pid``'s input vertex.

    ``inputs`` must have length ``n``; corrupted parties' entries are the
    inputs their puppets start from (the adversary may ignore them).
    ``observer`` (e.g. a :class:`~repro.observability.MetricsCollector` or
    a :class:`~repro.net.TranscriptRecorder`) watches every round.

    ``fault_plan`` and ``t_assumed`` are the resilience-lab hooks:
    ``fault_plan`` injects honest-message faults (gated by
    ``allow_model_violations=True``); ``t_assumed`` lets the parties run
    with a *smaller* tolerance than the network's corruption budget ``t``
    — the way degradation experiments cross the ``t < n/3`` threshold
    while the protocol logic stays at its designed operating point.

    ``backend`` selects the execution engine: ``"reference"`` (default)
    drives per-party state machines through the synchronous network;
    ``"batch"`` runs the observationally equivalent vectorized engine
    (:mod:`repro.engine`).  The batch engine replays metrics observers
    (a plain :class:`~repro.observability.MetricsCollector`), fault
    plans and the equivocating chaos/burn adversaries, and raises
    :class:`~repro.engine.errors.UnsupportedBackendError` for features
    it cannot replay (transcript recorders and other observers, custom
    ``estimate_fn``, adaptive adversaries).
    """
    engine = _select_backend(backend)
    if engine is not None:
        return engine.run_tree_aa(
            tree,
            inputs,
            t,
            adversary=adversary,
            root=root,
            trace_level=trace_level,
            observer=observer,
            fault_plan=fault_plan,
            t_assumed=t_assumed,
        )
    n = len(inputs)
    party_t = t if t_assumed is None else t_assumed
    execution = run_protocol(
        n,
        t,
        lambda pid: TreeAAParty(pid, n, party_t, tree, inputs[pid], root=root),
        adversary=adversary,
        trace_level=trace_level,
        observer=observer,
        fault_plan=fault_plan,
    )
    honest_inputs = {pid: inputs[pid] for pid in sorted(execution.honest)}
    honest_outputs = execution.honest_outputs
    verdicts = _evaluate_tree_outputs(tree, honest_inputs, honest_outputs)
    return TreeAAOutcome(
        execution=execution,
        tree=tree,
        honest_inputs=honest_inputs,
        honest_outputs=honest_outputs,
        rounds=execution.trace.rounds_executed,
        **verdicts,
    )


def run_path_aa(
    tree: LabeledTree,
    path: TreePath,
    inputs: Sequence[Label],
    t: int,
    adversary: Optional[Adversary] = None,
    project: bool = False,
    observer: Optional[Observer] = None,
    trace_level: TraceLevel = TraceLevel.FULL,
    fault_plan: Optional[FaultPlan] = None,
    t_assumed: Optional[int] = None,
    backend: str = "reference",
) -> TreeAAOutcome:
    """Run the Section-4 path protocol (or the Section-5 variant).

    With ``project=False`` every input must lie on *path* (Section 4).
    With ``project=True`` inputs may be arbitrary tree vertices, projected
    onto the commonly known *path* first (Section 5).  ``fault_plan`` and
    ``t_assumed`` are the same resilience-lab hooks as in
    :func:`run_tree_aa`; ``backend`` selects the engine as there.
    """
    engine = _select_backend(backend)
    if engine is not None:
        return engine.run_path_aa(
            tree,
            path,
            inputs,
            t,
            adversary=adversary,
            project=project,
            observer=observer,
            trace_level=trace_level,
            fault_plan=fault_plan,
            t_assumed=t_assumed,
        )
    n = len(inputs)
    party_t = t if t_assumed is None else t_assumed
    canonical = path.canonical()
    factory: PartyFactory
    if project:
        factory = lambda pid: KnownPathAAParty(  # noqa: E731
            pid, n, party_t, tree, canonical, inputs[pid]
        )
    else:
        factory = lambda pid: PathAAParty(  # noqa: E731
            pid, n, party_t, canonical, inputs[pid]
        )
    execution = run_protocol(
        n,
        t,
        factory,
        adversary=adversary,
        trace_level=trace_level,
        observer=observer,
        fault_plan=fault_plan,
    )
    honest_inputs = {pid: inputs[pid] for pid in sorted(execution.honest)}
    honest_outputs = execution.honest_outputs
    verdicts = _evaluate_tree_outputs(tree, honest_inputs, honest_outputs)
    return TreeAAOutcome(
        execution=execution,
        tree=tree,
        honest_inputs=honest_inputs,
        honest_outputs=honest_outputs,
        rounds=execution.trace.rounds_executed,
        **verdicts,
    )


def run_real_aa(
    inputs: Sequence[float],
    t: int,
    epsilon: float,
    known_range: Optional[float] = None,
    iterations: Optional[int] = None,
    adversary: Optional[Adversary] = None,
    trace_level: TraceLevel = TraceLevel.FULL,
    observer: Optional[Observer] = None,
    fault_plan: Optional[FaultPlan] = None,
    t_assumed: Optional[int] = None,
    backend: str = "reference",
) -> RealAAOutcome:
    """Run **RealAA(ε)** on real-valued inputs.

    ``known_range`` (or an explicit ``iterations`` count) fixes the public
    round budget; it defaults to the actual spread of ``inputs`` — fine for
    experiments, where the input range is chosen by the experimenter.

    ``fault_plan`` and ``t_assumed`` serve the resilience lab: the former
    injects honest-message faults (behind ``allow_model_violations=True``),
    the latter runs the parties at a smaller assumed tolerance than the
    network's budget ``t`` so degradation sweeps can exceed ``t < n/3``
    without touching protocol-layer guards.  ``backend`` selects the
    engine as in :func:`run_tree_aa`.
    """
    engine = _select_backend(backend)
    if engine is not None:
        return engine.run_real_aa(
            inputs,
            t,
            epsilon,
            known_range=known_range,
            iterations=iterations,
            adversary=adversary,
            trace_level=trace_level,
            observer=observer,
            fault_plan=fault_plan,
            t_assumed=t_assumed,
        )
    n = len(inputs)
    if known_range is None and iterations is None:
        known_range = max(inputs) - min(inputs) if n else 0.0
    party_t = t if t_assumed is None else t_assumed
    execution = run_protocol(
        n,
        t,
        lambda pid: RealAAParty(
            pid,
            n,
            party_t,
            inputs[pid],
            epsilon=epsilon,
            known_range=known_range,
            iterations=iterations,
        ),
        adversary=adversary,
        trace_level=trace_level,
        observer=observer,
        fault_plan=fault_plan,
    )
    honest_inputs = {pid: float(inputs[pid]) for pid in sorted(execution.honest)}
    honest_outputs = execution.honest_outputs
    terminated = all(
        isinstance(v, float) for v in honest_outputs.values()
    ) and bool(honest_outputs)
    lo, hi = min(honest_inputs.values()), max(honest_inputs.values())
    valid = terminated and all(
        lo <= v <= hi for v in honest_outputs.values()
    )
    outs = list(honest_outputs.values())
    spread = (max(outs) - min(outs)) if terminated else float("inf")
    measured: Optional[int] = None
    locals_: List[int] = []
    for pid in sorted(execution.honest):
        party = execution.parties[pid]
        if isinstance(party, RealAAParty):
            if party.local_termination_iteration is None:
                locals_ = []
                break
            locals_.append(party.local_termination_iteration)
    if locals_:
        measured = 3 * max(locals_)
    return RealAAOutcome(
        execution=execution,
        epsilon=epsilon,
        honest_inputs=honest_inputs,
        honest_outputs=honest_outputs,
        terminated=terminated,
        valid=valid,
        output_spread=spread,
        agreement=terminated and spread <= epsilon,
        rounds=execution.trace.rounds_executed,
        measured_rounds=measured,
    )
