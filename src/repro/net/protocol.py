"""The protocol-party interface and sequential composition.

A protocol is implemented as a state machine driven by the synchronous
network: in every round the network first collects each party's outgoing
messages (:meth:`ProtocolParty.messages_for_round`), then delivers all of
the round's traffic at once (:meth:`ProtocolParty.receive_round`).

Protocols in this library have *deterministic, publicly computable* round
counts (``duration``).  This mirrors the paper: TreeAA line 4 has all
parties wait until round ``R_PathsFinder`` ends so that the second
``RealAA`` starts simultaneously everywhere.  :class:`PhasedParty` captures
exactly that composition pattern.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, List, Optional, Sequence, Tuple

from .messages import Inbox, Outbox, PartyId


class ProtocolStateError(RuntimeError):
    """A party's state machine was driven outside its contract.

    Raised with a real exception (not ``assert``) so the guard survives
    ``python -O``: these conditions indicate a harness bug, and silently
    proceeding would corrupt the execution rather than fail it.
    """


class ProtocolParty(abc.ABC):
    """One party's state machine for a fixed-duration synchronous protocol.

    Subclasses implement :meth:`messages_for_round` and
    :meth:`receive_round` and must set :attr:`output` by the time the final
    round (``duration − 1``) has been received.
    """

    def __init__(self, pid: PartyId, n: int, t: int) -> None:
        if not 0 <= pid < n:
            raise ValueError(f"party id {pid} out of range for n={n}")
        if t < 0 or n < 1:
            raise ValueError("need n >= 1 and t >= 0")
        self.pid = pid
        self.n = n
        self.t = t
        self.output: Any = None

    @property
    @abc.abstractmethod
    def duration(self) -> int:
        """Total number of rounds this protocol runs (publicly known)."""

    @abc.abstractmethod
    def messages_for_round(self, round_index: int) -> Outbox:
        """Outgoing messages at the start of round *round_index*."""

    @abc.abstractmethod
    def receive_round(self, round_index: int, inbox: Inbox) -> None:
        """Process the authenticated inbox delivered in round *round_index*."""

    def finished(self, round_index: int) -> bool:
        """Whether the party has completed all of its rounds."""
        return round_index >= self.duration


class SilentParty(ProtocolParty):
    """A party that never sends anything — a crashed or absent process."""

    @property
    def duration(self) -> int:
        return 0

    def messages_for_round(self, round_index: int) -> Outbox:
        return {}

    def receive_round(self, round_index: int, inbox: Inbox) -> None:
        pass


#: A phase factory receives the previous phase's output (``None`` for the
#: first phase) and builds the sub-party for the next phase.
PhaseFactory = Callable[[Any], ProtocolParty]


class PhasedParty(ProtocolParty):
    """Sequential composition of sub-protocols at fixed round boundaries.

    Each phase has a *declared* duration (the publicly known worst-case round
    count).  The sub-party built for a phase may locally finish earlier; its
    remaining rounds are spent idle, exactly like TreeAA's "wait until round
    ``R_PathsFinder`` ends".  The next phase's sub-party is constructed from
    the previous phase's output once the boundary round has passed.
    """

    def __init__(
        self,
        pid: PartyId,
        n: int,
        t: int,
        phases: Sequence[Tuple[int, PhaseFactory]],
    ) -> None:
        super().__init__(pid, n, t)
        if not phases:
            raise ValueError("at least one phase is required")
        self._declared: List[int] = [duration for duration, _ in phases]
        if any(d <= 0 for d in self._declared):
            raise ValueError("phase durations must be positive")
        self._factories: List[PhaseFactory] = [factory for _, factory in phases]
        self._starts: List[int] = []
        start = 0
        for d in self._declared:
            self._starts.append(start)
            start += d
        self._total = start
        self._phase_index = 0
        self._current: Optional[ProtocolParty] = self._factories[0](None)
        self._check_subduration()

    def _check_subduration(self) -> None:
        if self._current is None:
            raise ProtocolStateError("no active sub-party to check")
        declared = self._declared[self._phase_index]
        if self._current.duration > declared:
            raise ValueError(
                f"phase {self._phase_index} needs {self._current.duration} "
                f"rounds but only {declared} were declared"
            )

    @property
    def duration(self) -> int:
        return self._total

    @property
    def phase_index(self) -> int:
        """The currently active phase (for introspection in tests)."""
        return self._phase_index

    def _locate(self, round_index: int) -> Optional[int]:
        """Local round within the active phase, or None when out of range."""
        if self._phase_index >= len(self._factories):
            return None
        local = round_index - self._starts[self._phase_index]
        if local < 0:
            return None
        return local

    def messages_for_round(self, round_index: int) -> Outbox:
        local = self._locate(round_index)
        if local is None or self._current is None:
            return {}
        if local >= self._current.duration:
            return {}  # idle tail of the phase (waiting at the barrier)
        return self._current.messages_for_round(local)

    def receive_round(self, round_index: int, inbox: Inbox) -> None:
        local = self._locate(round_index)
        if local is None:
            return
        if self._current is None:
            raise ProtocolStateError(
                f"round {round_index} delivered to a finished PhasedParty"
            )
        if local < self._current.duration:
            self._current.receive_round(local, inbox)
        # Advance across the phase boundary once the declared duration ends.
        if local == self._declared[self._phase_index] - 1:
            result = self._current.output
            self._phase_index += 1
            if self._phase_index < len(self._factories):
                self._current = self._factories[self._phase_index](result)
                self._check_subduration()
            else:
                self._current = None
                self.output = self._finalize(result)

    def _finalize(self, last_phase_output: Any) -> Any:
        """Hook for subclasses to post-process the final phase's output."""
        return last_phase_output
