"""Fault injection for *honest* traffic — deliberately outside the model.

The model of Section 2 guarantees reliable same-round delivery between
honest parties; every correctness lemma of the paper assumes it.  This
module exists to *break* that assumption on purpose: a
:class:`FaultPlan` attached to a :class:`~repro.net.network
.SynchronousNetwork` (or :class:`~repro.asynchrony.network
.AsynchronousNetwork`) drops, duplicates, or corrupts honest messages at
delivery time, so the resilience lab (:mod:`repro.resilience`) can
*measure* graceful degradation — output spread and success rate as a
function of loss rate — instead of only observing that guarantees are
stated for the fault-free channel.

Because a non-trivial plan is a model violation by construction, building
one requires the explicit ``allow_model_violations=True`` gate; forgetting
it raises :class:`FaultModelError`.  Experiments that hold the paper's
guarantees to account can therefore never inject faults by accident.

Determinism: a plan carries a seed, and the injector draws from its own
``random.Random`` — the sanctioned randomness path of the protocol layer
(PL001) — so every faulty execution replays bit-identically from its
scenario description.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional


class FaultModelError(RuntimeError):
    """A fault plan would violate the network model without the explicit
    ``allow_model_violations=True`` acknowledgement."""


#: Replacement payloads used by the ``corrupt`` fault: near-miss protocol
#: shapes and raw junk, the same menu philosophy as the noise adversaries.
CORRUPTION_MENU = (
    None,
    -1,
    float("nan"),
    "corrupted",
    ("val",),
    ("echo", 0, "not-a-dict"),
    ("init", ("val", -1), "trailing"),
    {"corrupted": True},
)


@dataclass(frozen=True)
class FaultPlan:
    """A declarative description of honest-message faults.

    Parameters
    ----------
    drop / duplicate / corrupt:
        Independent per-message probabilities in ``[0, 1]``.  ``drop``
        removes the message entirely; ``corrupt`` replaces its payload
        with junk from :data:`CORRUPTION_MENU`; ``duplicate`` delivers a
        second (possibly corrupted) copy — in the synchronous network the
        copy arrives one round *late*, modelling at-least-once delivery,
        and in the asynchronous network it is simply enqueued twice.
    seed:
        Seeds the injector's private generator; identical plans replay
        identical fault sequences.
    first_round / last_round:
        Inclusive round window in which the plan is active (``last_round
        = None`` means forever).  The asynchronous network interprets the
        window over delivery *steps* at send time.
    allow_model_violations:
        Must be ``True`` for any plan with a positive fault probability;
        this is the consent gate that keeps model-violating runs explicit.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    corrupt: float = 0.0
    seed: int = 0
    first_round: int = 0
    last_round: Optional[int] = None
    allow_model_violations: bool = False

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "corrupt"):
            probability = getattr(self, name)
            if not 0.0 <= probability <= 1.0:
                raise ValueError(f"{name} probability must be in [0, 1]")
        if self.first_round < 0:
            raise ValueError("first_round must be non-negative")
        if self.last_round is not None and self.last_round < self.first_round:
            raise ValueError("last_round must be >= first_round")
        if self.is_faulty and not self.allow_model_violations:
            raise FaultModelError(
                "this plan drops/duplicates/corrupts honest messages, which "
                "violates the reliable-delivery model; pass "
                "allow_model_violations=True to acknowledge"
            )

    @property
    def is_faulty(self) -> bool:
        """Whether the plan can alter any message at all."""
        return self.drop > 0 or self.duplicate > 0 or self.corrupt > 0

    def active_in(self, round_index: int) -> bool:
        """Whether the plan applies to messages of *round_index*."""
        if round_index < self.first_round:
            return False
        return self.last_round is None or round_index <= self.last_round

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (scenario files, campaign reports)."""
        return {
            "drop": self.drop,
            "duplicate": self.duplicate,
            "corrupt": self.corrupt,
            "seed": self.seed,
            "first_round": self.first_round,
            "last_round": self.last_round,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output.

        A deserialised non-trivial plan is gated exactly like a literal
        one: the *file* never grants consent, the caller does.
        """
        plan_fields = {
            "drop": float(data.get("drop", 0.0)),
            "duplicate": float(data.get("duplicate", 0.0)),
            "corrupt": float(data.get("corrupt", 0.0)),
            "seed": int(data.get("seed", 0)),
            "first_round": int(data.get("first_round", 0)),
            "last_round": (
                None
                if data.get("last_round") is None
                else int(data["last_round"])
            ),
        }
        faulty = (
            plan_fields["drop"] > 0
            or plan_fields["duplicate"] > 0
            or plan_fields["corrupt"] > 0
        )
        return cls(allow_model_violations=faulty, **plan_fields)


class FaultInjector:
    """The runtime half of a :class:`FaultPlan`: seeded draws plus counters.

    One injector serves one execution; the network constructs it from the
    plan so that re-running the same scenario replays the same faults.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self.dropped = 0
        self.duplicated = 0
        self.corrupted = 0

    @property
    def total_faults(self) -> int:
        """All fault events injected so far."""
        return self.dropped + self.duplicated + self.corrupted

    def transmit(self, round_index: int, payload: Any) -> List[Any]:
        """The delivered copies of one honest message: ``[]`` (dropped),
        ``[payload]`` (clean or corrupted), or two copies (duplicated)."""
        plan = self.plan
        if not plan.is_faulty or not plan.active_in(round_index):
            return [payload]
        if plan.drop > 0 and self._rng.random() < plan.drop:
            self.dropped += 1
            return []
        if plan.corrupt > 0 and self._rng.random() < plan.corrupt:
            self.corrupted += 1
            payload = self._rng.choice(CORRUPTION_MENU)
        if plan.duplicate > 0 and self._rng.random() < plan.duplicate:
            self.duplicated += 1
            return [payload, payload]
        return [payload]

    def counts(self) -> Dict[str, int]:
        """Fault-event counters as a plain dict (reports, traces)."""
        return {
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "corrupted": self.corrupted,
        }
