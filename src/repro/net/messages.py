"""Messages and authenticated envelopes for the synchronous network.

The model (Section 2) assumes a fully connected network of authenticated
channels: when a party receives a message it knows, unforgeably, who sent
it.  The simulator enforces this structurally — the ``sender`` field of a
delivered :class:`Message` is stamped by the network, never by the
(possibly Byzantine) sender, so no party can impersonate another.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Tuple

PartyId = int

#: Round-r outgoing traffic of one party: recipient → payload.
Outbox = Dict[PartyId, Any]

#: Round-r incoming traffic of one party: authenticated sender → payload.
Inbox = Dict[PartyId, Any]


@dataclass(frozen=True)
class Message:
    """A single authenticated point-to-point message.

    ``sender`` is stamped by the network (authenticated channels), ``round``
    is the synchronous round in which the message was sent — and, in the
    synchronous model, also the round in which it is delivered.
    """

    sender: PartyId
    recipient: PartyId
    round: int
    payload: Any

    def __repr__(self) -> str:  # compact traces
        return (
            f"Message(r{self.round} {self.sender}->{self.recipient}: "
            f"{self.payload!r})"
        )


def deliver(messages: Iterable[Message], n: int) -> Dict[PartyId, Inbox]:
    """Group round messages into per-recipient authenticated inboxes.

    If a sender addresses the same recipient twice in one round, the last
    payload wins — honest protocols in this library never do that, and for
    Byzantine senders it is merely one of many admissible behaviours.
    """
    inboxes: Dict[PartyId, Inbox] = {pid: {} for pid in range(n)}
    for message in messages:
        if 0 <= message.recipient < n:
            inboxes[message.recipient][message.sender] = message.payload
    return inboxes


def broadcast(payload: Any, n: int) -> Outbox:
    """An outbox sending *payload* to every party (including oneself).

    Self-delivery keeps protocol code uniform: a party processes its own
    value through the same path as everyone else's.
    """
    return {recipient: payload for recipient in range(n)}
