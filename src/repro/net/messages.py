"""Messages and authenticated envelopes for the synchronous network.

The model (Section 2) assumes a fully connected network of authenticated
channels: when a party receives a message it knows, unforgeably, who sent
it.  The simulator enforces this structurally — the ``sender`` field of a
delivered :class:`Message` is stamped by the network, never by the
(possibly Byzantine) sender, so no party can impersonate another.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, Mapping

PartyId = int

#: The declared wire-message types of the whole codebase, keyed by the tag
#: string every tagged payload tuple starts with.  This registry is the
#: source of truth for the PL003 handler-exhaustiveness lint
#: (:mod:`repro.statics.rules.handlers`): a protocol module may only
#: construct or match payload tags declared here, and every tag it sends it
#: must also handle.  New protocol variants add their tags (and handlers)
#: here first.
MESSAGE_TYPES: Mapping[str, str] = {
    "val": (
        "value distribution: gradecast round 1 "
        "(RealAA appends its accusation list); also the per-iteration "
        "RBC session tag of the asynchronous iterated-AA baseline"
    ),
    "echo": (
        "gradecast round-2 echo vector {origin: value}; also Bracha RBC's "
        "echo message in the asynchronous substrate"
    ),
    "sup": "gradecast round-3 support vector {origin: value}",
    "nval": "naive 1-round value distribution (ablation A2 baseline)",
    "dsmsg": "Dolev-Strong relay envelope: (tag, session, round, items)",
    "ds": (
        "Dolev-Strong signature preimage (never delivered as a payload on "
        "its own; only signed and verified inside 'dsmsg' items)"
    ),
    "init": "Bracha reliable-broadcast init (asynchronous substrate)",
    "ready": "Bracha reliable-broadcast ready (asynchronous substrate)",
    "report": "asynchronous iterated-AA progress report (iteration, origins)",
}

#: Declared types that are *not* wire envelopes and therefore need no
#: receive-side handler: signature preimages are constructed and verified,
#: never dispatched on.
HANDLER_EXEMPT_TYPES: FrozenSet[str] = frozenset({"ds"})

#: Round-r outgoing traffic of one party: recipient → payload.
Outbox = Dict[PartyId, Any]

#: Round-r incoming traffic of one party: authenticated sender → payload.
Inbox = Dict[PartyId, Any]


@dataclass(frozen=True)
class Message:
    """A single authenticated point-to-point message.

    ``sender`` is stamped by the network (authenticated channels), ``round``
    is the synchronous round in which the message was sent — and, in the
    synchronous model, also the round in which it is delivered.
    """

    sender: PartyId
    recipient: PartyId
    round: int
    payload: Any

    def __repr__(self) -> str:  # compact traces
        return (
            f"Message(r{self.round} {self.sender}->{self.recipient}: "
            f"{self.payload!r})"
        )


def deliver(messages: Iterable[Message], n: int) -> Dict[PartyId, Inbox]:
    """Group round messages into per-recipient authenticated inboxes.

    If a sender addresses the same recipient twice in one round, the last
    payload wins — honest protocols in this library never do that, and for
    Byzantine senders it is merely one of many admissible behaviours.
    """
    inboxes: Dict[PartyId, Inbox] = {pid: {} for pid in range(n)}
    for message in messages:
        if 0 <= message.recipient < n:
            inboxes[message.recipient][message.sender] = message.payload
    return inboxes


def broadcast(payload: Any, n: int) -> Outbox:
    """An outbox sending *payload* to every party (including oneself).

    Self-delivery keeps protocol code uniform: a party processes its own
    value through the same path as everyone else's.
    """
    return {recipient: payload for recipient in range(n)}
