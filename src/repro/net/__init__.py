"""Synchronous message-passing substrate (the model of Section 2).

Lockstep rounds, authenticated channels, and a rushing full-information
adversary hook.  See :mod:`repro.net.network` for the execution semantics.
"""

from .faults import CORRUPTION_MENU, FaultInjector, FaultModelError, FaultPlan
from .messages import Inbox, Message, Outbox, PartyId, broadcast, deliver
from .network import (
    AdversaryView,
    ByzantineModelError,
    ExecutionResult,
    ExecutionTrace,
    SynchronousNetwork,
    TraceLevel,
)
from .protocol import (
    PhasedParty,
    ProtocolParty,
    ProtocolStateError,
    SilentParty,
)
from .trace import (
    InvariantMonitor,
    InvariantViolation,
    MultiObserver,
    Observer,
    RoundRecord,
    TranscriptRecorder,
)
from .runner import run_fault_free, run_protocol

__all__ = [
    "PartyId",
    "Message",
    "Inbox",
    "Outbox",
    "broadcast",
    "deliver",
    "ProtocolParty",
    "ProtocolStateError",
    "SilentParty",
    "PhasedParty",
    "SynchronousNetwork",
    "AdversaryView",
    "ExecutionResult",
    "ExecutionTrace",
    "TraceLevel",
    "ByzantineModelError",
    "FaultPlan",
    "FaultInjector",
    "FaultModelError",
    "CORRUPTION_MENU",
    "run_protocol",
    "run_fault_free",
    "Observer",
    "MultiObserver",
    "TranscriptRecorder",
    "RoundRecord",
    "InvariantMonitor",
    "InvariantViolation",
]
