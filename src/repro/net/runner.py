"""Convenience entry points for running protocol executions.

Experiments and examples construct parties via a factory, pick an adversary,
and call :func:`run_protocol`.  The factory builds *every* party (corrupted
ids included) so that puppet-driving adversaries — e.g. a passively
corrupted party that follows the protocol — have a faithful state machine
to drive.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from .faults import FaultPlan
from .messages import PartyId
from .network import ExecutionResult, SynchronousNetwork, TraceLevel
from .protocol import ProtocolParty

if TYPE_CHECKING:  # runtime import would be circular (adversary imports net)
    from ..adversary.base import Adversary
    from .trace import Observer

PartyFactory = Callable[[PartyId], ProtocolParty]


def run_protocol(
    n: int,
    t: int,
    party_factory: PartyFactory,
    adversary: Optional[Adversary] = None,
    max_rounds: Optional[int] = None,
    observer: Optional[Observer] = None,
    trace_level: TraceLevel = TraceLevel.FULL,
    fault_plan: Optional[FaultPlan] = None,
) -> ExecutionResult:
    """Build ``n`` parties, wire them to the adversary, and run to completion.

    Returns the :class:`~repro.net.network.ExecutionResult`, whose
    ``honest_outputs`` are what AA's Termination / Validity / Agreement
    properties quantify over.  ``trace_level`` selects between full
    payload accounting and the aggregate-counts fast path (see
    :class:`~repro.net.network.TraceLevel`).  ``fault_plan`` (gated by
    ``allow_model_violations=True``) injects honest-message faults for
    degradation experiments.
    """
    parties = {pid: party_factory(pid) for pid in range(n)}
    network = SynchronousNetwork(
        parties,
        t,
        adversary,
        observer=observer,
        trace_level=trace_level,
        fault_plan=fault_plan,
    )
    return network.run(max_rounds=max_rounds)


def run_fault_free(
    n: int,
    party_factory: PartyFactory,
    max_rounds: Optional[int] = None,
) -> ExecutionResult:
    """Run with no adversary at all (every party honest)."""
    return run_protocol(n, 0, party_factory, adversary=None, max_rounds=max_rounds)
