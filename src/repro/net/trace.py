"""Round-by-round observation of synchronous executions.

An :class:`Observer` attached to :class:`~repro.net.network
.SynchronousNetwork` sees every round after delivery — the honest traffic,
the Byzantine traffic, and the party objects.  Concrete observers:

* :class:`TranscriptRecorder` — records everything and renders a readable
  transcript (the debugging view of an execution);
* :class:`InvariantMonitor` — evaluates predicates over the parties after
  every round and fails fast with the round number when one breaks (used
  by tests to pin *when* a protocol invariant would be violated, not just
  that the final output is wrong);
* :class:`~repro.observability.collector.MetricsCollector` (in
  :mod:`repro.observability`) — structured per-round metrics feeding the
  JSONL trace export;
* :class:`MultiObserver` — fans one execution out to several observers,
  so a transcript, an invariant monitor, and a metrics collector can all
  watch the same run.

Attaching any observer forces the network onto the slow path that
materialises :class:`~repro.net.messages.Message` objects; detached, the
:attr:`~repro.net.network.TraceLevel.AGGREGATE` fast path is unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .messages import Message, Outbox, PartyId


class Observer:
    """Base observer: override :meth:`on_round`."""

    def on_round(
        self,
        round_index: int,
        honest_messages: Dict[PartyId, Outbox],
        byzantine_messages: Sequence[Message],
        parties: Mapping[PartyId, Any],
        corrupted: Sequence[PartyId],
    ) -> None:
        """Called once per round, after delivery and processing."""


@dataclass
class RoundRecord:
    """Everything that happened in one round."""

    round_index: int
    honest_messages: Dict[PartyId, Outbox]
    byzantine_messages: Tuple[Message, ...]
    corrupted: Tuple[PartyId, ...]


class TranscriptRecorder(Observer):
    """Record every round; render a human-readable transcript.

    ``payload_filter`` optionally shortens payloads in the rendering (raw
    echo vectors are long); recording always keeps the originals.
    """

    def __init__(
        self, payload_filter: Optional[Callable[[Any], Any]] = None
    ) -> None:
        self.rounds: List[RoundRecord] = []
        self._payload_filter = payload_filter or self._default_filter

    @staticmethod
    def _default_filter(payload: Any) -> Any:
        if isinstance(payload, tuple) and payload and isinstance(payload[0], str):
            if len(payload) >= 3 and isinstance(payload[2], dict):
                return (payload[0], payload[1], f"<{len(payload[2])} entries>")
            return payload[:3]
        return payload

    def on_round(
        self,
        round_index: int,
        honest_messages: Mapping[PartyId, Outbox],
        byzantine_messages: Sequence[Message],
        parties: Mapping[PartyId, Any],
        corrupted: Sequence[PartyId],
    ) -> None:
        self.rounds.append(
            RoundRecord(
                round_index=round_index,
                honest_messages={
                    pid: dict(outbox) for pid, outbox in honest_messages.items()
                },
                byzantine_messages=tuple(byzantine_messages),
                corrupted=tuple(sorted(corrupted)),
            )
        )

    def render(self, max_rounds: Optional[int] = None) -> str:
        """A compact text transcript of the execution."""
        lines: List[str] = []
        for record in self.rounds[: max_rounds or len(self.rounds)]:
            lines.append(
                f"— round {record.round_index} "
                f"(corrupted: {list(record.corrupted) or 'none'})"
            )
            for pid in sorted(record.honest_messages):
                outbox = record.honest_messages[pid]
                if not outbox:
                    continue
                sample = self._payload_filter(next(iter(outbox.values())))
                lines.append(
                    f"    {pid} → {len(outbox)} recipients: {sample!r}"
                )
            by_sender: Dict[PartyId, int] = {}
            for message in record.byzantine_messages:
                by_sender[message.sender] = by_sender.get(message.sender, 0) + 1
            for sender in sorted(by_sender):
                lines.append(
                    f"    {sender} (byz) → {by_sender[sender]} messages"
                )
        return "\n".join(lines)

    @property
    def byzantine_message_total(self) -> int:
        return sum(len(r.byzantine_messages) for r in self.rounds)


class MultiObserver(Observer):
    """Fan one execution's observations out to several observers.

    Observers are notified in the given order; an exception from one (for
    example an :class:`InvariantViolation`) aborts the round and skips the
    remaining observers — the fail-fast semantics invariant monitoring
    wants.
    """

    def __init__(self, *observers: Observer) -> None:
        self.observers: Tuple[Observer, ...] = tuple(observers)

    def on_round(
        self,
        round_index: int,
        honest_messages: Mapping[PartyId, Outbox],
        byzantine_messages: Sequence[Message],
        parties: Mapping[PartyId, Any],
        corrupted: Sequence[PartyId],
    ) -> None:
        for observer in self.observers:
            observer.on_round(
                round_index, honest_messages, byzantine_messages, parties, corrupted
            )


class InvariantViolation(AssertionError):
    """An execution invariant broke; carries the round it broke in."""

    def __init__(self, name: str, round_index: int) -> None:
        super().__init__(f"invariant {name!r} violated in round {round_index}")
        self.name = name
        self.round_index = round_index


class InvariantMonitor(Observer):
    """Check named predicates over the honest parties after every round.

    Each predicate receives ``(round_index, parties, corrupted)`` and
    returns ``True`` while the invariant holds.
    """

    def __init__(
        self,
        invariants: Dict[str, Callable[[int, Mapping[PartyId, Any], Sequence[PartyId]], bool]],
    ) -> None:
        self.invariants = dict(invariants)
        self.checked_rounds = 0

    def on_round(
        self,
        round_index: int,
        honest_messages: Mapping[PartyId, Outbox],
        byzantine_messages: Sequence[Message],
        parties: Mapping[PartyId, Any],
        corrupted: Sequence[PartyId],
    ) -> None:
        self.checked_rounds += 1
        for name, predicate in self.invariants.items():
            if not predicate(round_index, parties, corrupted):
                raise InvariantViolation(name, round_index)
