"""The synchronous network simulator.

Implements the model of Section 2: ``n`` parties in a fully connected
network of authenticated channels, with synchronized clocks and guaranteed
delivery within the round.  In simulation this is lockstep execution:

1. every honest party emits its round-``r`` messages;
2. the adversary — *rushing* and with full information — inspects the honest
   traffic and all honest state, may adaptively corrupt further parties (up
   to ``t`` in total), and chooses the Byzantine parties' round-``r``
   messages;
3. all messages are delivered; every honest party processes its inbox.

Authenticated channels are enforced structurally: Byzantine messages can
only ever carry a corrupted party's own id as the sender.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Set, Tuple

from .faults import FaultInjector, FaultPlan
from .messages import Message, Outbox, PartyId, deliver
from .protocol import ProtocolParty

if TYPE_CHECKING:  # runtime import would be circular (adversary imports net)
    from ..adversary.base import Adversary
    from .trace import Observer


class ByzantineModelError(RuntimeError):
    """Raised when an adversary exceeds the powers the model grants it."""


class TraceLevel(IntEnum):
    """How much accounting :class:`ExecutionTrace` performs per round.

    ``AGGREGATE``
        Message *counts* only (total, per sender class, per round).  The
        executor skips :class:`~repro.net.messages.Message` object
        construction and the deep :func:`payload_units` walk — the fast
        path used by parameter sweeps, where only rounds and AA verdicts
        feed the result rows.
    ``FULL``
        Everything ``AGGREGATE`` tracks plus payload-unit accounting, the
        level the message-complexity experiment (T8) needs.  The default.

    Attaching an :class:`~repro.net.trace.Observer` forces message-object
    construction regardless of the level (observers receive the objects),
    but payload units are still only accumulated at ``FULL``.
    """

    AGGREGATE = 0
    FULL = 1


@dataclass
class AdversaryView:
    """Everything the (full-information, rushing) adversary sees in a round.

    ``honest_messages`` is the honest round-``r`` traffic — available
    *before* the adversary commits its own messages (rushing).  The honest
    party objects themselves are exposed read-only by convention: the
    computationally unbounded adversary of the paper knows the full state of
    the system, and worst-case strategies exploit it.
    """

    round_index: int
    n: int
    t: int
    corrupted: Set[PartyId]
    honest_messages: Dict[PartyId, Outbox]
    parties: Mapping[PartyId, ProtocolParty]

    @property
    def honest(self) -> Set[PartyId]:
        return set(range(self.n)) - self.corrupted


def payload_units(payload: Any) -> int:
    """The size of a payload in atomic *value units*.

    Counts the scalars a real network would have to encode: each atom
    (number, string, ``None``, …) is one unit; containers contribute the
    sum of their parts (dict keys included).  Used by the
    message-complexity experiment (T8): the paper cites ``O(R·n³)``
    message complexity for RealAA ([6]), which here shows up as ``O(n²)``
    messages per round carrying ``O(n)``-entry echo/support vectors.

    Iterative on purpose: the payload is adversary-controlled, and a
    Byzantine sender must not be able to crash the *simulator* with a
    deeply nested container (Python's recursion limit is ~1000 frames).
    """
    total = 0
    stack = [payload]
    while stack:
        item = stack.pop()
        if isinstance(item, dict):
            for key, value in item.items():
                stack.append(key)
                stack.append(value)
        elif isinstance(item, (list, tuple, set, frozenset)):
            stack.extend(item)
        else:
            total += 1
    return total


@dataclass
class ExecutionTrace:
    """Accounting for one protocol execution.

    ``honest_payload_units`` / ``byzantine_payload_units`` are only
    accumulated at :attr:`TraceLevel.FULL`; at ``AGGREGATE`` they stay 0
    while every message *count* remains exact.
    """

    level: TraceLevel = TraceLevel.FULL
    rounds_executed: int = 0
    honest_message_count: int = 0
    byzantine_message_count: int = 0
    honest_payload_units: int = 0
    byzantine_payload_units: int = 0
    #: Messages sent in each round (honest + Byzantine).
    per_round_messages: List[int] = field(default_factory=list)
    corruption_rounds: Dict[PartyId, int] = field(default_factory=dict)
    #: Honest messages altered by an attached :class:`~repro.net.faults
    #: .FaultPlan` (all stay 0 on model-clean executions).
    faults_dropped: int = 0
    faults_duplicated: int = 0
    faults_corrupted: int = 0

    @property
    def message_count(self) -> int:
        return self.honest_message_count + self.byzantine_message_count

    @property
    def payload_unit_count(self) -> int:
        return self.honest_payload_units + self.byzantine_payload_units


@dataclass
class ExecutionResult:
    """The outcome of a synchronous execution."""

    outputs: Dict[PartyId, Any]
    honest: Set[PartyId]
    corrupted: Set[PartyId]
    trace: ExecutionTrace
    parties: Dict[PartyId, ProtocolParty]

    @property
    def honest_outputs(self) -> Dict[PartyId, Any]:
        return {pid: self.outputs[pid] for pid in sorted(self.honest)}


class SynchronousNetwork:
    """Lockstep executor for one protocol instance.

    Parameters
    ----------
    parties:
        One :class:`ProtocolParty` per id ``0..n−1``.  Instances belonging
        to corrupted ids are handed to the adversary as *puppets* — it may
        drive them faithfully (a passively corrupted party), drive them with
        altered inputs, or ignore them entirely.
    t:
        The corruption budget.  The adversary may never control more than
        ``t`` parties; exceeding the budget raises
        :class:`ByzantineModelError` (a bug in the experiment, not a legal
        execution).
    adversary:
        An object implementing the :class:`repro.adversary.base.Adversary`
        protocol, or ``None`` for a fault-free execution.
    trace_level:
        How much accounting to perform per round (see :class:`TraceLevel`).
        ``FULL`` (the default) matches the historical behaviour;
        ``AGGREGATE`` keeps exact message counts but skips per-message
        object construction and payload-unit accounting — measurably
        faster on the sweep hot path.
    fault_plan:
        An optional :class:`~repro.net.faults.FaultPlan` applied to
        *honest* traffic at delivery time (drops, late duplicates,
        payload corruption).  Any plan that can actually alter a message
        requires ``allow_model_violations=True`` — it breaks the
        reliable-delivery guarantee the paper's lemmas assume, and exists
        so the resilience lab can measure degradation beyond the model.
        The adversary still sees the traffic as *sent* (rushing is a
        property of the adversary, not of the lossy channel).
    """

    def __init__(
        self,
        parties: Dict[PartyId, ProtocolParty],
        t: int,
        adversary: Optional[Adversary] = None,
        observer: Optional[Observer] = None,
        trace_level: TraceLevel = TraceLevel.FULL,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        n = len(parties)
        if sorted(parties) != list(range(n)):
            raise ValueError("parties must be keyed 0..n-1")
        self.n = n
        self.t = t
        self.parties = parties
        self.adversary = adversary
        self.observer = observer
        self.fault_injector: Optional[FaultInjector] = (
            FaultInjector(fault_plan) if fault_plan is not None else None
        )
        #: Late duplicates scheduled by the fault plan: recipient →
        #: sender → payload, delivered (one round after the original)
        #: unless a fresh message from the same sender supersedes them.
        self._carryover: Dict[PartyId, Dict[PartyId, Any]] = {}
        self.corrupted: Set[PartyId] = set()
        self.trace = ExecutionTrace(level=TraceLevel(trace_level))
        if adversary is not None:
            initial = set(adversary.initial_corruptions(self._setup_view()))
            self._register_corruptions(initial, round_index=0)

    def _setup_view(self) -> AdversaryView:
        return AdversaryView(
            round_index=-1,
            n=self.n,
            t=self.t,
            corrupted=set(self.corrupted),
            honest_messages={},
            parties=self.parties,
        )

    def _register_corruptions(self, new: Set[PartyId], round_index: int) -> None:
        new = set(new) - self.corrupted
        if not new:
            return
        if len(self.corrupted) + len(new) > self.t:
            raise ByzantineModelError(
                f"adversary requested {len(self.corrupted) + len(new)} "
                f"corruptions but the budget is t={self.t}"
            )
        for pid in sorted(new):
            if not 0 <= pid < self.n:
                raise ByzantineModelError(f"cannot corrupt unknown party {pid}")
            self.corrupted.add(pid)
            self.trace.corruption_rounds[pid] = round_index
        if self.adversary is not None:
            self.adversary.on_corrupted(
                {pid: self.parties[pid] for pid in sorted(new)}
            )

    def run(self, max_rounds: Optional[int] = None) -> ExecutionResult:
        """Execute until every honest party's protocol duration has elapsed."""
        total = max(
            (self.parties[pid].duration for pid in self._honest()), default=0
        )
        if max_rounds is not None:
            total = min(total, max_rounds)
        for round_index in range(total):
            self._run_round(round_index)
        if self.fault_injector is not None:
            self.trace.faults_dropped = self.fault_injector.dropped
            self.trace.faults_duplicated = self.fault_injector.duplicated
            self.trace.faults_corrupted = self.fault_injector.corrupted
        outputs = {pid: self.parties[pid].output for pid in range(self.n)}
        return ExecutionResult(
            outputs=outputs,
            honest=self._honest(),
            corrupted=set(self.corrupted),
            trace=self.trace,
            parties=self.parties,
        )

    def _honest(self) -> Set[PartyId]:
        return set(range(self.n)) - self.corrupted

    def _apply_faults(
        self, round_index: int, honest_out: Dict[PartyId, Outbox]
    ) -> Tuple[Dict[PartyId, Outbox], Dict[PartyId, Dict[PartyId, Any]]]:
        """Fault-filtered honest traffic plus next round's late duplicates."""
        injector = self.fault_injector
        if injector is None:  # pragma: no cover - callers gate on the field
            return honest_out, {}
        delivered: Dict[PartyId, Outbox] = {}
        carry: Dict[PartyId, Dict[PartyId, Any]] = {}
        for sender in sorted(honest_out):
            kept: Outbox = {}
            for recipient, payload in honest_out[sender].items():
                copies = injector.transmit(round_index, payload)
                if not copies:
                    continue
                kept[recipient] = copies[0]
                if len(copies) > 1:
                    carry.setdefault(recipient, {})[sender] = copies[1]
            delivered[sender] = kept
        return delivered, carry

    def _run_round(self, round_index: int) -> None:
        # 1. Honest parties commit their round-r messages first.
        honest_out: Dict[PartyId, Outbox] = {}
        for pid in sorted(self._honest()):
            party = self.parties[pid]
            if round_index < party.duration:
                honest_out[pid] = dict(party.messages_for_round(round_index))
            else:
                honest_out[pid] = {}

        # 2. The rushing adversary reacts: adaptive corruption + messages.
        byzantine_out: Dict[PartyId, Outbox] = {}
        byzantine_sent = 0
        if self.adversary is not None:
            view = AdversaryView(
                round_index=round_index,
                n=self.n,
                t=self.t,
                corrupted=set(self.corrupted),
                honest_messages=honest_out,
                parties=self.parties,
            )
            newly = set(self.adversary.adapt_corruptions(view))
            self._register_corruptions(newly, round_index)
            for pid in sorted(newly):
                # A party corrupted in round r no longer speaks honestly in r.
                honest_out.pop(pid, None)
            view.corrupted = set(self.corrupted)
            view.honest_messages = honest_out
            byz_out = self.adversary.byzantine_messages(view)
            for sender, outbox in byz_out.items():
                if sender not in self.corrupted:
                    raise ByzantineModelError(
                        f"adversary tried to speak for honest party {sender}"
                    )
                for recipient in outbox:
                    # Authenticated point-to-point channels only exist
                    # between the n modelled parties: a Byzantine message
                    # addressed outside 0..n-1 is a power the model does
                    # not grant, not traffic `deliver` may silently drop.
                    if type(recipient) is not int or not 0 <= recipient < self.n:
                        raise ByzantineModelError(
                            f"byzantine sender {sender} addressed unknown "
                            f"recipient {recipient!r}"
                        )
                byzantine_out[sender] = dict(outbox)
                byzantine_sent += len(outbox)

        # 2b. The (gated) fault plan mangles honest traffic at delivery
        # time.  Accounting below stays on the *sent* traffic: the trace
        # answers "what did honest parties emit", the fault counters
        # answer "what did the channel do to it".
        delivered_out = honest_out
        next_carry: Dict[PartyId, Dict[PartyId, Any]] = {}
        if self.fault_injector is not None:
            delivered_out, next_carry = self._apply_faults(
                round_index, honest_out
            )

        # 3. Deliver everything at once; honest parties process their inbox.
        honest_sent = sum(len(outbox) for outbox in honest_out.values())
        self.trace.honest_message_count += honest_sent
        self.trace.byzantine_message_count += byzantine_sent
        self.trace.per_round_messages.append(honest_sent + byzantine_sent)

        full = self.trace.level is TraceLevel.FULL
        byzantine_messages: List[Message] = []
        if full or self.observer is not None:
            # Slow path: materialise Message objects (observers consume
            # them) and, at FULL, walk every payload for unit accounting.
            byzantine_messages = [
                Message(sender, recipient, round_index, payload)
                for sender, outbox in byzantine_out.items()
                for recipient, payload in outbox.items()
            ]
            all_messages = byzantine_messages + [
                Message(sender, recipient, round_index, payload)
                for sender, outbox in delivered_out.items()
                for recipient, payload in outbox.items()
            ]
            if full:
                self.trace.honest_payload_units += sum(
                    payload_units(payload)
                    for outbox in honest_out.values()
                    for payload in outbox.values()
                )
                self.trace.byzantine_payload_units += sum(
                    payload_units(message.payload)
                    for message in byzantine_messages
                )
            inboxes = deliver(all_messages, self.n)
        else:
            # Fast path (AGGREGATE, no observer): fill the inboxes
            # directly.  Equivalent to `deliver`: each sender's outbox is
            # a dict, so (sender, recipient) pairs are unique within a
            # round and delivery order cannot matter.
            inboxes = {pid: {} for pid in range(self.n)}
            for sender, outbox in byzantine_out.items():
                for recipient, payload in outbox.items():
                    inboxes[recipient][sender] = payload
            for sender, outbox in delivered_out.items():
                for recipient, payload in outbox.items():
                    if 0 <= recipient < self.n:
                        inboxes[recipient][sender] = payload
        if self._carryover:
            # Late duplicates from the previous round; a fresh message
            # from the same sender supersedes its stale copy.
            for recipient, stale in self._carryover.items():
                inbox = inboxes[recipient]
                for sender, payload in stale.items():
                    inbox.setdefault(sender, payload)
        self._carryover = next_carry
        if self.adversary is not None and self.corrupted:
            self.adversary.observe_delivery(
                round_index,
                {pid: inboxes[pid] for pid in sorted(self.corrupted)},
            )
        for pid in sorted(self._honest()):
            party = self.parties[pid]
            if round_index < party.duration:
                party.receive_round(round_index, inboxes[pid])
        self.trace.rounds_executed = round_index + 1
        if self.observer is not None:
            self.observer.on_round(
                round_index,
                honest_out,
                byzantine_messages,
                self.parties,
                sorted(self.corrupted),
            )
