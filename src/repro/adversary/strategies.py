"""General-purpose Byzantine strategies.

These strategies are protocol-agnostic: they work against any protocol run
on the synchronous network.  Protocol-aware worst-case attacks against
RealAA live in :mod:`repro.adversary.realaa_attacks`.
"""

from __future__ import annotations

import random
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    Optional,
    Sequence,
    Set,
)

from ..net.messages import Outbox, PartyId
from ..net.network import AdversaryView
from ..net.protocol import ProtocolParty
from .base import Adversary, PuppetDrivingAdversary

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.spec import BatchAdversarySpec


class SilentAdversary(Adversary):
    """Corrupted parties never send anything (omission / crash-at-start).

    Against gradecast-based protocols every honest party sees confidence 0
    for these senders, so they are detected and ignored immediately.
    """

    def byzantine_messages(self, view: AdversaryView) -> Dict[PartyId, Outbox]:
        return {pid: {} for pid in view.corrupted}

    def batch_spec(self) -> "BatchAdversarySpec":
        """Permanent omission: the silent batch kind."""
        if type(self) is not SilentAdversary:
            return super().batch_spec()
        from ..engine.spec import KIND_SILENT, BatchAdversarySpec

        return BatchAdversarySpec(
            kind=KIND_SILENT, corrupted=self._requested_frozen()
        )


class CrashAdversary(PuppetDrivingAdversary):
    """Follow the protocol faithfully, then crash at a chosen round.

    In the crash round itself, only the recipients with ids below
    ``partial_to`` still receive the faithful messages — modelling the
    classic "crash mid-send" behaviour that leaves honest parties with
    inconsistent views.
    """

    def __init__(
        self,
        crash_round: int,
        partial_to: int = 0,
        corrupt: Optional[Iterable[PartyId]] = None,
    ) -> None:
        super().__init__(corrupt)
        if crash_round < 0:
            raise ValueError("crash_round must be non-negative")
        self.crash_round = crash_round
        self.partial_to = partial_to

    def transform_outbox(
        self, pid: PartyId, view: AdversaryView, faithful: Outbox
    ) -> Outbox:
        if view.round_index < self.crash_round:
            return faithful
        if view.round_index == self.crash_round:
            return {
                recipient: payload
                for recipient, payload in faithful.items()
                if recipient < self.partial_to
            }
        return {}

    def batch_spec(self) -> "BatchAdversarySpec":
        """Faithful-until-crash with a deterministic mid-send recipient cut."""
        if type(self) is not CrashAdversary:
            return super().batch_spec()
        from ..engine.spec import KIND_CRASH, BatchAdversarySpec

        return BatchAdversarySpec(
            kind=KIND_CRASH,
            corrupted=self._requested_frozen(),
            crash_round=self.crash_round,
            partial_to=self.partial_to,
        )


class ConsistentLiarAdversary(PuppetDrivingAdversary):
    # statics: batch-unsupported(forged puppet inputs require per-party state replay)
    """Run the protocol honestly but from forged inputs.

    The corrupted parties behave indistinguishably from honest parties that
    happened to hold different inputs.  AA's Validity quantifies only over
    *honest* inputs, so the protocols must tolerate arbitrary consistent
    lies — this strategy checks exactly that.

    Parameters
    ----------
    liar_factory:
        Builds the forged-state party for a corrupted id (same protocol,
        different input).
    """

    def __init__(
        self,
        liar_factory: Callable[[PartyId], ProtocolParty],
        corrupt: Optional[Iterable[PartyId]] = None,
    ) -> None:
        super().__init__(corrupt)
        self._liar_factory = liar_factory

    def on_corrupted(self, puppets: Dict[PartyId, ProtocolParty]) -> None:
        forged = {pid: self._liar_factory(pid) for pid in puppets}
        super().on_corrupted(forged)


class RandomNoiseAdversary(Adversary):
    # statics: batch-unsupported(random malformed payloads have no declarative batch form)
    """Spray structurally random garbage at random recipients.

    Payloads include wrong types, malformed tuples, huge and non-finite
    numbers.  Protocol implementations must validate everything they parse;
    this strategy is the fuzzer that keeps them honest.
    """

    #: Payload menu: a mix of near-miss protocol shapes and raw junk.
    _JUNK: Sequence[Any] = (
        None,
        0,
        -1,
        3.5,
        float("inf"),
        float("nan"),
        "garbage",
        ("val",),
        ("val", 0),
        ("echo", 0, "not-a-dict"),
        ("sup", -3, {}),
        ("unknown", 1, 2, 3),
        {"not": "expected"},
        [1, 2, 3],
    )

    def __init__(
        self,
        seed: int = 0,
        send_probability: float = 0.8,
        corrupt: Optional[Iterable[PartyId]] = None,
    ) -> None:
        super().__init__(corrupt)
        self._rng = random.Random(seed)
        self._send_probability = send_probability

    def byzantine_messages(self, view: AdversaryView) -> Dict[PartyId, Outbox]:
        out: Dict[PartyId, Outbox] = {}
        for pid in sorted(view.corrupted):
            outbox: Outbox = {}
            for recipient in range(view.n):
                if self._rng.random() < self._send_probability:
                    outbox[recipient] = self._rng.choice(self._JUNK)
            out[pid] = outbox
        return out


class EchoAdversary(Adversary):
    # statics: batch-unsupported(echoing depends on per-round inbox contents the batch engine never materialises)
    """Replay to everyone the first honest message observed this round.

    A cheap equivocation-free strategy that stays syntactically valid; it
    stresses protocols' sender-attribution logic (the payload may describe a
    different party's state, but the authenticated sender id cannot lie).
    """

    def byzantine_messages(self, view: AdversaryView) -> Dict[PartyId, Outbox]:
        sample: Any = None
        for sender in sorted(view.honest_messages):
            outbox = view.honest_messages[sender]
            for recipient in sorted(outbox):
                sample = outbox[recipient]
                break
            if sample is not None:
                break
        out: Dict[PartyId, Outbox] = {}
        for pid in sorted(view.corrupted):
            out[pid] = (
                {recipient: sample for recipient in range(view.n)}
                if sample is not None
                else {}
            )
        return out


class AdaptiveCrashAdversary(PuppetDrivingAdversary):
    # statics: batch-unsupported(adaptive corruption schedules are not replayable as a static batch spec)
    """Adaptive corruption: seize parties on a schedule, then silence them.

    ``schedule`` maps round → party ids to corrupt at the start of that
    round.  Until corrupted, those parties behave honestly (they are not
    puppets yet); afterwards they go silent.  Exercises the model's
    adaptive-adversary clause.
    """

    def __init__(self, schedule: Dict[int, Sequence[PartyId]]) -> None:
        super().__init__(corrupt=())
        self.schedule = {r: list(pids) for r, pids in schedule.items()}

    def initial_corruptions(self, view: AdversaryView) -> Set[PartyId]:
        return set(self.schedule.get(-1, ()))

    def adapt_corruptions(self, view: AdversaryView) -> Set[PartyId]:
        return set(self.schedule.get(view.round_index, ()))

    def transform_outbox(
        self, pid: PartyId, view: AdversaryView, faithful: Outbox
    ) -> Outbox:
        return {}
