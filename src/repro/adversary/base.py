"""The adversary interface (Section 2's threat model).

The adversary is computationally unbounded in the paper; in simulation it
is an object with *full information* (it may read every party's state), a
*rushing* capability (it sees the honest round-``r`` traffic before sending
its own), and an *adaptive* corruption hook (it may corrupt parties at any
point, up to the budget ``t``).  Corrupted parties are handed over as
puppets: the adversary may keep running their faithful state machines,
alter them, or discard them.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, Optional, Set

from ..net.messages import Inbox, Outbox, PartyId
from ..net.network import AdversaryView
from ..net.protocol import ProtocolParty

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.spec import BatchAdversarySpec


class Adversary(abc.ABC):
    """Base class for adversary strategies.

    Subclasses override :meth:`byzantine_messages` and, if they corrupt
    adaptively, :meth:`adapt_corruptions`.  The default corruption pattern
    is static: a fixed set chosen before round 0.
    """

    def __init__(self, corrupt: Optional[Iterable[PartyId]] = None) -> None:
        self._requested: Optional[Set[PartyId]] = (
            set(corrupt) if corrupt is not None else None
        )
        self.puppets: Dict[PartyId, ProtocolParty] = {}

    # -- corruption ----------------------------------------------------

    def initial_corruptions(self, view: AdversaryView) -> Set[PartyId]:
        """Parties corrupted before the execution starts.

        Defaults to the explicitly requested set, or the *last* ``t`` ids
        (``n−t .. n−1``) when none was given — a deterministic, documented
        convention used across the experiments.
        """
        if self._requested is not None:
            return set(self._requested)
        return set(range(view.n - view.t, view.n))

    def adapt_corruptions(self, view: AdversaryView) -> Set[PartyId]:
        """Additional corruptions at the start of round ``view.round_index``."""
        return set()

    def on_corrupted(self, puppets: Dict[PartyId, ProtocolParty]) -> None:
        """Receive the state machines of newly corrupted parties."""
        self.puppets.update(puppets)

    # -- traffic --------------------------------------------------------

    @abc.abstractmethod
    def byzantine_messages(self, view: AdversaryView) -> Dict[PartyId, Outbox]:
        """Round-``r`` messages of every corrupted party (rushing)."""

    def observe_delivery(
        self, round_index: int, inboxes: Dict[PartyId, Inbox]
    ) -> None:
        """See what the corrupted parties received this round."""

    # -- batch backend --------------------------------------------------

    def batch_spec(self) -> "BatchAdversarySpec":
        """Declarative description of this strategy for ``backend="batch"``.

        Strategies the batch engine can replay exactly override this to
        return a :class:`repro.engine.spec.BatchAdversarySpec`; everything
        else refuses here, preserving the batch backend's contract that
        unsupported features fail loudly instead of silently diverging.
        """
        from ..engine.errors import UnsupportedBackendError

        raise UnsupportedBackendError(
            f"{type(self).__name__} cannot be replayed by the batch "
            "backend; use backend='reference'"
        )

    def _requested_frozen(self) -> Optional[FrozenSet[PartyId]]:
        """The explicitly requested corruption set (``None`` = default)."""
        if self._requested is None:
            return None
        return frozenset(self._requested)


class NoAdversary(Adversary):
    """Corrupts nothing and sends nothing: a fault-free execution."""

    def initial_corruptions(self, view: AdversaryView) -> Set[PartyId]:
        return set()

    def byzantine_messages(self, view: AdversaryView) -> Dict[PartyId, Outbox]:
        return {}

    def batch_spec(self) -> "BatchAdversarySpec":
        """Fault-free, whatever corruption set was requested."""
        if type(self) is not NoAdversary:
            return super().batch_spec()
        from ..engine.spec import KIND_NONE, BatchAdversarySpec

        return BatchAdversarySpec(kind=KIND_NONE, corrupted=frozenset())


class PuppetDrivingAdversary(Adversary):
    # statics: batch-unsupported(drives faithful per-party state machines that the batch engine does not model)
    """Shared machinery for strategies that run the faithful state machines.

    Keeps every puppet's protocol running (collecting its outbox each round
    and feeding it the delivered inbox) and lets subclasses *transform* the
    faithful traffic via :meth:`transform_outbox` — identity by default,
    which yields a passively corrupted (honest-but-controlled) party.
    """

    def byzantine_messages(self, view: AdversaryView) -> Dict[PartyId, Outbox]:
        out: Dict[PartyId, Outbox] = {}
        for pid in sorted(view.corrupted):
            puppet = self.puppets.get(pid)
            if puppet is None or view.round_index >= puppet.duration:
                out[pid] = {}
                continue
            faithful = dict(puppet.messages_for_round(view.round_index))
            out[pid] = self.transform_outbox(pid, view, faithful)
        return out

    def observe_delivery(
        self, round_index: int, inboxes: Dict[PartyId, Inbox]
    ) -> None:
        for pid, inbox in inboxes.items():
            puppet = self.puppets.get(pid)
            if puppet is not None and round_index < puppet.duration:
                try:
                    puppet.receive_round(round_index, inbox)
                except Exception:
                    # A puppet is a *corrupted* party: if a subclass drove
                    # it off its state machine's rails, its internal crash
                    # is the adversary's problem, never the execution's.
                    self.puppets.pop(pid, None)

    def transform_outbox(
        self, pid: PartyId, view: AdversaryView, faithful: Outbox
    ) -> Outbox:
        """Rewrite one puppet's faithful round traffic (identity = passive)."""
        return faithful


class PassiveAdversary(PuppetDrivingAdversary):
    """Corrupted parties that follow the protocol to the letter.

    The weakest admissible adversary: useful as a sanity baseline (all
    guarantees must hold, and outputs usually coincide with the fault-free
    run) and as the base class for strategies that deviate selectively.
    """

    def batch_spec(self) -> "BatchAdversarySpec":
        """Faithful broadcasts every round: the passive batch kind."""
        if type(self) is not PassiveAdversary:
            return super().batch_spec()
        from ..engine.spec import KIND_PASSIVE, BatchAdversarySpec

        return BatchAdversarySpec(
            kind=KIND_PASSIVE, corrupted=self._requested_frozen()
        )
