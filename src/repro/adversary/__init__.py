"""Byzantine adversary strategies for the synchronous network."""

from .base import Adversary, NoAdversary, PassiveAdversary, PuppetDrivingAdversary
from .chaos import ChaosAdversary, ChaosLogEntry
from .strategies import (
    AdaptiveCrashAdversary,
    ConsistentLiarAdversary,
    CrashAdversary,
    EchoAdversary,
    RandomNoiseAdversary,
    SilentAdversary,
)

__all__ = [
    "Adversary",
    "NoAdversary",
    "PassiveAdversary",
    "PuppetDrivingAdversary",
    "SilentAdversary",
    "CrashAdversary",
    "ConsistentLiarAdversary",
    "RandomNoiseAdversary",
    "EchoAdversary",
    "AdaptiveCrashAdversary",
    "ChaosAdversary",
    "ChaosLogEntry",
]
