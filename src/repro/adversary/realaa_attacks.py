"""Worst-case, protocol-aware attacks on the gradecast-based protocols.

**BurnScheduleAdversary** implements the adversary of Fekete's lower bound
as adapted to RealAA's mechanics (Section 4's discussion): the corruption
budget ``t`` is split across iterations as ``t_1 + … + t_R ≤ t``; in
iteration ``i``, ``t_i`` previously clean Byzantine parties *burn*
themselves by equivocating once, splitting the honest parties into a group
that accepts the planted value (confidence 1) and a group that does not
(confidence 0).  The honest range then shrinks only by factor
``≈ t_i / (n − 2t)`` instead of collapsing.  Afterwards every honest party
has the burner in its BAD set, so the slot is spent — unless the victim
protocol is *memoryless* (ablation A1), in which case ``reuse_burners=True``
lets the same parties equivocate forever.

Mechanics of one burn (for burner ``b`` with planted value ``v``):

* round *value*: ``b`` sends ``v`` to exactly ``n − 2t`` honest parties;
* round *echo*:  all corrupted parties echo ``b → v`` only to the target
  group ``A`` (``|A| ≤ t`` honest parties).  ``A`` thus sees
  ``(n − 2t) + t = n − t`` echoes and supports ``v``; everyone else sees
  only ``n − 2t < n − t`` and stays silent;
* round *support*: all corrupted parties support ``b → v`` only towards
  ``A``.  ``A`` sees ``|A| + t ≥ t + 1`` supports — confidence 1, value
  accepted (and ``b`` detected); the rest see ``|A| ≤ t`` supports —
  confidence 0, value rejected (and ``b`` detected).

All corrupted parties other than the active burners follow the protocol
faithfully (they must stay clean to burn later), driven as puppets.

**SplitBroadcastAdversary** targets the naive-distribution baseline
(ablation A2): with plain point-to-point sends there is no detection at
all, so the corrupted parties simply tell the upper half of the honest
parties the honest maximum and the lower half the honest minimum — every
iteration, forever, sustaining the outline's worst-case ``1/2`` factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..net.messages import Outbox, PartyId
from ..net.network import AdversaryView
from ..protocols.realaa import is_real
from .base import Adversary, PuppetDrivingAdversary

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.spec import BatchAdversarySpec


def even_burn_schedule(t: int, iterations: int) -> List[int]:
    """Split budget ``t`` over *iterations* as evenly as possible.

    This is the split that maximises ``∏ t_i`` (hence minimises convergence)
    when ``t ≥ iterations``; with ``t < iterations`` the first ``t`` entries
    get one burn each.
    """
    if t < 0 or iterations < 1:
        raise ValueError("need t >= 0 and iterations >= 1")
    base, extra = divmod(t, iterations)
    return [base + (1 if i < extra else 0) for i in range(iterations)]


@dataclass
class _BurnPlan:
    """The adversary's choices for one gradecast iteration."""

    tag: Any  # the iteration tag used in payloads this phase
    planted: Dict[PartyId, float]  # burner -> planted value
    group_a: FrozenSet[PartyId]  # honest parties meant to accept
    receivers: FrozenSet[PartyId]  # honest parties receiving the round-1 value


class BurnScheduleAdversary(PuppetDrivingAdversary):
    """Split the budget across iterations; one equivocation per burn slot.

    Parameters
    ----------
    schedule:
        ``schedule[i]`` = number of burns in the ``i``-th gradecast iteration
        *globally observed* (TreeAA's two RealAA phases share the counter).
        Iterations beyond the schedule see no burns.
    direction:
        ``"up"`` plants the honest maximum (pulling group A upwards),
        ``"down"`` the minimum, ``"alternate"`` flips per iteration.
    reuse_burners:
        Allow re-using burnt parties (pointless against RealAA, which
        blacklists them, but demonstrates sustained slowdown against the
        memoryless baseline — ablation A1).
    """

    def __init__(
        self,
        schedule: Sequence[int],
        corrupt: Optional[Sequence[PartyId]] = None,
        direction: str = "up",
        reuse_burners: bool = False,
    ) -> None:
        super().__init__(corrupt)
        if direction not in ("up", "down", "alternate"):
            raise ValueError(f"unknown direction {direction!r}")
        self.schedule = list(schedule)
        if any(s < 0 for s in self.schedule):
            raise ValueError("schedule entries must be non-negative")
        self.direction = direction
        self.reuse_burners = reuse_burners
        self.burned: Set[PartyId] = set()
        self._iteration = -1  # global gradecast-iteration counter
        self._plan: Optional[_BurnPlan] = None
        self._phase: Optional[int] = None
        #: (iteration, burners, |A|) tuples, for experiment diagnostics.
        self.burn_log: List[Tuple[int, Tuple[PartyId, ...], int]] = []

    # ------------------------------------------------------------------

    @staticmethod
    def _sniff(view: AdversaryView) -> Optional[Tuple[int, Any, Dict[PartyId, float]]]:
        """Identify the gradecast phase from the honest round traffic.

        Returns ``(phase, iteration_tag, honest_values)`` where
        ``honest_values`` is only populated in phase 0.
        """
        kinds = {"val": 0, "echo": 1, "sup": 2}
        phase: Optional[int] = None
        tag: Any = None
        values: Dict[PartyId, float] = {}
        for sender in sorted(view.honest_messages):
            outbox = view.honest_messages[sender]
            for payload in outbox.values():
                if (
                    isinstance(payload, tuple)
                    and len(payload) >= 3
                    and payload[0] in kinds
                ):
                    phase = kinds[payload[0]]
                    tag = payload[1]
                    if phase == 0 and is_real(payload[2]):
                        values[sender] = float(payload[2])
                break  # outboxes are broadcasts; one payload suffices
        if phase is None:
            return None
        return phase, tag, values

    def _pick_burners(self, view: AdversaryView, count: int) -> List[PartyId]:
        fresh = [p for p in sorted(view.corrupted) if p not in self.burned]
        picked = fresh[:count]
        if len(picked) < count and self.reuse_burners:
            recycled = [p for p in sorted(view.corrupted) if p in self.burned]
            picked.extend(recycled[: count - len(picked)])
        return picked

    def _make_plan(
        self, view: AdversaryView, tag: Any, honest_values: Dict[PartyId, float]
    ) -> Optional[_BurnPlan]:
        if self._iteration >= len(self.schedule):
            return None
        count = self.schedule[self._iteration]
        if count == 0 or not honest_values or view.t == 0:
            return None
        burners = self._pick_burners(view, count)
        if not burners:
            return None
        honest = sorted(honest_values)
        h = len(honest)
        up = self.direction == "up" or (
            self.direction == "alternate" and self._iteration % 2 == 0
        )
        planted_value = (
            max(honest_values.values()) if up else min(honest_values.values())
        )
        a = min(view.t, h - 1)
        if a < 1:
            return None
        by_value = sorted(honest, key=lambda p: (honest_values[p], p))
        group_a = frozenset(by_value[-a:] if up else by_value[:a])
        receivers = frozenset(honest[: max(0, view.n - 2 * view.t)])
        self.burned.update(burners)
        self.burn_log.append((self._iteration, tuple(burners), a))
        return _BurnPlan(
            tag=tag,
            planted={b: planted_value for b in burners},
            group_a=group_a,
            receivers=receivers,
        )

    # ------------------------------------------------------------------

    def batch_spec(self) -> "BatchAdversarySpec":
        """Replay parameters for the dense batch engine.

        The burn attack is deterministic but *stateful* (global iteration
        counter, burnt set), so — as with chaos — the spec carries the
        constructor arguments and the dense engine replays a fresh
        instance.  Subclasses may override the planning methods, so only
        the exact class is claimed.
        """
        if type(self) is not BurnScheduleAdversary:
            return super().batch_spec()
        from ..engine.spec import KIND_BURN, BatchAdversarySpec

        # The params pairs are constructor arguments, not wire payloads;
        # PL003's tag heuristic cannot tell the difference.
        return BatchAdversarySpec(
            kind=KIND_BURN,
            corrupted=self._requested_frozen(),
            params=(
                ("schedule", tuple(self.schedule)),  # protolint: disable=PL003
                ("direction", self.direction),  # protolint: disable=PL003
                ("reuse_burners", self.reuse_burners),  # protolint: disable=PL003
            ),
        )

    def byzantine_messages(self, view: AdversaryView) -> Dict[PartyId, Outbox]:
        sniffed = self._sniff(view)
        if sniffed is None:
            self._phase = None
            self._plan = None
            return super().byzantine_messages(view)
        phase, tag, honest_values = sniffed
        self._phase = phase
        if phase == 0:
            self._iteration += 1
            self._plan = self._make_plan(view, tag, honest_values)
        return super().byzantine_messages(view)

    def transform_outbox(
        self, pid: PartyId, view: AdversaryView, faithful: Outbox
    ) -> Outbox:
        plan, phase = self._plan, self._phase
        if plan is None or phase is None:
            return faithful
        if phase == 0:
            if pid in plan.planted:
                value_payload = ("val", plan.tag, plan.planted[pid])
                targets = set(plan.receivers) | set(view.corrupted)
                return {recipient: value_payload for recipient in targets}
            return faithful
        # Echo / support rounds: rewrite the burner entries per recipient.
        kind = "echo" if phase == 1 else "sup"
        rewritten: Outbox = {}
        for recipient in range(view.n):
            payload = faithful.get(recipient)
            vector: Dict[PartyId, Any] = {}
            if (
                isinstance(payload, tuple)
                and len(payload) == 3
                and payload[0] == kind
                and isinstance(payload[2], dict)
            ):
                vector = dict(payload[2])
            if recipient in plan.group_a or recipient in view.corrupted:
                vector.update(plan.planted)
            else:
                for burner in plan.planted:
                    vector.pop(burner, None)
            rewritten[recipient] = (kind, plan.tag, vector)
        return rewritten


class SplitBroadcastAdversary(PuppetDrivingAdversary):
    """Sustained equivocation against naive (undetectable) distribution.

    Every iteration, the corrupted parties report the honest maximum to the
    upper half of the honest parties and the honest minimum to the lower
    half (ranked by current value).  With no detection mechanism this can be
    repeated forever, pinning the naive baseline at its worst-case halving
    rate — the contrast gradecast's detection is designed to eliminate.
    """

    def byzantine_messages(self, view: AdversaryView) -> Dict[PartyId, Outbox]:
        # Parse the naive round: honest payloads are ("nval", it, value).
        honest_values: Dict[PartyId, float] = {}
        tag: Any = None
        for sender in sorted(view.honest_messages):
            for payload in view.honest_messages[sender].values():
                if (
                    isinstance(payload, tuple)
                    and len(payload) == 3
                    and payload[0] == "nval"
                    and is_real(payload[2])
                ):
                    tag = payload[1]
                    honest_values[sender] = float(payload[2])
                break
        if not honest_values:
            return super().byzantine_messages(view)
        lo, hi = min(honest_values.values()), max(honest_values.values())
        ranked = sorted(honest_values, key=lambda p: (honest_values[p], p))
        lower_half = set(ranked[: len(ranked) // 2])
        out: Dict[PartyId, Outbox] = {}
        for pid in sorted(view.corrupted):
            outbox: Outbox = {}
            for recipient in range(view.n):
                value = lo if recipient in lower_half else hi
                outbox[recipient] = ("nval", tag, value)
            out[pid] = outbox
        return out

    def batch_spec(self) -> "BatchAdversarySpec":
        """Passive against the gradecast protocols the batch engine runs.

        The split sniffer only matches the naive baseline's ``("nval", …)``
        payloads; RealAA/PathAA/TreeAA traffic never does, so against every
        batch-executable protocol this strategy degenerates to faithfully
        driven puppets — exactly the passive kind.
        """
        if type(self) is not SplitBroadcastAdversary:
            return super().batch_spec()
        from ..engine.spec import KIND_PASSIVE, BatchAdversarySpec

        return BatchAdversarySpec(
            kind=KIND_PASSIVE, corrupted=self._requested_frozen()
        )


class AsymmetricTrustAdversary(Adversary):
    # statics: batch-unsupported(grade-memory manipulation needs message-level control beyond the batch kinds)
    """The *asymmetric trust* attack on gradecast-with-memory protocols.

    Iteration 0 plays two tricks at once:

    * one corrupted party performs a regular **burn** (graded 1 by a target
      group, 0 by the rest) so the honest range stays positive;
    * every other corrupted party arranges to be graded **2** by a chosen
      honest group ``A`` and **1** by the rest: its round-1 value reaches
      exactly ``n − 2t`` honest parties, corrupted echoes make exactly
      ``n − 2t`` honest parties support (so every honest grade is ≥ 1 and
      the value is accepted by *everyone* — no divergence, no suspicion in
      ``A``), while corrupted supports reach ``A`` only, leaving the rest
      at grade 1 — they blacklist, ``A`` does not.

    From iteration 1 on, the asymmetrically-trusted parties behave
    perfectly consistently (grade 2 everywhere), planting the current
    honest extremum: ``A`` keeps accepting, the rest keep excluding — a
    sustained multiset divergence at **zero** further detection cost.

    Against a victim without quorum accusations this breaks the
    once-per-party accounting behind RealAA's round budget (the range keeps
    a constant factor per iteration forever).  With accusations enabled
    (the default), the blacklisting group — necessarily ≥ t + 1 honest
    parties for the attack to bite — reaches the quorum in iteration 1 and
    the trusted parties are globalised into every BAD set before any
    divergence materialises.  Ablation A3 tabulates both outcomes.
    """

    def __init__(
        self,
        corrupt: Optional[Sequence[PartyId]] = None,
        direction: str = "up",
        accuse_honest: bool = False,
    ) -> None:
        super().__init__(corrupt)
        if direction not in ("up", "down"):
            raise ValueError(f"unknown direction {direction!r}")
        self.direction = direction
        #: Additionally spam accusations against honest parties (harmless:
        #: t accusers never reach the t + 1 quorum); used by tests.
        self.accuse_honest = accuse_honest
        self._iteration = -1
        self._phase: Optional[int] = None
        self._tag: Any = None
        self._value: float = 0.0
        self._burner: Optional[PartyId] = None
        self._asym: Tuple[PartyId, ...] = ()
        self._group_a: FrozenSet[PartyId] = frozenset()
        self._burn_group: FrozenSet[PartyId] = frozenset()
        self._receivers: FrozenSet[PartyId] = frozenset()
        self._asym_supporters: FrozenSet[PartyId] = frozenset()
        self._burn_supporters: FrozenSet[PartyId] = frozenset()

    # ------------------------------------------------------------------

    def byzantine_messages(self, view: AdversaryView) -> Dict[PartyId, Outbox]:
        sniffed = BurnScheduleAdversary._sniff(view)
        if sniffed is None:
            self._phase = None
            return {pid: {} for pid in view.corrupted}
        phase, tag, honest_values = sniffed
        self._phase, self._tag = phase, tag
        if phase == 0:
            self._iteration += 1
            self._plan(view, honest_values)
        return {
            pid: self._craft(pid, view) for pid in sorted(view.corrupted)
        }

    def _plan(self, view: AdversaryView, honest_values: Dict[PartyId, float]) -> None:
        honest = sorted(honest_values)
        if not honest or view.t == 0:
            return
        up = self.direction == "up"
        self._value = (
            max(honest_values.values()) if up else min(honest_values.values())
        )
        if self._iteration > 0:
            return
        corrupted = sorted(view.corrupted)
        self._burner = corrupted[0]
        self._asym = tuple(corrupted[1:])
        by_value = sorted(honest, key=lambda p: (honest_values[p], p))
        a = min(view.t, len(honest) - 1)
        self._group_a = frozenset(by_value[-a:] if up else by_value[:a])
        self._burn_group = self._group_a
        j = max(0, view.n - 2 * view.t)
        self._receivers = frozenset(honest[:j])
        # asym senders need n − 2t honest supporters (everyone grades >= 1);
        # the burner needs at most t supporters (the rest grade 0).
        self._asym_supporters = frozenset(honest[:j])
        self._burn_supporters = frozenset(honest[: min(view.t, len(honest))])

    def _targets_for_origin(self, origin: PartyId, view: AdversaryView, phase: int):
        """Which recipients should see corrupted echo/support entries for
        *origin* (None = everyone)."""
        if self._iteration > 0:
            return None
        if origin == self._burner:
            if phase == 1:
                return self._burn_supporters | set(view.corrupted)
            return self._burn_group | set(view.corrupted)
        if phase == 1:
            return self._asym_supporters | set(view.corrupted)
        return self._group_a | set(view.corrupted)

    def _craft(self, pid: PartyId, view: AdversaryView) -> Outbox:
        tag = self._tag
        everyone = range(view.n)
        if self._phase == 0:
            accusations: Tuple[PartyId, ...] = ()
            if self.accuse_honest:
                accusations = tuple(sorted(view.honest))
            payload = ("val", tag, self._value, accusations)
            if self._iteration == 0:
                targets = set(self._receivers) | set(view.corrupted)
                return {recipient: payload for recipient in targets}
            if pid == self._burner:
                return {}  # burned in iteration 0: stay silent
            return {recipient: payload for recipient in everyone}
        kind = "echo" if self._phase == 1 else "sup"
        corrupted_origins = sorted(view.corrupted)
        out: Outbox = {}
        for recipient in everyone:
            vector: Dict[PartyId, float] = {}
            for origin in corrupted_origins:
                if self._iteration > 0 and origin == self._burner:
                    continue  # globally blacklisted; nothing to gain
                targets = self._targets_for_origin(origin, view, self._phase)
                if targets is None or recipient in targets:
                    vector[origin] = self._value
            out[recipient] = (kind, tag, vector)
        return out
