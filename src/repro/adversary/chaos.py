"""The chaos adversary: randomized per-round strategy mixing.

Fixed-strategy adversaries probe specific failure modes; the chaos
adversary probes *interactions* between them.  Each corrupted party, each
round, independently does one of: behave faithfully, stay silent, replay
a stale message, send junk, or copy an honest party's current message to
everyone.  Seeded, so failures found by randomized tests reproduce.

This is a fuzzer, not a worst case: its value is coverage of the
protocols' parsing and bookkeeping under erratic-but-legal behaviour, and
it complements the targeted attacks in
:mod:`repro.adversary.realaa_attacks`.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..net.messages import Outbox, PartyId
from ..net.network import AdversaryView
from .base import PuppetDrivingAdversary

#: One chaos decision: (round, corrupted pid, behaviour name).
ChaosLogEntry = Tuple[int, PartyId, str]


class ChaosAdversary(PuppetDrivingAdversary):
    """Per-party, per-round random choice among benign-to-nasty behaviours.

    Parameters
    ----------
    seed:
        Seeds the behaviour stream (reproducible runs).
    weights:
        Optional mapping from behaviour name (``faithful``, ``silent``,
        ``stale``, ``junk``, ``mirror``) to relative weight.
    script:
        Optional replay script: ``(round, pid, behaviour)`` triples, the
        exact format of :attr:`log`.  When given, behaviour choices come
        from the script instead of the weighted draw — any ``(round,
        pid)`` pair absent from the script behaves faithfully — which is
        what lets the shrinker truncate a recorded chaos log and check
        whether a shorter script still reproduces a violation.  Payload-
        level draws (junk selection, mirror sampling) still come from the
        seeded generator, so a scripted adversary is as deterministic as
        a free-running one.
    """

    BEHAVIOURS = ("faithful", "silent", "stale", "junk", "mirror")

    _JUNK: Sequence[Any] = (
        None,
        -1,
        2.5,
        float("nan"),
        "chaos",
        ("val",),
        ("val", 0, None),
        ("echo", 1, {"oops": 3}),
        ("sup", 2, {0: object}),
        ("report", 0, 0),
        ("init", ("val", 0)),
        [1, [2, [3]]],
    )

    def __init__(
        self,
        seed: int = 0,
        weights: Optional[Dict[str, float]] = None,
        corrupt: Optional[Sequence[PartyId]] = None,
        script: Optional[Iterable[ChaosLogEntry]] = None,
    ) -> None:
        super().__init__(corrupt)
        self._seed = seed
        self._rng = random.Random(seed)
        weights = weights or {}
        self._names = list(self.BEHAVIOURS)
        self._weights = [max(0.0, weights.get(name, 1.0)) for name in self._names]
        if not any(self._weights):
            raise ValueError("at least one behaviour needs positive weight")
        self._script: Optional[Dict[Tuple[int, PartyId], str]] = None
        if script is not None:
            self._script = {}
            for round_index, party, behaviour in script:
                if behaviour not in self.BEHAVIOURS:
                    raise ValueError(f"unknown scripted behaviour {behaviour!r}")
                self._script[(round_index, party)] = behaviour
        self._stale: Dict[PartyId, Outbox] = {}
        #: (round, pid, behaviour) log, for debugging reproductions.
        self.log: List[ChaosLogEntry] = []

    def batch_spec(self):
        """Replay parameters for the dense batch engine.

        The spec carries the constructor arguments, not the live state:
        the dense engine rebuilds a fresh :class:`ChaosAdversary` from
        them and replays the behaviour stream from the seed, exactly as a
        fresh reference run would.  Subclasses may override behaviour
        methods, so only the exact class is claimed.
        """
        if type(self) is not ChaosAdversary:
            return super().batch_spec()
        from ..engine.spec import KIND_CHAOS, BatchAdversarySpec

        weights = tuple(zip(self._names, self._weights))
        script = (
            None
            if self._script is None
            else tuple(
                (round_index, pid, behaviour)
                for (round_index, pid), behaviour in sorted(
                    self._script.items()
                )
            )
        )
        # The params pairs are constructor arguments, not wire payloads;
        # PL003's tag heuristic cannot tell the difference.
        return BatchAdversarySpec(
            kind=KIND_CHAOS,
            corrupted=self._requested_frozen(),
            params=(
                ("seed", self._seed),  # protolint: disable=PL003
                ("weights", weights),  # protolint: disable=PL003
                ("script", script),  # protolint: disable=PL003
            ),
        )

    def transform_outbox(
        self, pid: PartyId, view: AdversaryView, faithful: Outbox
    ) -> Outbox:
        if self._script is not None:
            behaviour = self._script.get((view.round_index, pid), "faithful")
        else:
            behaviour = self._rng.choices(self._names, weights=self._weights)[0]
        self.log.append((view.round_index, pid, behaviour))
        # Snapshot what the party *would* have sent every round, whatever
        # behaviour was drawn: "stale" then always replays the previous
        # round's faithful outbox rather than degenerating into "silent"
        # whenever no faithful round happened to precede it.
        previous = self._stale.get(pid)
        self._stale[pid] = dict(faithful)
        if behaviour == "faithful":
            return faithful
        if behaviour == "silent":
            return {}
        if behaviour == "stale":
            return dict(previous) if previous is not None else dict(faithful)
        if behaviour == "junk":
            return {
                recipient: self._rng.choice(self._JUNK)
                for recipient in range(view.n)
                if self._rng.random() < 0.7
            }
        # mirror: replay a seeded-random honest party's payload to everyone
        candidates = [
            sender
            for sender in sorted(view.honest_messages)
            if view.honest_messages[sender]
        ]
        if not candidates:
            return {}
        sender = self._rng.choice(candidates)
        outbox = view.honest_messages[sender]
        recipient_key = self._rng.choice(sorted(outbox, key=repr))
        payload = outbox[recipient_key]
        return {recipient: payload for recipient in range(view.n)}
