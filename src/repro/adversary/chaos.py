"""The chaos adversary: randomized per-round strategy mixing.

Fixed-strategy adversaries probe specific failure modes; the chaos
adversary probes *interactions* between them.  Each corrupted party, each
round, independently does one of: behave faithfully, stay silent, replay
a stale message, send junk, or copy an honest party's current message to
everyone.  Seeded, so failures found by randomized tests reproduce.

This is a fuzzer, not a worst case: its value is coverage of the
protocols' parsing and bookkeeping under erratic-but-legal behaviour, and
it complements the targeted attacks in
:mod:`repro.adversary.realaa_attacks`.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Sequence

from ..net.messages import Outbox, PartyId
from ..net.network import AdversaryView
from .base import PuppetDrivingAdversary


class ChaosAdversary(PuppetDrivingAdversary):
    """Per-party, per-round random choice among benign-to-nasty behaviours.

    Parameters
    ----------
    seed:
        Seeds the behaviour stream (reproducible runs).
    weights:
        Optional mapping from behaviour name (``faithful``, ``silent``,
        ``stale``, ``junk``, ``mirror``) to relative weight.
    """

    BEHAVIOURS = ("faithful", "silent", "stale", "junk", "mirror")

    _JUNK: Sequence[Any] = (
        None,
        -1,
        2.5,
        float("nan"),
        "chaos",
        ("val",),
        ("val", 0, None),
        ("echo", 1, {"oops": 3}),
        ("sup", 2, {0: object}),
        ("report", 0, 0),
        ("init", ("val", 0)),
        [1, [2, [3]]],
    )

    def __init__(
        self,
        seed: int = 0,
        weights: Optional[Dict[str, float]] = None,
        corrupt: Optional[Sequence[PartyId]] = None,
    ) -> None:
        super().__init__(corrupt)
        self._rng = random.Random(seed)
        weights = weights or {}
        self._names = list(self.BEHAVIOURS)
        self._weights = [max(0.0, weights.get(name, 1.0)) for name in self._names]
        if not any(self._weights):
            raise ValueError("at least one behaviour needs positive weight")
        self._stale: Dict[PartyId, Outbox] = {}
        #: (round, pid, behaviour) log, for debugging reproductions.
        self.log: List = []

    def transform_outbox(
        self, pid: PartyId, view: AdversaryView, faithful: Outbox
    ) -> Outbox:
        behaviour = self._rng.choices(self._names, weights=self._weights)[0]
        self.log.append((view.round_index, pid, behaviour))
        if behaviour == "faithful":
            self._stale[pid] = dict(faithful)
            return faithful
        if behaviour == "silent":
            return {}
        if behaviour == "stale":
            return dict(self._stale.get(pid, {}))
        if behaviour == "junk":
            return {
                recipient: self._rng.choice(self._JUNK)
                for recipient in range(view.n)
                if self._rng.random() < 0.7
            }
        # mirror: replay some honest party's current payload to everyone
        for sender in sorted(view.honest_messages):
            for payload in view.honest_messages[sender].values():
                return {recipient: payload for recipient in range(view.n)}
        return {}
