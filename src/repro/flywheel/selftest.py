"""Oracle self-test: prove the flywheel can actually catch a divergence.

A differential campaign that never fires is indistinguishable from one
that cannot fire.  This module provides deliberate batch-row
perturbations (used via the ``perturb="module:function"`` seam of
:func:`~repro.flywheel.oracles.evaluate_point`) and a one-call self-test
that runs a small campaign with a perturbation injected, asserting the
full detect → shrink → file pipeline end to end.  The CI smoke job runs
it on every push; ``repro flywheel selftest`` runs it locally.
"""

from __future__ import annotations

from typing import Any, Dict

from .engine import FlywheelConfig, FlywheelReport, run_flywheel

#: The perturbation seams this module ships, by CLI-friendly name.
PERTURBATIONS = {
    "rounds": "repro.flywheel.selftest:perturb_batch_rounds",
    "verdicts": "repro.flywheel.selftest:perturb_batch_verdicts",
}


def perturb_batch_rounds(row: Dict[str, Any]) -> Dict[str, Any]:
    """Pretend the batch engine ran one extra round (a parity bug)."""
    row = dict(row)
    row["rounds"] = int(row.get("rounds", 0)) + 1
    return row


def perturb_batch_verdicts(row: Dict[str, Any]) -> Dict[str, Any]:
    """Pretend the batch engine lost agreement (a verdict bug)."""
    row = dict(row)
    verdicts = dict(row.get("verdicts", {}))
    verdicts["agreement"] = False
    row["verdicts"] = verdicts
    return row


class SelfTestError(AssertionError):
    """The injected divergence did not surface the way it must."""


def run_selftest(
    ledger_path: str,
    corpus_dir: str,
    *,
    seed: int = 2025,
    count: int = 24,
    jobs: int = 1,
    perturbation: str = "rounds",
) -> FlywheelReport:
    """Run a small campaign with an injected batch bug; assert it is caught.

    The campaign must (a) flag at least one backend-parity divergence,
    and (b) file at least one shrunk-or-filed corpus case for it.  Use a
    throwaway ``corpus_dir`` — the filed cases describe an *injected*
    bug, not a real one, and must never land in ``tests/corpus/``.
    """
    perturb = PERTURBATIONS.get(perturbation, perturbation)
    report = run_flywheel(
        FlywheelConfig(
            seed=seed,
            count=count,
            ledger_path=ledger_path,
            jobs=jobs,
            no_cache=True,  # perturbed rows must never enter the shared cache
            corpus_dir=corpus_dir,
            perturb=perturb,
        )
    )
    parity = [
        d for d in report.divergences if "backend-parity" in d.get("oracles", ())
    ]
    if not parity:
        raise SelfTestError(
            f"injected perturbation {perturbation!r} produced no "
            f"backend-parity divergence in {count} points — the "
            "differential oracles are not looking at the batch rows"
        )
    if not any(d.get("filed") for d in parity):
        raise SelfTestError(
            "divergences were detected but none was filed as a corpus "
            "case — the shrink-and-file pipeline is broken"
        )
    return report
