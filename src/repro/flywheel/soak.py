"""Soak mode: drive the flywheel's differential load through the service.

Where :func:`~repro.flywheel.engine.run_flywheel` executes points
in-process, :func:`run_soak` feeds the same seeded stream to a running
scenario service (:mod:`repro.service`) as batches of paired jobs — each
batch-replayable point submitted once per backend — and applies the
backend-parity comparison to the rows the service returns.  That makes
one campaign serve two purposes: a differential sweep *and* a sustained
load/recovery test of the service itself (combine with the chaos
harness's fault injection to soak a service that is being killed and
restarted underneath the campaign).

Reference-only points (``noise``/``asym`` adversaries) are submitted on
the reference backend alone: they exercise the service's execution path
but have no batch twin to compare against.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List

from ..analysis.spec import ScenarioSpec
from ..analysis.strategies import spec_stream
from .oracles import _comparable, _diff_description, batch_replayable

#: Points per submitted job; small enough that service restarts mid-soak
#: re-run little, large enough to amortise HTTP round trips.
DEFAULT_BATCH = 50


@dataclass
class SoakReport:
    """What one soak pass observed."""

    executed: int = 0
    compared: int = 0
    reference_only: int = 0
    jobs: List[str] = field(default_factory=list)
    divergences: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        return (
            f"soak: {self.executed} points over {len(self.jobs)} jobs, "
            f"{self.compared} backend pairs compared, "
            f"{self.reference_only} reference-only, "
            f"{len(self.divergences)} divergences"
        )


def _service_row(record: Dict[str, Any]) -> Dict[str, Any]:
    """A service point record reduced to its backend-comparable fields."""
    row = {
        k: v for k, v in record.items() if k not in ("type", "index")
    }
    return _comparable(row)


def run_soak(
    client: Any,
    *,
    seed: int,
    count: int,
    batch: int = DEFAULT_BATCH,
    timeout: float = 300.0,
) -> SoakReport:
    """Stream ``count`` seeded points through the service, comparing engines.

    ``client`` is a :class:`~repro.service.client.ServiceClient` (any
    object with ``submit``/``wait``/``results`` will do).  Each batch
    becomes two jobs — the reference points and their batch twins — so
    the comparison is between rows computed by *separate* service jobs,
    which is exactly the replayability claim the service makes.
    """
    report = SoakReport()
    specs = list(spec_stream(seed, count))
    for start in range(0, len(specs), batch):
        chunk = specs[start : start + batch]
        paired_at = [
            (start + i, s) for i, s in enumerate(chunk) if batch_replayable(s)
        ]
        paired = [s for _, s in paired_at]
        solo = [s for s in chunk if not batch_replayable(s)]
        jobs: List[tuple] = []
        if paired:
            for backend in ("reference", "batch"):
                payload = {
                    "points": [
                        _with_backend(s, backend).to_dict() for s in paired
                    ]
                }
                jobs.append((backend, client.submit(payload)["id"]))
        if solo:
            payload = {"points": [s.to_dict() for s in solo]}
            jobs.append(("reference-only", client.submit(payload)["id"]))
        rows: Dict[str, List[Dict[str, Any]]] = {}
        for backend, job_id in jobs:
            client.wait(job_id, timeout=timeout)
            rows[backend] = [
                r
                for r in client.results(job_id)
                if r.get("type") == "point"
            ]
            report.jobs.append(job_id)
        report.executed += len(chunk)
        report.reference_only += len(solo)
        for offset, (index, spec) in enumerate(paired_at):
            left = _service_row(rows["reference"][offset])
            right = _service_row(rows["batch"][offset])
            report.compared += 1
            if left != right:
                report.divergences.append(
                    {
                        "index": index,
                        "spec": spec.to_dict(),
                        "oracles": ["backend-parity"],
                        "detail": _diff_description(left, right),
                    }
                )
    return report


def _with_backend(spec: ScenarioSpec, backend: str) -> ScenarioSpec:
    return replace(spec, backend=backend)
