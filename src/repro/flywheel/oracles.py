"""Differential oracles: judge one flywheel point from every angle we have.

A flywheel point is one :class:`~repro.analysis.spec.ScenarioSpec`
instance; :func:`evaluate_point` executes it and applies the full oracle
matrix (see docs/FLYWHEEL.md):

``execution``
    The reference execution must not crash.  (When it *does* raise, the
    batch engine must raise the identical error — that refusal parity is
    folded into ``backend-parity``.)
``backend-parity``
    The batch engine must reproduce the reference row *exactly* — same
    outputs, rounds, verdicts — for every spec whose adversary the batch
    engine supports.  This is the Nowak–Rybicki-style differential check
    (arXiv 1908.02743 is the cross-protocol comparator; the two engines
    are the cross-*implementation* pair).
``metrics-parity``
    For recorded points (``record=True``) the embedded JSONL traces must
    agree round-for-round, excluding only the wall clock.
``cross-protocol``
    Tree points are re-run through the Nowak–Rybicki baseline
    (:class:`~repro.baselines.IterativeTreeAAParty`) on the same
    instance; both protocols must deliver validity and agreement.  A
    TreeAA failure the baseline survives (or vice versa) is a protocol
    bug, not a model artefact.
``round-bound``
    The round count must respect the theory: at most the empirical
    ``O(log |V| / log log |V|)`` budget (trees) or the RealAA duration
    formula (ℝ), and at least the :mod:`repro.lowerbound` bound, which
    the journal version (arXiv 2502.05591) proves tight.

Each oracle returns ``ok`` / ``divergence`` / ``skipped`` — *skipped*
states are first-class data (the oracle matrix in the ledger shows
exactly what was and wasn't checked), never silently green.

``perturb`` is the self-test seam: a ``module:function`` path applied to
the batch row before comparison, so the oracle self-test (and the CI
smoke) can prove that an engine divergence actually turns red.
"""

from __future__ import annotations

import importlib
import json
from dataclasses import replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..analysis.spec import ScenarioSpec, execute_spec_point

#: Oracle names, in evaluation order.
FLYWHEEL_ORACLES = (
    "execution",
    "backend-parity",
    "metrics-parity",
    "cross-protocol",
    "round-bound",
)

#: Adversary kinds only the reference engine accepts — their points skip
#: the differential oracles (and say so in the row).
REFERENCE_ONLY_ADVERSARIES = frozenset({"noise", "asym"})

#: Row keys excluded from the backend comparison: ``spec``/``backend``
#: name the engine (they differ by construction) and ``trace_jsonl`` is
#: judged separately by the metrics-parity oracle (its rows embed wall
#: clocks).
_INCOMPARABLE_KEYS = frozenset({"spec", "backend", "trace_jsonl"})


def resolve_perturb(path: Optional[str]) -> Optional[Callable[[Dict[str, Any]], Dict[str, Any]]]:
    """Resolve a ``module:function`` perturbation seam (``None`` = none)."""
    if not path:
        return None
    module_name, _, func_name = path.partition(":")
    module = importlib.import_module(module_name)
    func = getattr(module, func_name, None)
    if not callable(func):
        raise ValueError(f"perturb seam {path!r} is not callable")
    return func


def batch_replayable(spec: ScenarioSpec) -> bool:
    """Whether the batch engine supports this spec's adversary."""
    return spec.adversary.split(":")[0] not in REFERENCE_ONLY_ADVERSARIES


def _run_side(spec: ScenarioSpec, backend: str) -> Tuple[str, Any]:
    """``("ok", row)`` or ``("error", type name, message)`` for one engine."""
    try:
        return ("ok", execute_spec_point(replace(spec, backend=backend)))
    except Exception as exc:  # noqa: BLE001 - the type is the verdict
        return ("error", type(exc).__name__, str(exc))


def _comparable(row: Dict[str, Any]) -> Dict[str, Any]:
    """The backend-independent projection of a result row."""
    return {k: v for k, v in row.items() if k not in _INCOMPARABLE_KEYS}


def _diff_description(left: Dict[str, Any], right: Dict[str, Any]) -> str:
    """A one-line digest of which row fields disagree."""
    fields = []
    for key in sorted(set(left) | set(right)):
        if left.get(key) != right.get(key):
            fields.append(f"{key}: {left.get(key)!r} != {right.get(key)!r}")
    return "; ".join(fields) or "rows differ"


def _strip_wall(record: Dict[str, Any]) -> Dict[str, Any]:
    """A trace record minus the fields that name (rather than measure) a run.

    ``wall_seconds`` is the one nondeterministic metric; an embedded
    ``params.spec.backend`` names the engine that wrote the trace, which
    differs between the two sides by construction.
    """
    record = {k: v for k, v in record.items() if k != "wall_seconds"}
    params = record.get("params")
    if isinstance(params, dict) and isinstance(params.get("spec"), dict):
        spec = dict(params["spec"])
        spec["backend"] = "*"
        record["params"] = {**params, "spec": spec}
    return record


def _trace_records(trace_jsonl: str) -> List[Dict[str, Any]]:
    """Parsed trace records, wall clocks stripped (bad lines kept as text)."""
    records: List[Dict[str, Any]] = []
    for line in trace_jsonl.splitlines():
        if not line.strip():
            continue
        try:
            parsed = json.loads(line)
        except ValueError:
            records.append({"unparsable": line})
            continue
        records.append(_strip_wall(parsed) if isinstance(parsed, dict) else {"raw": parsed})
    return records


def _oracle(status: str, detail: Optional[str] = None) -> Dict[str, Any]:
    """One oracle verdict cell (``detail`` only carried when present)."""
    cell: Dict[str, Any] = {"status": status}
    if detail:
        cell["detail"] = detail
    return cell


def _check_cross_protocol(spec: ScenarioSpec) -> Dict[str, Any]:
    """Run the Nowak–Rybicki baseline on the same instance; both must agree.

    The comparison is on the AA *contract*, not on outputs: the two
    protocols legitimately pick different vertices, but each must deliver
    termination, hull validity, and 1-agreement on the identical
    (tree, inputs, t, adversary) instance.
    """
    from ..analysis.metrics import tree_agreement, tree_validity
    from ..baselines import IterativeTreeAAParty
    from ..net.runner import run_protocol

    tree = spec.build_tree()
    inputs = spec.make_inputs(tree)
    try:
        result = run_protocol(
            spec.n,
            spec.t,
            lambda pid: IterativeTreeAAParty(
                pid, spec.n, spec.t, tree, inputs[pid]
            ),
            adversary=spec.make_adversary(),
        )
    except Exception as exc:  # noqa: BLE001 - a crashing baseline is the finding
        return _oracle(
            "divergence", f"baseline crashed: {type(exc).__name__}: {exc}"
        )
    honest_inputs = [inputs[pid] for pid in sorted(result.honest)]
    honest_outputs = list(result.honest_outputs.values())
    problems = []
    if any(v is None for v in honest_outputs) or not honest_outputs:
        problems.append("baseline failed termination")
    else:
        if not tree_validity(tree, honest_inputs, honest_outputs):
            problems.append("baseline violated hull validity")
        if not tree_agreement(tree, honest_outputs):
            problems.append("baseline violated 1-agreement")
    if problems:
        return _oracle("divergence", "; ".join(problems))
    return _oracle("ok")


def _check_round_bound(spec: ScenarioSpec, row: Dict[str, Any]) -> Dict[str, Any]:
    """Rounds within the theory: lower bound ≤ rounds ≤ upper budget."""
    from ..lowerbound import empirical_tree_round_bound, theorem2_lower_bound
    from ..protocols.rounds import realaa_duration
    from ..trees.paths import diameter

    rounds = int(row["rounds"])
    t_assumed = spec.t if spec.t_assumed is None else spec.t_assumed
    if spec.protocol == "real-aa":
        spread = spec.known_range if spec.known_range is not None else 8.0
        upper = realaa_duration(
            max(float(spread), spec.epsilon), spec.epsilon, spec.n, t_assumed
        )
        lower = 1 if t_assumed else 0
    else:
        tree = spec.build_tree()
        upper = empirical_tree_round_bound(tree.n_vertices)
        bound = theorem2_lower_bound(float(diameter(tree)), spec.n, t_assumed)
        # Theorem 2 binds worst-case executions of *any* protocol; TreeAA
        # runs a fixed schedule, so a completed run beating the bound
        # would mean the reproduction contradicts the paper's Ω(·).
        lower = int(bound) if t_assumed else 0
    if rounds > upper:
        return _oracle(
            "divergence", f"ran {rounds} rounds, upper budget {upper}"
        )
    if rounds < lower:
        return _oracle(
            "divergence",
            f"ran {rounds} rounds, below the Theorem-2 lower bound {lower}",
        )
    return _oracle("ok")


def evaluate_point(
    spec: ScenarioSpec, perturb: Optional[str] = None
) -> Dict[str, Any]:
    """Execute one flywheel point and judge it with every applicable oracle.

    Returns a JSON row: the spec, the reference outcome digest, one
    verdict cell per oracle, and ``ok`` (no oracle diverged).  The row is
    what the ``flywheel-point`` grid runner returns, so it must be (and
    is) a pure function of ``(spec, perturb)`` — cache-safe, replayable.
    """
    perturb_fn = resolve_perturb(perturb)
    oracles: Dict[str, Dict[str, Any]] = {}
    row: Dict[str, Any] = {"spec": spec.to_dict(), "oracles": oracles}
    if perturb is not None:
        row["perturb"] = perturb

    reference = _run_side(spec, "reference")
    if reference[0] == "error":
        oracles["execution"] = _oracle(
            "divergence", f"{reference[1]}: {reference[2]}"
        )
    else:
        oracles["execution"] = _oracle("ok")
        row["rounds"] = reference[1]["rounds"]
        row["verdicts"] = reference[1]["verdicts"]

    if not batch_replayable(spec):
        oracles["backend-parity"] = _oracle("skipped")
        oracles["metrics-parity"] = _oracle("skipped")
    else:
        batch = _run_side(spec, "batch")
        if batch[0] == "ok" and perturb_fn is not None:
            batch = ("ok", perturb_fn(dict(batch[1])))
        if reference[0] == "error" or batch[0] == "error":
            if reference == batch:
                oracles["backend-parity"] = _oracle("ok")
            else:
                oracles["backend-parity"] = _oracle(
                    "divergence",
                    f"reference={reference!r} batch={batch!r}",
                )
            oracles["metrics-parity"] = _oracle("skipped")
        else:
            left, right = _comparable(reference[1]), _comparable(batch[1])
            if left == right:
                oracles["backend-parity"] = _oracle("ok")
            else:
                oracles["backend-parity"] = _oracle(
                    "divergence", _diff_description(left, right)
                )
            if not spec.record:
                oracles["metrics-parity"] = _oracle("skipped")
            else:
                ref_trace = _trace_records(reference[1].get("trace_jsonl", ""))
                bat_trace = _trace_records(batch[1].get("trace_jsonl", ""))
                if ref_trace == bat_trace:
                    oracles["metrics-parity"] = _oracle("ok")
                else:
                    oracles["metrics-parity"] = _oracle(
                        "divergence",
                        f"{len(ref_trace)} reference vs {len(bat_trace)} "
                        "batch trace records (or contents differ)",
                    )

    if spec.protocol != "tree-aa" or reference[0] == "error":
        oracles["cross-protocol"] = _oracle("skipped")
    elif spec.fault_plan is not None:
        oracles["cross-protocol"] = _oracle("skipped")
    else:
        oracles["cross-protocol"] = _check_cross_protocol(spec)

    if reference[0] == "error":
        oracles["round-bound"] = _oracle("skipped")
    else:
        oracles["round-bound"] = _check_round_bound(spec, reference[1])

    row["ok"] = all(cell["status"] != "divergence" for cell in oracles.values())
    return row


def diverging_oracles(row: Dict[str, Any]) -> Tuple[str, ...]:
    """The sorted oracle names a flywheel row diverged on (empty = green)."""
    return tuple(
        sorted(
            name
            for name, cell in row.get("oracles", {}).items()
            if cell.get("status") == "divergence"
        )
    )
