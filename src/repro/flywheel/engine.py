"""The flywheel engine: sharded, resumable, differential mega-campaigns.

:func:`run_flywheel` turns a ``(seed, count)`` pair into a campaign:

1. **Generate** — the seeded point stream
   (:func:`~repro.analysis.strategies.spec_stream`) is materialised once;
   point ``i`` is the same :class:`~repro.analysis.spec.ScenarioSpec` in
   every process, which is what makes the whole design resumable.
2. **Execute** — points run in shards through the parallel sweep engine
   (:func:`~repro.analysis.parallel.run_grid`) under the registered
   ``flywheel-point`` runner, which applies the full differential oracle
   matrix (:mod:`repro.flywheel.oracles`) to each point.  The sweep
   cache memoises rows, so re-running a killed shard is nearly free.
3. **Checkpoint** — after each shard the ledger
   (:mod:`repro.flywheel.ledger`) gains one ``point`` record per index.
   A killed campaign resumes from the parsed ledger and executes every
   remaining point exactly once.
4. **Shrink and file** — each diverging point is minimised with the
   resilience lab's delta-debugging shrinker (driven by the
   *differential* oracles via :func:`shrink`'s pluggable check) and
   filed under ``tests/corpus/`` as a replayable
   :class:`~repro.resilience.corpus.ReproCase` whose ``flywheel`` extra
   records the stream position, the minimal spec, and the oracle
   verdict.  Protocols outside the Scenario bridge (``path-aa``) are
   filed unshrunk, ledger-only.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

import repro

from ..analysis.parallel import register_runner, run_grid
from ..analysis.spec import ScenarioSpec
from ..analysis.strategies import spec_stream, stream_digest
from ..resilience.corpus import ReproCase, save_case
from ..resilience.scenario import Scenario
from ..resilience.shrink import shrink, shrink_report
from .ledger import LedgerWriter, check_compatible, load_state
from .oracles import batch_replayable, diverging_oracles, evaluate_point

#: Default shard size: large enough to amortise pool start-up, small
#: enough that a kill loses at most a few seconds of work.
DEFAULT_SHARD_SIZE = 250


@register_runner("flywheel-point")
def flywheel_point_runner(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Grid adapter: one flywheel point, judged by every oracle.

    The grid seed is ignored — a flywheel point's randomness lives
    inside its spec (``spec["seed"]``), so the row is a pure function of
    the params and the sweep cache can serve it to any campaign that
    generates the same spec.
    """
    spec = ScenarioSpec.from_dict(params["spec"])
    return evaluate_point(spec, params.get("perturb"))


@dataclass(frozen=True)
class FlywheelConfig:
    """Everything one campaign needs (CLI flags map 1:1 onto fields)."""

    seed: int
    count: int
    ledger_path: str
    shard_size: int = DEFAULT_SHARD_SIZE
    jobs: int = 1
    cache_dir: Optional[str] = None
    no_cache: bool = False
    #: Where diverging cases are filed (``None`` disables filing).
    corpus_dir: Optional[str] = None
    max_shrink_checks: int = 200
    #: ``module:function`` batch-row perturbation (the self-test seam).
    perturb: Optional[str] = None


@dataclass
class FlywheelReport:
    """The outcome of one ``run``/``resume`` invocation."""

    config: FlywheelConfig
    executed: int
    skipped: int
    divergences: List[Dict[str, Any]]
    filed_cases: List[str]

    @property
    def ok(self) -> bool:
        """Whether the campaign finished with zero divergences on file."""
        return not self.divergences

    def summary(self) -> str:
        parts = [
            f"flywheel seed={self.config.seed}",
            f"{self.executed} executed",
            f"{self.skipped} resumed from ledger",
            f"{len(self.divergences)} divergences",
        ]
        if self.filed_cases:
            parts.append(f"filed: {', '.join(self.filed_cases)}")
        return ", ".join(parts)


def _shards(indices: List[int], size: int) -> List[List[int]]:
    """Contiguous chunks of the remaining indices, in stream order."""
    return [indices[i : i + size] for i in range(0, len(indices), size)]


def _divergence_check(
    template: ScenarioSpec, perturb: Optional[str]
) -> Any:
    """A :data:`~repro.resilience.shrink.ViolationCheck` over the oracles.

    Candidates inherit the template's ``record``/``trace_level`` (the
    Scenario bridge does not carry them) so a metrics-parity divergence
    stays reproducible while the structural fields shrink.
    """

    def check(candidate: Scenario) -> Tuple[str, ...]:
        spec = candidate.to_spec()
        spec = replace(
            spec,
            record=template.record,
            trace_level=template.trace_level,
        )
        return diverging_oracles(evaluate_point(spec, perturb))

    return check


def _file_divergence(
    config: FlywheelConfig, index: int, spec: ScenarioSpec, row: Dict[str, Any]
) -> Dict[str, Any]:
    """Shrink one diverging point and file it as a corpus case.

    Returns the ledger ``divergence`` payload: oracle names, shrink
    stats, and — when the protocol crosses the Scenario bridge — the
    corpus case name and the minimal spec.  ``path-aa`` (and any future
    bridge gap) files ledger-only, with the original spec as the
    reproduction.
    """
    oracle_names = diverging_oracles(row)
    record: Dict[str, Any] = {
        "oracles": list(oracle_names),
        "spec": spec.to_dict(),
        "filed": False,
        "shrunk": False,
    }
    try:
        scenario = Scenario.from_spec(spec)
    except Exception as exc:  # noqa: BLE001 - bridge gaps still file ledger-only
        record["unshrinkable"] = f"{type(exc).__name__}: {exc}"
        return record

    minimal_spec = spec
    check = _divergence_check(spec, config.perturb)
    try:
        result = shrink(
            scenario, max_checks=config.max_shrink_checks, check=check
        )
    except Exception as exc:  # noqa: BLE001 - an unshrinkable case still files
        record["unshrinkable"] = f"{type(exc).__name__}: {exc}"
    else:
        record["shrunk"] = result.reduced
        record["shrink_checks"] = result.checks
        record["shrink_steps"] = result.steps
        record["shrink_report"] = shrink_report(result)
        minimal_spec = replace(
            result.minimal.to_spec(),
            record=spec.record,
            trace_level=spec.trace_level,
        )
        record["minimal_spec"] = minimal_spec.to_dict()
        scenario = result.minimal

    if config.corpus_dir is not None:
        name = f"flywheel-{config.seed}-{index:05d}"
        case = ReproCase(
            name=name,
            description=(
                "flywheel divergence on oracles "
                f"{', '.join(oracle_names)} (stream seed {config.seed}, "
                f"point {index}); replay with `repro flywheel replay`"
            ),
            scenario=scenario,
            # The *resilience* verdict of the minimal scenario, so the
            # tier-1 corpus replay (which runs the invariant oracles,
            # not the differential ones) stays self-consistent.
            expected_violations=_resilience_verdict(scenario),
            extras={
                "flywheel": {
                    "stream_seed": config.seed,
                    "index": index,
                    "oracles": list(oracle_names),
                    "spec": minimal_spec.to_dict(),
                    "perturb": config.perturb,
                    "batch_supported": batch_replayable(minimal_spec),
                }
            },
        )
        record["case"] = name
        record["path"] = save_case(case, config.corpus_dir)
        record["filed"] = True
    return record


def _resilience_verdict(scenario: Scenario) -> Tuple[str, ...]:
    """The invariant-oracle verdict the corpus replay will reproduce."""
    from ..resilience.shrink import check_violations

    try:
        return check_violations(scenario)
    except Exception:  # noqa: BLE001 - crash counts as the crash oracle
        return ("no-crash",)


def replay_flywheel_case(case: ReproCase) -> Dict[str, Any]:
    """Re-judge a flywheel-filed corpus case with the differential oracles.

    Reads the minimal spec out of the case's ``flywheel`` extra
    (deliberately *without* the perturbation seam: a filed case must
    reproduce its divergence from the genuine engines, unless it was
    filed by the self-test, in which case the caller replays the seam
    explicitly).
    """
    flywheel = case.extras.get("flywheel")
    if not isinstance(flywheel, dict) or "spec" not in flywheel:
        raise ValueError(f"{case.name} is not a flywheel-filed case")
    spec = ScenarioSpec.from_dict(flywheel["spec"])
    return evaluate_point(spec, flywheel.get("perturb"))


def run_flywheel(config: FlywheelConfig, *, resume: bool = False) -> FlywheelReport:
    """Execute (or resume) one campaign; returns the run's report.

    ``resume=False`` on a ledger with prior progress raises — an
    explicit ``resume`` is how the caller acknowledges partial state.
    Either way the stream digest must match the ledger header, so a
    generator change can never silently mix two different streams under
    one exactly-once accounting.
    """
    digest = stream_digest(config.seed, config.count)
    state = load_state(config.ledger_path)
    check_compatible(
        state, seed=config.seed, count=config.count, digest=digest
    )
    if state.executed and not resume:
        raise ValueError(
            f"{config.ledger_path} already records "
            f"{len(state.executed)}/{config.count} points; "
            "use resume to continue it"
        )

    specs = list(spec_stream(config.seed, config.count))
    remaining = [i for i in range(config.count) if i not in state.executed]
    divergences: List[Dict[str, Any]] = list(state.divergences)
    filed: List[str] = [
        d["case"] for d in state.divergences if d.get("case")
    ]
    executed = 0

    with LedgerWriter(config.ledger_path) as ledger:
        if state.header is None:
            ledger.header(
                seed=config.seed,
                count=config.count,
                shard_size=config.shard_size,
                digest=digest,
                version=repro.__version__,
                perturb=config.perturb,
            )
        for shard in _shards(remaining, config.shard_size):
            grid = []
            for index in shard:
                params: Dict[str, Any] = {"spec": specs[index].to_dict()}
                if config.perturb is not None:
                    params["perturb"] = config.perturb
                grid.append(params)
            report = run_grid(
                f"flywheel-{config.seed}",
                "flywheel-point",
                grid,
                jobs=config.jobs,
                cache_dir=config.cache_dir,
                no_cache=config.no_cache,
            )
            for index, row in zip(shard, report.rows):
                ledger.point(index, row)
                executed += 1
                if not row.get("ok", False):
                    record = _file_divergence(
                        config, index, specs[index], row
                    )
                    ledger.divergence(index, record)
                    divergences.append({"index": index, **record})
                    if record.get("case"):
                        filed.append(record["case"])
        if not state.done and len(state.executed) + executed == config.count:
            ledger.done(
                executed=len(state.executed) + executed,
                divergences=len(divergences),
            )

    return FlywheelReport(
        config=config,
        executed=executed,
        skipped=len(state.executed),
        divergences=divergences,
        filed_cases=filed,
    )
