"""The campaign ledger: an append-only JSONL log that makes runs resumable.

A flywheel campaign executes many thousands of points; the ledger is the
single source of truth for which of them are *finished*.  Every record is
one JSON object on one line, appended and flushed as soon as the fact it
records is true:

``{"type": "header", ...}``
    Campaign identity: stream seed, point count, shard size, the stream
    digest (:func:`~repro.analysis.strategies.stream_digest` over the
    whole campaign), and the repro version.  Written once per ``run``
    invocation; a resume *verifies* its parameters against the first
    header and refuses to mix streams in one ledger.
``{"type": "point", "index": i, ...}``
    Point ``i`` was executed and judged; carries the full oracle row.
    A point record is the exactly-once unit: resume skips every index
    that has one.
``{"type": "divergence", "index": i, ...}``
    Point ``i`` diverged; carries the oracle names, the shrink outcome,
    and the corpus case filed (if any).
``{"type": "done", ...}``
    The campaign reached its configured count.  Its absence is what
    tells ``resume``/``status`` the run was interrupted.

The reader tolerates a torn final line (the SIGKILL case — same contract
as :func:`repro.analysis.parallel.read_sweep_points`): a half-written
point record is simply not a point record, so the point re-runs on
resume and appears exactly once in the *parsed* ledger.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

#: Ledger format version (bump on incompatible record-shape changes).
LEDGER_SCHEMA_VERSION = 1


class LedgerError(ValueError):
    """The ledger on disk is incompatible with the requested campaign."""


def read_ledger(path: str) -> List[Dict[str, Any]]:
    """Every parseable record, in file order; a torn tail is skipped.

    Only a trailing unparsable line is forgiven (the append-crash case);
    garbage in the middle of the file means the ledger was edited or
    corrupted, and raises :class:`LedgerError` rather than silently
    dropping executed points.
    """
    if not os.path.exists(path):
        return []
    records: List[Dict[str, Any]] = []
    with open(path) as handle:
        lines = handle.read().splitlines()
    for lineno, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            parsed = json.loads(line)
        except ValueError:
            if lineno == len(lines) - 1:
                break  # torn tail: the crash interrupted this append
            raise LedgerError(
                f"{path}:{lineno + 1}: unparsable non-final record"
            ) from None
        if isinstance(parsed, dict):
            records.append(parsed)
    return records


@dataclass
class LedgerState:
    """What a ledger says about a campaign (the resume/status view)."""

    header: Optional[Dict[str, Any]] = None
    #: Indices with a point record (executed exactly once).
    executed: Set[int] = field(default_factory=set)
    #: Divergence records, in filing order.
    divergences: List[Dict[str, Any]] = field(default_factory=list)
    done: bool = False

    @property
    def count(self) -> int:
        """The campaign's configured point count (0 if no header yet)."""
        return int(self.header["count"]) if self.header else 0

    def remaining(self) -> List[int]:
        """Indices still to execute, in stream order."""
        return [i for i in range(self.count) if i not in self.executed]


def load_state(path: str) -> LedgerState:
    """Fold a ledger file into its :class:`LedgerState`."""
    state = LedgerState()
    for record in read_ledger(path):
        kind = record.get("type")
        if kind == "header":
            if state.header is None:
                state.header = record
        elif kind == "point":
            state.executed.add(int(record["index"]))
        elif kind == "divergence":
            state.divergences.append(record)
        elif kind == "done":
            state.done = True
    return state


def _repair_torn_tail(path: str) -> None:
    """Truncate a half-written final record before appending new ones.

    A record is only *committed* once its newline hits the disk; a kill
    mid-append leaves a tail with no terminator, which the reader
    already ignores.  Repairing it at writer-open (WAL style) keeps the
    invariant that an unparsable line can only ever be the final one —
    without this, a resume would append flush records *onto* the torn
    fragment and corrupt the ledger mid-file.
    """
    if not os.path.exists(path):
        return
    with open(path, "rb+") as handle:
        handle.seek(0, os.SEEK_END)
        size = handle.tell()
        if size == 0:
            return
        handle.seek(-1, os.SEEK_END)
        if handle.read(1) == b"\n":
            return
        handle.seek(0)
        data = handle.read()
        keep = data.rfind(b"\n") + 1  # 0 when no newline exists at all
        handle.truncate(keep)


class LedgerWriter:
    """Append-and-flush writer for one campaign ledger."""

    def __init__(self, path: str) -> None:
        self.path = path
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        _repair_torn_tail(path)
        self._handle = open(path, "a")

    def append(self, record: Dict[str, Any]) -> None:
        """Write one record and force it to disk (crash-safe append)."""
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def header(
        self,
        *,
        seed: int,
        count: int,
        shard_size: int,
        digest: str,
        version: str,
        perturb: Optional[str] = None,
    ) -> None:
        record: Dict[str, Any] = {
            "type": "header",
            "schema_version": LEDGER_SCHEMA_VERSION,
            "seed": seed,
            "count": count,
            "shard_size": shard_size,
            "stream_digest": digest,
            "version": version,
            "written_at": time.time(),
        }
        if perturb is not None:
            record["perturb"] = perturb
        self.append(record)

    def point(self, index: int, row: Dict[str, Any]) -> None:
        self.append({"type": "point", "index": index, "row": row})

    def divergence(self, index: int, record: Dict[str, Any]) -> None:
        self.append({"type": "divergence", "index": index, **record})

    def done(self, *, executed: int, divergences: int) -> None:
        self.append(
            {
                "type": "done",
                "executed": executed,
                "divergences": divergences,
                "written_at": time.time(),
            }
        )

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "LedgerWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def check_compatible(
    state: LedgerState, *, seed: int, count: int, digest: str
) -> None:
    """Refuse to resume a ledger written for a different stream.

    The digest comparison subsumes the seed/count ones, but the explicit
    checks give the error message a human cause.
    """
    header = state.header
    if header is None:
        return
    if int(header["seed"]) != seed:
        raise LedgerError(
            f"ledger was written for stream seed {header['seed']}, not {seed}"
        )
    if int(header["count"]) != count:
        raise LedgerError(
            f"ledger was written for {header['count']} points, not {count}"
        )
    if str(header["stream_digest"]) != digest:
        raise LedgerError(
            "ledger stream digest does not match this generator version"
        )
