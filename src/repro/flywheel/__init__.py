"""Scenario-diversity flywheel: resumable differential mega-campaigns.

The flywheel closes the loop the previous PRs opened: seeded generators
(:mod:`repro.analysis.strategies`) describe the scenario space, the
parallel sweep engine executes it at scale, differential oracles
(:mod:`~repro.flywheel.oracles`) judge every point from five angles, and
anything that diverges is delta-debugged to a minimum and filed as a
replayable corpus case — so every campaign either raises confidence in
the reproduction or permanently grows its regression suite.  Campaigns
checkpoint to a JSONL ledger (:mod:`~repro.flywheel.ledger`) and resume
after a kill with exactly-once accounting; ``repro flywheel`` is the
CLI, docs/FLYWHEEL.md the manual.
"""

from .engine import (
    DEFAULT_SHARD_SIZE,
    FlywheelConfig,
    FlywheelReport,
    flywheel_point_runner,
    replay_flywheel_case,
    run_flywheel,
)
from .ledger import (
    LEDGER_SCHEMA_VERSION,
    LedgerError,
    LedgerState,
    LedgerWriter,
    check_compatible,
    load_state,
    read_ledger,
)
from .oracles import (
    FLYWHEEL_ORACLES,
    batch_replayable,
    diverging_oracles,
    evaluate_point,
    resolve_perturb,
)
from .selftest import PERTURBATIONS, SelfTestError, run_selftest
from .soak import SoakReport, run_soak

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "FLYWHEEL_ORACLES",
    "FlywheelConfig",
    "FlywheelReport",
    "LEDGER_SCHEMA_VERSION",
    "LedgerError",
    "LedgerState",
    "LedgerWriter",
    "PERTURBATIONS",
    "SelfTestError",
    "SoakReport",
    "batch_replayable",
    "check_compatible",
    "diverging_oracles",
    "evaluate_point",
    "flywheel_point_runner",
    "load_state",
    "read_ledger",
    "replay_flywheel_case",
    "resolve_perturb",
    "run_flywheel",
    "run_selftest",
    "run_soak",
]
