"""Baseline: the memoryless iteration outline for AA on ℝ ([12]-style).

The paper's introduction describes the classic iteration-based outline: in
every iteration the parties distribute values, compute a safe area by
discarding the ``t`` lowest and ``t`` highest values received, and adopt the
midpoint.  The range halves per iteration — a ``2^{-R}`` convergence factor,
against which RealAA's ``t^R/(R^R (n−2t)^R)`` is the headline improvement.

Two knobs isolate *why* RealAA wins:

* ``memory`` — whether senders graded ≤ 1 are permanently ignored (RealAA's
  detection).  The default ``False`` is the pure outline: a Byzantine party
  may cause inconsistencies in *every* iteration, capping convergence at the
  halving rate (ablation A1).
* ``distribution`` — ``"gradecast"`` (3 rounds, graded consistency) or
  ``"naive"`` (1 round of plain point-to-point sends, ablation A2).  With
  naive distribution an equivocating adversary can feed different values to
  different honest parties *without ever being detected*, and convergence
  can be stalled entirely.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Literal, Optional, Set

from ..net.messages import Inbox, Outbox, PartyId, broadcast
from ..net.protocol import ProtocolParty, ProtocolStateError
from ..protocols.gradecast import GRADE_LOW, ParallelGradecast
from ..protocols.realaa import is_real
from ..protocols.rounds import check_resilience

Distribution = Literal["gradecast", "naive"]


def halving_iterations(known_range: float, epsilon: float) -> int:
    """Iterations needed at the outline's ``2^{-R}`` rate."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if known_range <= epsilon:
        return 1
    return max(1, math.ceil(math.log2(known_range / epsilon)))


@dataclass
class BaselineIterationRecord:
    """Diagnostics for one baseline iteration."""

    iteration: int
    accepted_count: int
    new_value: float


class IterativeRealAAParty(ProtocolParty):
    """One party of the iteration-outline baseline on real values.

    The update rule is the trimmed *midpoint*
    ``(min(core) + max(core)) / 2`` — the rule for which the outline's
    halving analysis holds.
    """

    def __init__(
        self,
        pid: PartyId,
        n: int,
        t: int,
        input_value: float,
        epsilon: float = 1.0,
        known_range: Optional[float] = None,
        iterations: Optional[int] = None,
        memory: bool = False,
        distribution: Distribution = "gradecast",
    ) -> None:
        super().__init__(pid, n, t)
        check_resilience(n, t)
        if not is_real(input_value):
            raise ValueError(f"input must be a finite real, got {input_value!r}")
        if (known_range is None) == (iterations is None):
            raise ValueError("give exactly one of known_range / iterations")
        if iterations is None:
            if known_range is None:  # unreachable: the xor check above
                raise ProtocolStateError("known_range and iterations both None")
            iterations = halving_iterations(known_range, epsilon)
        if distribution not in ("gradecast", "naive"):
            raise ValueError(f"unknown distribution {distribution!r}")
        self.epsilon = float(epsilon)
        self.iterations = iterations
        self.memory = memory
        self.distribution: Distribution = distribution
        self.input_value = float(input_value)
        self.value = float(input_value)
        self.bad: Set[PartyId] = set()
        self.history: List[BaselineIterationRecord] = []
        self._engine: Optional[ParallelGradecast] = None

    @property
    def rounds_per_iteration(self) -> int:
        return 3 if self.distribution == "gradecast" else 1

    @property
    def duration(self) -> int:
        return self.rounds_per_iteration * self.iterations

    # ------------------------------------------------------------------

    def messages_for_round(self, round_index: int) -> Outbox:
        iteration, phase = divmod(round_index, self.rounds_per_iteration)
        if iteration >= self.iterations:
            return {}
        if self.distribution == "naive":
            return broadcast(("nval", iteration, self.value), self.n)
        if phase == 0:
            self._engine = ParallelGradecast(
                self.pid,
                self.n,
                self.t,
                iteration=iteration,
                own_value=self.value,
                validate_value=is_real,
            )
            return self._engine.value_messages()
        if self._engine is None:
            raise ProtocolStateError("gradecast engine missing outside phase 0")
        if phase == 1:
            return self._engine.echo_messages()
        return self._engine.support_messages()

    def receive_round(self, round_index: int, inbox: Inbox) -> None:
        iteration, phase = divmod(round_index, self.rounds_per_iteration)
        if iteration >= self.iterations:
            return
        if self.distribution == "naive":
            accepted = self._accept_naive(iteration, inbox)
            self._update(iteration, accepted)
            return
        if self._engine is None:
            raise ProtocolStateError("receiving a round before sending one")
        if phase == 0:
            self._engine.receive_values(inbox)
        elif phase == 1:
            self._engine.receive_echoes(inbox)
        else:
            self._engine.receive_supports(inbox)
            accepted = self._accept_gradecast(iteration)
            self._update(iteration, accepted)

    def _accept_naive(self, iteration: int, inbox: Inbox) -> List[float]:
        accepted: List[float] = []
        for sender, payload in inbox.items():
            if (
                isinstance(payload, tuple)
                and len(payload) == 3
                and payload[0] == "nval"
                and payload[1] == iteration
                and is_real(payload[2])
            ):
                accepted.append(float(payload[2]))
        return accepted

    def _accept_gradecast(self, iteration: int) -> List[float]:
        if self._engine is None:
            raise ProtocolStateError("grading an iteration that never started")
        accepted: List[float] = []
        newly_bad: List[PartyId] = []
        for origin, (value, confidence) in self._engine.grade_all().items():
            if confidence >= GRADE_LOW and origin not in self.bad:
                accepted.append(float(value))
            if self.memory and confidence <= GRADE_LOW:
                newly_bad.append(origin)
        self.bad.update(newly_bad)
        self._engine = None
        return accepted

    def _update(self, iteration: int, accepted: List[float]) -> None:
        if accepted:
            ordered = sorted(accepted)
            if len(ordered) > 2 * self.t:
                core = ordered[self.t : len(ordered) - self.t]
            else:
                core = ordered
            # Midpoint of the safe interval: the outline's halving rule.
            self.value = (core[0] + core[-1]) / 2.0
        self.history.append(
            BaselineIterationRecord(
                iteration=iteration,
                accepted_count=len(accepted),
                new_value=self.value,
            )
        )
        if iteration + 1 == self.iterations:
            self.output = self.value
