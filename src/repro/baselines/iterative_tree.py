"""Baseline: iterated safe-area AA directly on trees ([33]-style).

The prior state of the art for AA on trees (Nowak–Rybicki) follows the
iteration-based outline natively on the tree: distribute current vertices,
compute the tree safe area (every vertex that survives deleting any ``t``
received values, see :mod:`repro.trees.safe_area`), and move to the safe
area's midpoint.  The honest vertices' spread roughly halves per iteration,
giving ``O(log D(T))`` rounds — the complexity TreeAA improves to
``O(log |V| / log log |V|)``.

Value distribution reuses the same parallel gradecast as RealAA so that the
comparison isolates exactly the paper's contribution (the reduction with
memory) rather than differences in distribution substrates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from ..net.messages import Inbox, Outbox, PartyId
from ..net.protocol import ProtocolParty, ProtocolStateError
from ..protocols.gradecast import GRADE_LOW, ParallelGradecast
from ..protocols.rounds import ROUNDS_PER_ITERATION, check_resilience
from ..trees.labeled_tree import Label, LabeledTree
from ..trees.paths import diameter
from ..trees.safe_area import safe_area_midpoint


def tree_halving_iterations(tree_diameter: int) -> int:
    """Iterations for the outline to reach 1-agreement on a tree.

    The honest spread starts at ``≤ D(T)`` and roughly halves per iteration;
    ``⌈log2 D⌉ + 2`` iterations leave comfortable slack for the integer
    rounding losses of discrete midpoints (verified empirically by the test
    suite across tree families and adversaries).
    """
    if tree_diameter <= 1:
        return 1
    return math.ceil(math.log2(tree_diameter)) + 2


@dataclass
class TreeIterationRecord:
    """Diagnostics for one baseline iteration on the tree."""

    iteration: int
    accepted_count: int
    new_vertex: Label


class IterativeTreeAAParty(ProtocolParty):
    """One party of the iterated safe-area baseline on a tree."""

    def __init__(
        self,
        pid: PartyId,
        n: int,
        t: int,
        tree: LabeledTree,
        input_vertex: Label,
        iterations: Optional[int] = None,
    ) -> None:
        super().__init__(pid, n, t)
        check_resilience(n, t)
        tree.require_vertex(input_vertex)
        if iterations is None:
            iterations = tree_halving_iterations(diameter(tree))
        self.tree = tree
        self.iterations = iterations
        self.vertex: Label = input_vertex
        self.history: List[TreeIterationRecord] = []
        self._engine: Optional[ParallelGradecast] = None

    @property
    def duration(self) -> int:
        return ROUNDS_PER_ITERATION * self.iterations

    def _validate(self, value: object) -> bool:
        try:
            return value in self.tree
        except TypeError:
            return False

    def messages_for_round(self, round_index: int) -> Outbox:
        iteration, phase = divmod(round_index, ROUNDS_PER_ITERATION)
        if iteration >= self.iterations:
            return {}
        if phase == 0:
            self._engine = ParallelGradecast(
                self.pid,
                self.n,
                self.t,
                iteration=iteration,
                own_value=self.vertex,
                validate_value=self._validate,
            )
            return self._engine.value_messages()
        if self._engine is None:
            raise ProtocolStateError("gradecast engine missing outside phase 0")
        if phase == 1:
            return self._engine.echo_messages()
        return self._engine.support_messages()

    def receive_round(self, round_index: int, inbox: Inbox) -> None:
        iteration, phase = divmod(round_index, ROUNDS_PER_ITERATION)
        if iteration >= self.iterations or self._engine is None:
            return
        if phase == 0:
            self._engine.receive_values(inbox)
        elif phase == 1:
            self._engine.receive_echoes(inbox)
        else:
            self._engine.receive_supports(inbox)
            self._finish_iteration(iteration)

    def _finish_iteration(self, iteration: int) -> None:
        if self._engine is None:
            raise ProtocolStateError("finishing an iteration that never started")
        accepted: List[Label] = []
        for origin, (value, confidence) in self._engine.grade_all().items():
            if confidence >= GRADE_LOW:
                accepted.append(value)
        self._engine = None
        if accepted:
            self.vertex = safe_area_midpoint(self.tree, accepted, self.t)
        self.history.append(
            TreeIterationRecord(
                iteration=iteration,
                accepted_count=len(accepted),
                new_vertex=self.vertex,
            )
        )
        if iteration + 1 == self.iterations:
            self.output = self.vertex
