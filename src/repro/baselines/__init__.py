"""Baseline protocols the paper compares against (conceptually).

* :class:`IterativeRealAAParty` — the classic memoryless iteration outline
  on ℝ ([12]), converging by ``2^{-R}``;
* :class:`IterativeTreeAAParty` — the prior ``O(log D(T))`` state of the art
  for trees ([33]), iterated safe-area midpoints.
"""

from .iterative_real import (
    BaselineIterationRecord,
    IterativeRealAAParty,
    halving_iterations,
)
from .iterative_tree import (
    IterativeTreeAAParty,
    TreeIterationRecord,
    tree_halving_iterations,
)

__all__ = [
    "IterativeRealAAParty",
    "BaselineIterationRecord",
    "halving_iterations",
    "IterativeTreeAAParty",
    "TreeIterationRecord",
    "tree_halving_iterations",
]
