"""RealAA — synchronous Approximate Agreement on real values ([6], Theorem 3).

The protocol of Ben-Or, Dolev, and Hoch that the paper uses as its building
block.  It follows the iteration-based outline *with memory*:

* every iteration (3 rounds, Remark 3) all parties gradecast their current
  values in parallel;
* a party accepts the value of origin ``q`` iff the gradecast confidence is
  ≥ 1 **and** ``q`` has not previously been detected — confidence ≤ 1 proves
  ``q`` Byzantine (honest senders always grade 2), so ``q`` joins the
  persistent ``BAD`` set and is ignored as a sender in all later iterations;
* the new value is the *trimmed mean* of the accepted multiset: discard the
  ``t`` lowest and ``t`` highest values, average the rest.

Because graded consistency forces all honest parties to agree on every
accepted value, honest multisets differ only by *inclusion* — and each
Byzantine party can cause an inclusion discrepancy at most once before
landing in everyone's BAD set.  If ``t_i`` parties burn themselves in
iteration ``i``, the honest range shrinks by factor ``t_i / (n − 2t)``
(Lemma 5), which is what lets RealAA match Fekete's lower bound.

Termination is deterministic: the iteration count is derived from the
publicly known input range via Lemma 5 (see
:func:`repro.protocols.rounds.realaa_iterations`).  Each party additionally
records the first iteration at which its *observed* accepted range was
already ≤ ε — the measured round complexity reported by the benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..net.messages import Inbox, Outbox, PartyId
from ..net.protocol import ProtocolParty, ProtocolStateError
from .gradecast import GRADE_LOW, ParallelGradecast
from .rounds import ROUNDS_PER_ITERATION, check_resilience, realaa_iterations


def is_real(value: object) -> bool:
    """Accept exactly finite ints/floats (bools are not protocol values)."""
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(value)
    )


def trimmed_mean(values: Sequence[float], t: int) -> float:
    """Discard the ``t`` lowest and ``t`` highest values; average the rest.

    The safe-area computation of RealAA: with at most ``t`` Byzantine values
    present, everything that survives the double trim lies within the honest
    values' range, so the mean does too (Validity, Lemma 6).
    """
    if not values:
        raise ValueError("cannot take the trimmed mean of no values")
    ordered = sorted(values)
    if len(ordered) > 2 * t:
        ordered = ordered[t : len(ordered) - t]
    return math.fsum(ordered) / len(ordered)


@dataclass
class IterationRecord:
    """Diagnostics captured at the end of one RealAA iteration."""

    iteration: int
    accepted: Dict[PartyId, float]
    newly_detected: Tuple[PartyId, ...]
    trimmed_range: float
    new_value: float


class RealAAParty(ProtocolParty):
    """One party of ``RealAA(ε)``.

    Parameters
    ----------
    input_value:
        The party's real-valued input.
    epsilon:
        The agreement parameter ``ε > 0``.
    known_range:
        Publicly known bound on the honest inputs' spread, used to fix the
        deterministic iteration count.  Exactly one of ``known_range`` and
        ``iterations`` must be given.
    iterations:
        Explicit iteration count (overrides the Lemma-5 derivation).
    """

    def __init__(
        self,
        pid: PartyId,
        n: int,
        t: int,
        input_value: float,
        epsilon: float = 1.0,
        known_range: Optional[float] = None,
        iterations: Optional[int] = None,
        accusations: bool = True,
    ) -> None:
        super().__init__(pid, n, t)
        check_resilience(n, t)
        if not is_real(input_value):
            raise ValueError(f"input must be a finite real, got {input_value!r}")
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if (known_range is None) == (iterations is None):
            raise ValueError("give exactly one of known_range / iterations")
        if iterations is None:
            if known_range is None:  # unreachable: the xor check above
                raise ProtocolStateError("known_range and iterations both None")
            iterations = realaa_iterations(known_range, epsilon, n, t)
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.epsilon = float(epsilon)
        self.iterations = iterations
        self.input_value = float(input_value)
        self.value = float(input_value)
        self.bad: Set[PartyId] = set()
        self.history: List[IterationRecord] = []
        #: First iteration (1-based) whose accepted range was ≤ ε, i.e. when
        #: this party *observed* the termination condition.  ``None`` until
        #: observed.  The measured round complexity is 3× this value.
        self.local_termination_iteration: Optional[int] = None
        #: Quorum accusations (see the class docstring's "asymmetric trust"
        #: discussion): parties piggyback their BAD sets on value messages;
        #: ``t + 1`` accusers globalise a blacklisting.  Disabled only for
        #: the A3 ablation, which demonstrates the attack this closes.
        self.accusations = accusations
        self._accusers: Dict[PartyId, Set[PartyId]] = {}
        self._engine: Optional[ParallelGradecast] = None

    @property
    def duration(self) -> int:
        return ROUNDS_PER_ITERATION * self.iterations

    # ------------------------------------------------------------------

    def _iteration_phase(self, round_index: int) -> Tuple[int, int]:
        return divmod(round_index, ROUNDS_PER_ITERATION)

    def messages_for_round(self, round_index: int) -> Outbox:
        iteration, phase = self._iteration_phase(round_index)
        if iteration >= self.iterations:
            return {}
        if phase == 0:
            self._engine = ParallelGradecast(
                self.pid,
                self.n,
                self.t,
                iteration=iteration,
                own_value=self.value,
                validate_value=is_real,
            )
            if not self.accusations:
                return self._engine.value_messages()
            payload = ("val", iteration, self.value, tuple(sorted(self.bad)))
            return {recipient: payload for recipient in range(self.n)}
        if self._engine is None:
            raise ProtocolStateError("gradecast engine missing outside phase 0")
        if phase == 1:
            return self._engine.echo_messages()
        return self._engine.support_messages()

    def receive_round(self, round_index: int, inbox: Inbox) -> None:
        iteration, phase = self._iteration_phase(round_index)
        if iteration >= self.iterations or self._engine is None:
            return
        if phase == 0:
            self._engine.receive_values(inbox)
            if self.accusations:
                self._collect_accusations(iteration, inbox)
        elif phase == 1:
            self._engine.receive_echoes(inbox)
        else:
            self._engine.receive_supports(inbox)
            self._finish_iteration(iteration)

    def _collect_accusations(self, iteration: int, inbox: Inbox) -> None:
        """Record which parties each sender currently blacklists.

        Honest parties never blacklist honest parties (honest senders are
        always graded 2), so an accused party with ``t + 1`` distinct
        accusers is provably Byzantine — the quorum applied in
        :meth:`_finish_iteration`.  This closes the *asymmetric trust*
        loophole: a sender graded 2 by some honest parties and 1 by others
        lands only in the graders-of-1's BAD sets, and without accusations
        it could keep feeding divergent multisets forever at no further
        cost (see ``AsymmetricTrustAdversary`` and ablation A3).
        """
        for sender, payload in inbox.items():
            if (
                not isinstance(payload, tuple)
                or len(payload) != 4
                or payload[0] != "val"
                or payload[1] != iteration
            ):
                continue
            accused = payload[3]
            if not isinstance(accused, tuple) or len(accused) > self.n:
                continue
            for origin in accused:
                if isinstance(origin, int) and 0 <= origin < self.n:
                    self._accusers.setdefault(origin, set()).add(sender)

    def _finish_iteration(self, iteration: int) -> None:
        if self._engine is None:
            raise ProtocolStateError("finishing an iteration that never started")
        grades = self._engine.grade_all()
        accepted: Dict[PartyId, float] = {}
        newly_detected: List[PartyId] = []
        if self.accusations:
            for origin, accusers in self._accusers.items():
                if len(accusers) >= self.t + 1 and origin not in self.bad:
                    # ≥ 1 honest accuser ⇒ origin is Byzantine.
                    newly_detected.append(origin)
            self.bad.update(newly_detected)
        for origin, (value, confidence) in grades.items():
            if confidence >= GRADE_LOW and origin not in self.bad:
                if not is_real(value):
                    raise ProtocolStateError(
                        "gradecast graded a non-real value despite "
                        "validate_value=is_real"
                    )
                accepted[origin] = float(value)
            if confidence <= GRADE_LOW:
                # Confidence ≤ 1 proves the sender Byzantine: an honest
                # sender is always graded 2 by every honest party.
                if origin not in self.bad:
                    newly_detected.append(origin)
        self.bad.update(newly_detected)

        values = list(accepted.values())
        if values:
            ordered = sorted(values)
            if len(ordered) > 2 * self.t:
                core = ordered[self.t : len(ordered) - self.t]
            else:
                core = ordered
            trimmed_range = core[-1] - core[0]
            # Clamp into the core's envelope: the float mean can land one
            # ulp outside it at large magnitudes, and Validity is exact.
            self.value = min(max(math.fsum(core) / len(core), core[0]), core[-1])
        else:
            trimmed_range = 0.0  # keep the old value (cannot happen honestly)

        if (
            self.local_termination_iteration is None
            and trimmed_range <= self.epsilon
        ):
            self.local_termination_iteration = iteration + 1

        self.history.append(
            IterationRecord(
                iteration=iteration,
                accepted=accepted,
                newly_detected=tuple(sorted(newly_detected)),
                trimmed_range=trimmed_range,
                new_value=self.value,
            )
        )
        self._engine = None
        if iteration + 1 == self.iterations:
            self.output = self._final_output()

    def _final_output(self) -> Any:
        """Hook: derive the protocol output from the final real value.

        ``RealAA`` itself outputs the value; the path/tree reductions of
        Sections 4–7 override this to map the real value back to a vertex.
        """
        return self.value
