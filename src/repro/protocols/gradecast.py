"""Gradecast — the value-distribution mechanism of RealAA ([6], Remark 3).

Gradecast is a graded broadcast: a designated sender distributes a value and
every party outputs a ``(value, confidence)`` pair with confidence in
``{0, 1, 2}`` such that

* **honest sender** ⇒ every honest party outputs ``(v, 2)``;
* **graded consistency** — if two honest parties output confidences ≥ 1,
  their values are equal;
* **graded agreement** — if an honest party outputs confidence 2, every
  honest party outputs confidence ≥ 1.

Consequently a sender graded ≤ 1 by any honest party is *provably
Byzantine* — the detection RealAA exploits to make each Byzantine party
"pay" for at most one iteration of inconsistency.

Three rounds, n > 3t (Remark 3):

1. **value**  — the sender sends ``v`` to everyone;
2. **echo**   — every party echoes the value it received to everyone;
3. **support**— a party that saw ``≥ n − t`` echoes for the same value ``w``
   supports ``w`` to everyone.  A party then grades: ``≥ n − t`` supports
   for ``w`` ⇒ ``(w, 2)``; ``≥ t + 1`` ⇒ ``(w, 1)``; otherwise ``(⊥, 0)``.

:class:`ParallelGradecast` runs all ``n`` instances of one RealAA iteration
in lockstep (every party is the sender of its own instance), which is how
both RealAA and the iterated-safe-area baseline distribute values.
:class:`GradecastParty` wraps a single instance as a standalone protocol for
direct unit testing of the three guarantees.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from ..net.messages import Inbox, Outbox, PartyId, broadcast
from ..net.protocol import ProtocolParty
from .rounds import check_resilience

#: Sentinel for "no value": the ``⊥`` of the paper.
BOTTOM = None

#: Confidence grades.
GRADE_NONE, GRADE_LOW, GRADE_HIGH = 0, 1, 2

#: A graded output: ``(value, confidence)``.
Graded = Tuple[Any, int]


def _clean_vector(payload: Any, tag: str, iteration: int, n: int) -> Dict[int, Any]:
    """Parse an ``(tag, iteration, {origin: value})`` payload defensively.

    Byzantine parties may send arbitrary objects; anything malformed is
    treated as absent.  Returns a dict keyed by valid origin ids with
    non-``BOTTOM`` hashable values.
    """
    if (
        not isinstance(payload, tuple)
        or len(payload) != 3
        or payload[0] != tag
        or payload[1] != iteration
        or not isinstance(payload[2], dict)
    ):
        return {}
    vector: Dict[int, Any] = {}
    for origin, value in payload[2].items():
        if not isinstance(origin, int) or not 0 <= origin < n:
            continue
        if value is BOTTOM:
            continue
        try:
            hash(value)
        except TypeError:
            continue
        vector[origin] = value
    return vector


class ParallelGradecast:
    """All ``n`` simultaneous gradecast instances of one iteration.

    Drives three rounds for one party.  Call order per iteration::

        out = value_messages()           # round 3k     (send)
        receive_values(inbox)            # round 3k     (deliver)
        out = echo_messages()            # round 3k + 1 (send)
        receive_echoes(inbox)            # round 3k + 1 (deliver)
        out = support_messages()         # round 3k + 2 (send)
        receive_supports(inbox)          # round 3k + 2 (deliver)
        grades = grade_all()             # (value, confidence) per origin

    The ``iteration`` tag is embedded in every payload so that malformed or
    replayed traffic from other iterations is discarded.
    """

    def __init__(
        self,
        pid: PartyId,
        n: int,
        t: int,
        iteration: int,
        own_value: Any,
        validate_value: Optional[Callable[[Any], bool]] = None,
    ) -> None:
        check_resilience(n, t)
        self.pid = pid
        self.n = n
        self.t = t
        self.iteration = iteration
        self.own_value = own_value
        self._validate = validate_value
        self._received: Dict[int, Any] = {}
        self._echoes: Dict[int, Dict[int, Any]] = {}
        self._supports: Dict[int, Any] = {}
        self._support_votes: Dict[int, Dict[int, Any]] = {}

    # -- round 1: value -------------------------------------------------

    def value_messages(self) -> Outbox:
        return broadcast(("val", self.iteration, self.own_value), self.n)

    def receive_values(self, inbox: Inbox) -> None:
        # Value payloads may carry trailing protocol extensions (RealAA
        # appends its accusation list); only the first three fields matter
        # to the gradecast itself.
        for sender, payload in inbox.items():
            if (
                isinstance(payload, tuple)
                and len(payload) >= 3
                and payload[0] == "val"
                and payload[1] == self.iteration
            ):
                value = payload[2]
                if value is BOTTOM:
                    continue
                try:
                    hash(value)
                except TypeError:
                    continue
                if self._validate is not None and not self._validate(value):
                    continue
                self._received[sender] = value

    # -- round 2: echo ---------------------------------------------------

    def echo_messages(self) -> Outbox:
        return broadcast(("echo", self.iteration, dict(self._received)), self.n)

    def receive_echoes(self, inbox: Inbox) -> None:
        for sender, payload in inbox.items():
            vector = _clean_vector(payload, "echo", self.iteration, self.n)
            if self._validate is not None:
                vector = {o: v for o, v in vector.items() if self._validate(v)}
            self._echoes[sender] = vector
        # Decide supports: for each origin, support the (unique) value that
        # gathered >= n - t echoes.
        for origin in range(self.n):
            counts: Dict[Any, int] = {}
            for vector in self._echoes.values():
                value = vector.get(origin, BOTTOM)
                if value is not BOTTOM:
                    counts[value] = counts.get(value, 0) + 1
            for value, count in counts.items():
                if count >= self.n - self.t:
                    self._supports[origin] = value
                    break  # at most one value can reach n - t (n > 2t)

    # -- round 3: support --------------------------------------------------

    def support_messages(self) -> Outbox:
        return broadcast(("sup", self.iteration, dict(self._supports)), self.n)

    def receive_supports(self, inbox: Inbox) -> None:
        for sender, payload in inbox.items():
            vector = _clean_vector(payload, "sup", self.iteration, self.n)
            if self._validate is not None:
                vector = {o: v for o, v in vector.items() if self._validate(v)}
            self._support_votes[sender] = vector

    # -- grading -----------------------------------------------------------

    def grade(self, origin: PartyId) -> Graded:
        """The ``(value, confidence)`` this party assigns to *origin*."""
        counts: Dict[Any, int] = {}
        for vector in self._support_votes.values():
            value = vector.get(origin, BOTTOM)
            if value is not BOTTOM:
                counts[value] = counts.get(value, 0) + 1
        if not counts:
            return (BOTTOM, GRADE_NONE)
        best = max(counts.values())
        # Deterministic tie-break; ties can only involve grades of 0 anyway
        # (a value needs an honest supporter to reach t + 1 votes, and at
        # most one value can have honest supporters).
        winner = min(v for v, c in counts.items() if c == best)
        if best >= self.n - self.t:
            return (winner, GRADE_HIGH)
        if best >= self.t + 1:
            return (winner, GRADE_LOW)
        return (BOTTOM, GRADE_NONE)

    def grade_all(self) -> Dict[PartyId, Graded]:
        return {origin: self.grade(origin) for origin in range(self.n)}


class GradecastParty(ProtocolParty):
    """A single gradecast instance as a standalone 3-round protocol.

    Party *sender* distributes ``value``; every party's ``output`` is its
    ``(value, confidence)`` pair.  Used to unit-test the three gradecast
    guarantees in isolation.
    """

    def __init__(
        self,
        pid: PartyId,
        n: int,
        t: int,
        sender: PartyId,
        value: Any = BOTTOM,
    ) -> None:
        super().__init__(pid, n, t)
        check_resilience(n, t)
        if not 0 <= sender < n:
            raise ValueError(f"sender {sender} out of range")
        self.sender = sender
        # Reuse the parallel machinery with a single active origin: only the
        # sender broadcasts a value in round 1.
        own = value if pid == sender else BOTTOM
        self._engine = ParallelGradecast(pid, n, t, iteration=0, own_value=own)

    @property
    def duration(self) -> int:
        return 3

    def messages_for_round(self, round_index: int) -> Outbox:
        if round_index == 0:
            if self.pid == self.sender:
                return self._engine.value_messages()
            return {}
        if round_index == 1:
            return self._engine.echo_messages()
        if round_index == 2:
            return self._engine.support_messages()
        return {}

    def receive_round(self, round_index: int, inbox: Inbox) -> None:
        if round_index == 0:
            self._engine.receive_values(inbox)
        elif round_index == 1:
            self._engine.receive_echoes(inbox)
        elif round_index == 2:
            self._engine.receive_supports(inbox)
            self.output = self._engine.grade(self.sender)
