"""Real-valued AA building blocks: gradecast, RealAA, and round formulas."""

from .gradecast import (
    BOTTOM,
    GRADE_HIGH,
    GRADE_LOW,
    GRADE_NONE,
    GradecastParty,
    ParallelGradecast,
)
from .realaa import IterationRecord, RealAAParty, is_real, trimmed_mean
from .rounds import (
    ROUNDS_PER_ITERATION,
    check_resilience,
    lemma5_factor,
    paths_finder_round_bound,
    realaa_duration,
    realaa_iterations,
    schedule_factor,
    adjusted_schedule_factor,
    worst_burn_factor,
    theorem3_round_bound,
    tree_aa_round_bound,
)

__all__ = [
    "BOTTOM",
    "GRADE_NONE",
    "GRADE_LOW",
    "GRADE_HIGH",
    "GradecastParty",
    "ParallelGradecast",
    "RealAAParty",
    "IterationRecord",
    "is_real",
    "trimmed_mean",
    "ROUNDS_PER_ITERATION",
    "check_resilience",
    "lemma5_factor",
    "schedule_factor",
    "adjusted_schedule_factor",
    "worst_burn_factor",
    "realaa_iterations",
    "realaa_duration",
    "theorem3_round_bound",
    "paths_finder_round_bound",
    "tree_aa_round_bound",
]
