"""Round-complexity formulas from the paper.

Collects, in one place, every quantitative round bound the paper states:

* Lemma 5 (Claim 12 of [7]): after ``R`` iterations RealAA's honest range has
  shrunk by at least ``t^R / (R^R · (n − 2t)^R)`` (:func:`lemma5_factor`);
* Theorem 3: ``RealAA(ε)`` terminates within
  ``⌈7 · log2(D/ε) / log2 log2(D/ε)⌉`` rounds (:func:`theorem3_round_bound`);
* Remark 3: each RealAA iteration takes exactly 3 rounds
  (:data:`ROUNDS_PER_ITERATION`);
* Lemma 4: ``R_PathsFinder = R_RealAA(2·|V(T)|, 1)``
  (:func:`paths_finder_round_bound`);
* Theorem 4: TreeAA terminates within
  ``R_PathsFinder + R_RealAA(D(T), 1)`` rounds (:func:`tree_aa_round_bound`).

The *operational* iteration counts used by the implementation
(:func:`realaa_iterations`) are derived directly from Lemma 5 — the smallest
``R`` whose guaranteed shrink factor brings the publicly known input range
below ``ε``.  They are always at most the Theorem-3 bound for the parameter
ranges the benchmarks sweep, which benchmark T2 verifies explicitly.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Any, Dict, Iterable, List

#: Remark 3 (Theorem 1 of [7]): each RealAA iteration takes three rounds.
ROUNDS_PER_ITERATION = 3


def check_resilience(n: int, t: int) -> None:
    """Require the optimal unauthenticated threshold ``t < n/3``."""
    if n < 1 or t < 0:
        raise ValueError("need n >= 1 and t >= 0")
    if 3 * t >= n:
        raise ValueError(
            f"RealAA requires t < n/3 (got n={n}, t={t}); this is the "
            "optimal threshold for deterministic synchronous AA without "
            "cryptographic assumptions"
        )


def lemma5_factor(n: int, t: int, iterations: int) -> float:
    """The guaranteed range-shrink factor ``t^R / (R^R · (n − 2t)^R)``.

    This is the worst case over all adversary burn schedules: an adversary
    splitting its budget as ``t_1 + … + t_R ≤ t`` achieves a factor of
    ``∏ t_i / (n − 2t)``, maximised (over reals) by the even split
    ``t_i = t/R``.
    """
    check_resilience(n, t)
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    if t == 0:
        return 0.0
    base = t / (iterations * (n - 2 * t))
    return base ** iterations


def schedule_factor(n: int, t: int, schedule: Iterable[int]) -> float:
    """The shrink factor ``∏ t_i / (n − 2t)`` of a concrete burn schedule."""
    check_resilience(n, t)
    schedule = list(schedule)
    if sum(schedule) > t:
        raise ValueError(f"schedule {schedule} exceeds the budget t={t}")
    if any(s < 0 for s in schedule):
        raise ValueError("schedule entries must be non-negative")
    factor = 1.0
    for t_i in schedule:
        factor *= t_i / (n - 2 * t)
    return factor


def adjusted_schedule_factor(n: int, t: int, schedule: Iterable[int]) -> float:
    """The shrink factor of a burn schedule against *this* implementation.

    RealAA here drops detected (BAD) senders from the accepted multiset, so
    after ``B`` parties have burned, an iteration's multiset holds only
    ``≥ n − t - 0`` … in the worst case ``n − B`` values of which ``t`` are
    trimmed per side — a burn then moves the trimmed mean by up to
    ``t_i / (n − 2t − B)`` of the current range rather than Lemma 5's
    idealised ``t_i / (n − 2t)``.  The product of the per-iteration terms is
    the tight operational bound benchmark T3 verifies (measured factors sit
    exactly at or below it); the Lemma-5 closed form remains the right
    *asymptotic* statement, as both denominators are Θ(n) for ``t < n/3``.
    """
    check_resilience(n, t)
    schedule = list(schedule)
    if sum(schedule) > t:
        raise ValueError(f"schedule {schedule} exceeds the budget t={t}")
    if any(s < 0 for s in schedule):
        raise ValueError("schedule entries must be non-negative")
    factor = 1.0
    burned = 0
    for t_i in schedule:
        denominator = n - 2 * t - burned
        if denominator < 1:
            denominator = 1
        factor *= t_i / denominator
        burned += t_i
    return factor


class _BurnFactorTable:
    """Bottom-up burn-schedule DP for one ``(n, t)``, shared across ``R``.

    ``layers[r][b]`` is the best shrink factor an adversary achieves with
    ``r`` iterations left and ``b`` budget remaining, having already burned
    ``t − b`` senders — the budget determines the burn count, so the state
    space is ``(r, b)``, not the ``(r, b, burned)`` of the naive recursion.
    Substituting ``q = b − t_i`` (the budget left *after* the round), the
    step denominator ``n − 2t − burned − t_i`` becomes ``(n − 3t) + q``:

        layers[r][b] = max over q in [r−1, b−1] of
                       min(1, (b − q) / (n − 3t + q)) · layers[r−1][q]

    Each layer is built once and reused by every ``R`` the iteration-count
    search probes; large-``t`` layers are vectorised with NumPy when it is
    importable (the arithmetic is identical operation for operation, so the
    two paths produce bit-equal factors).
    """

    #: Budgets up to this size stay on the dependency-free Python loop.
    NUMPY_THRESHOLD = 256

    def __init__(self, n: int, t: int) -> None:
        check_resilience(n, t)
        self.n = n
        self.t = t
        self.d = n - 3 * t  # >= 1 whenever t < n/3
        # full[1] has a closed form: a single burn is maximised by the
        # whole budget at once (the step shrinks in q), so
        # full[1][b] = min(1, b / d) — the q = 0 term, bit for bit.
        self.full: List[List[float]] = [
            [1.0] * (t + 1),
            [min(1.0, b / self.d) for b in range(t + 1)],
        ]
        self.tops: Dict[int, float] = {1: self.full[1][t]}

    def factor(self, iterations: int) -> float:
        """``worst_burn_factor(n, t, iterations)`` — 0 beyond ``R = t``."""
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if iterations > self.t:
            return 0.0
        if iterations not in self.tops:
            # The top cell of layer R reads the *full* layer R−1, which
            # reads the full layer below it, and so on: the iteration
            # search pays O(t²) only once per full layer, and the single
            # O(t) top row for the R it is probing.
            while len(self.full) < iterations:
                self.full.append(self._layer(len(self.full)))
            self.tops[iterations] = self._row(iterations, self.t)
        return self.tops[iterations]

    def _numpy(self) -> Any:
        if self.t > self.NUMPY_THRESHOLD:
            try:
                import numpy

                return numpy
            except ImportError:  # pragma: no cover - numpy ships in CI
                return None
        return None

    def _layer(self, rounds: int) -> List[float]:
        """The full layer *rounds* (budgets ``0 … t``) from the one below."""
        np = self._numpy()
        if np is None:
            layer = [0.0] * (self.t + 1)
            for b in range(rounds, self.t + 1):
                layer[b] = self._row(rounds, b)
            return layer
        size = self.t + 1
        previous = np.asarray(self.full[rounds - 1], dtype=np.float64)
        q = np.arange(size, dtype=np.float64)
        den = np.arange(self.d, self.d + size, dtype=np.float64)
        buffer = np.empty(size, dtype=np.float64)
        layer = np.zeros(size, dtype=np.float64)
        for b in range(rounds, size):
            row = buffer[:b]
            np.subtract(float(b), q[:b], out=row)
            np.minimum(row, den[:b], out=row)
            np.divide(row, den[:b], out=row)
            np.multiply(row, previous[:b], out=row)
            layer[b] = row.max()
        return [float(value) for value in layer]

    def _row(self, rounds: int, b: int) -> float:
        """``layers[rounds][b]`` from the full layer ``rounds − 1``."""
        previous = self.full[rounds - 1]
        np = self._numpy()
        if np is None:
            top = 0.0
            for q in range(rounds - 1, b):
                step = min(1.0, (b - q) / (self.d + q))
                top = max(top, step * previous[q])
            return top
        if b <= rounds - 1:
            return 0.0
        # min(b − q, d + q) / (d + q) equals min(1, (b − q)/(d + q))
        # exactly: the quotient is the identical IEEE division below the
        # cap, and d/d = 1.0 at or above it.  q < rounds − 1 carries
        # previous[q] == 0.0 and loses the max on its own.
        q = np.arange(b, dtype=np.float64)
        den = np.arange(self.d, self.d + b, dtype=np.float64)
        row = np.subtract(float(b), q)
        np.minimum(row, den, out=row)
        np.divide(row, den, out=row)
        np.multiply(row, np.asarray(previous[:b], dtype=np.float64), out=row)
        return float(row.max())


@lru_cache(maxsize=8)
def _burn_table(n: int, t: int) -> _BurnFactorTable:
    return _BurnFactorTable(n, t)


def worst_burn_factor(n: int, t: int, iterations: int) -> float:
    """The provable worst-case shrink factor after ``R`` iterations.

    Two structural facts pin the adversary down:

    * divergence between honest multisets requires a *fresh* burn — a sender
      graded 1 by some honest party and 0 by another is detected by both and
      ignored afterwards, and a grade-2 value is accepted by everyone
      (graded agreement) — so an iteration with no new burn leaves all
      honest multisets identical and the range collapses to **zero**;
    * an iteration in which ``t_i`` senders burn while ``B`` senders burned
      before moves the trimmed mean by at most
      ``t_i / max(1, n − 2t − B − t_i)`` of the current range (the accepted
      multiset has shrunk by the ``B + t_i`` dropped senders), capped at 1.

    The worst case over R iterations is therefore a maximisation over
    all-positive integer schedules ``t_1 + … + t_R ≤ t`` — computed by the
    shared bottom-up dynamic program of :class:`_BurnFactorTable` — and
    exactly 0 for ``R > t``.
    """
    check_resilience(n, t)
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    if t == 0 or iterations > t:
        return 0.0
    return _burn_table(n, t).factor(iterations)


def realaa_iterations(known_range: float, epsilon: float, n: int, t: int) -> int:
    """The number of iterations RealAA runs: smallest ``R`` with
    ``known_range · worst_burn_factor(n, t, R) ≤ ε`` (so at most ``t + 1``).

    ``known_range`` is the publicly known bound on the honest inputs' spread
    (for PathsFinder: ``|L| − 1``; for TreeAA's second stage: the height of
    the rooted tree).  The count is deterministic and publicly computable,
    as the synchronous model requires.

    The budget uses :func:`worst_burn_factor` — the bound that is provably
    sound for this implementation — rather than Lemma 5's idealised closed
    form, which benchmark T3 shows an adversary can slightly beat here
    (dropping detected senders shrinks the trimmed multiset).  Both are
    ``Θ(log(D/ε) / log log(D/ε))`` in the regime Theorem 3 addresses
    (``t ∈ Θ(n)``, large ``D/ε``).
    """
    check_resilience(n, t)
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if known_range < 0:
        raise ValueError("known_range must be non-negative")
    iterations = 1
    if t == 0:
        return iterations
    table = _burn_table(n, t)
    while known_range * table.factor(iterations) > epsilon:
        iterations += 1
    return iterations


def realaa_duration(known_range: float, epsilon: float, n: int, t: int) -> int:
    """Total RealAA rounds: ``3 ×`` :func:`realaa_iterations` (Remark 3)."""
    return ROUNDS_PER_ITERATION * realaa_iterations(known_range, epsilon, n, t)


def theorem3_round_bound(spread: float, epsilon: float) -> int:
    """Theorem 3's closed-form bound ``⌈7 · log2(D/ε) / log2 log2(D/ε)⌉``.

    Only meaningful when ``D/ε > 4`` (below that, ``log2 log2`` is ≤ 1 and
    the asymptotic formula degenerates); we clamp the denominator at 1,
    matching how such bounds are read in the paper (constants absorb the
    small-``D`` regime, where 3 rounds — one iteration — always suffice).
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if spread <= epsilon:
        return ROUNDS_PER_ITERATION
    ratio = spread / epsilon
    denominator = max(1.0, math.log2(max(2.0, math.log2(ratio))))
    return math.ceil(7 * math.log2(ratio) / denominator)


def paths_finder_round_bound(n_tree_vertices: int) -> int:
    """Lemma 4: ``R_PathsFinder = R_RealAA(2 · |V(T)|, 1)`` (Theorem-3 form)."""
    if n_tree_vertices < 1:
        raise ValueError("a tree has at least one vertex")
    return theorem3_round_bound(2 * n_tree_vertices, 1.0)


def tree_aa_round_bound(n_tree_vertices: int, tree_diameter: int) -> int:
    """Theorem 4: TreeAA terminates within
    ``R_PathsFinder + R_RealAA(D(T), 1)`` rounds."""
    return paths_finder_round_bound(n_tree_vertices) + theorem3_round_bound(
        max(1, tree_diameter), 1.0
    )
