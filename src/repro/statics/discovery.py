"""Deterministic source-module discovery, shared by every dev gate.

Both the protocol-invariant linter (:mod:`repro.statics`) and the docs
gate (``tools/docs_check.py``) need to walk ``src/repro`` and agree —
exactly — on which files exist.  Before this module each tool carried its
own ``os.walk`` loop, and a new package silently skipped by one of them
would never fail a gate.  Factoring the walk here makes "which modules do
the gates see" a single answerable question.

The walk is deterministic (directories and filenames visited in sorted
order), skips ``__pycache__`` and hidden directories, and yields absolute
paths.
"""

from __future__ import annotations

import os
from typing import Iterator, List


def package_root() -> str:
    """The absolute path of the installed/checked-out ``repro`` package."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def source_root() -> str:
    """The directory containing the ``repro`` package (the ``src`` dir)."""
    return os.path.dirname(package_root())


def iter_source_files(root: str) -> Iterator[str]:
    """Yield every ``.py`` file under *root* in deterministic order.

    ``__pycache__`` and dot-directories are skipped; directories and files
    are visited sorted so that two tools walking the same tree always see
    the same sequence.
    """
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            d for d in dirnames if d != "__pycache__" and not d.startswith(".")
        )
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


def list_source_files(root: str) -> List[str]:
    """:func:`iter_source_files` as a list (convenience for tools)."""
    return list(iter_source_files(root))


def repro_packages() -> List[str]:
    """The top-level subpackages of ``repro``, sorted.

    This is the authoritative answer to "which packages exist for the
    gates to cover".  The coverage meta-tests
    (``tests/statics/test_discovery.py``) diff this list against what
    each gate actually walks, so adding a package (as the resilience lab
    did) cannot silently escape protolint, mypy, or the docs gate.
    """
    root = package_root()
    return sorted(
        entry
        for entry in os.listdir(root)
        if os.path.isdir(os.path.join(root, entry))
        and entry != "__pycache__"
        and not entry.startswith(".")
        and os.path.isfile(os.path.join(root, entry, "__init__.py"))
    )


def module_name(path: str, src_root: str) -> str:
    """The dotted module name of *path* relative to *src_root*.

    ``src/repro/core/api.py`` → ``repro.core.api``;
    package ``__init__.py`` files map to the package itself
    (``src/repro/net/__init__.py`` → ``repro.net``).
    """
    relative = os.path.relpath(os.path.abspath(path), os.path.abspath(src_root))
    parts = relative.replace(os.sep, "/").split("/")
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    else:
        parts[-1] = parts[-1][: -len(".py")]
    return ".".join(parts)
