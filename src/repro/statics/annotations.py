"""Parsing of ``# statics: ...`` source annotations.

The concurrency-discipline (PL1xx) and backend-parity (PL2xx) rules are
driven by *declarations in the source itself*, so the code and its
concurrency/parity contract live on the same line and drift together or
not at all.  The grammar is one comment per line, holding one or more
``directive(argument)`` terms::

    self._jobs = {}          # statics: guarded-by(_lock)
    def counts(self):        # statics: holds(_lock)
    class EchoAdversary(Adversary):
        # statics: batch-unsupported(echo traffic has no declarative form)

Recognised directives:

``guarded-by(<lock attr>)``
    On an attribute assignment (``self.x = ...`` in a method, or a
    dataclass field line): every read/write of that attribute must
    happen under ``with <lock>:`` or inside a ``holds`` method (PL101).
``holds(<lock attr>)``
    On a ``def`` line: the method's contract is that callers hold the
    named lock, so guarded accesses inside it are legal (PL101) and
    locks acquired inside it order after the held one (PL102).
``batch-unsupported(<reason>)``
    On a ``class`` header: this concrete Adversary deliberately has no
    batch replay; the inherited ``batch_spec()`` raise is intentional
    (PL201) and the docs support matrix must list it as unsupported
    (PL202).

A ``# statics:`` marker that parses to no recognised directive is a
finding (PL101) — a silently ignored contract is worse than none.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

#: The directives the rules understand.
KNOWN_DIRECTIVES = ("guarded-by", "holds", "batch-unsupported")

_MARKER = re.compile(r"#\s*statics:\s*(.*)$")
_DIRECTIVE = re.compile(r"([a-z][a-z-]*)\s*\(([^()]*)\)")


@dataclass(frozen=True)
class Annotation:
    """One parsed ``directive(argument)`` term and where it was written."""

    directive: str  #: e.g. ``"guarded-by"``
    argument: str  #: the text between the parentheses, stripped
    line: int  #: 1-based source line


def _comment_tokens(lines: Sequence[str]) -> Iterator[Tuple[int, str]]:
    """``(1-based line, comment text)`` for every real comment token.

    Tokenizing (rather than regex-scanning raw lines) keeps ``# statics:``
    mentions inside docstrings and string literals from parsing as
    annotations.  Falls back to a line scan if tokenization fails — the
    sources we lint have already parsed, so that is a corner case.
    """
    source = "\n".join(lines) + "\n"
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenizeError, IndentationError, SyntaxError):
        for index, text in enumerate(lines, start=1):
            if "#" in text:
                yield index, text[text.index("#") :]


def scan_annotations(lines: Sequence[str]) -> Dict[int, List[Annotation]]:
    """Parse every ``# statics:`` comment in *lines*.

    Returns ``{1-based line: [Annotation, ...]}``.  A marker whose tail
    contains an unknown directive (or none at all) yields an annotation
    with directive ``"malformed"`` so PL101 can report it with a line.
    """
    found: Dict[int, List[Annotation]] = {}
    for index, text in _comment_tokens(lines):
        marker = _MARKER.search(text)
        if marker is None:
            continue
        terms: List[Annotation] = []
        for match in _DIRECTIVE.finditer(marker.group(1)):
            name, argument = match.group(1), match.group(2).strip()
            if name in KNOWN_DIRECTIVES:
                terms.append(Annotation(name, argument, index))
            else:
                terms.append(Annotation("malformed", name, index))
        if not terms:
            terms.append(Annotation("malformed", marker.group(1).strip(), index))
        found[index] = terms
    return found


def annotations_in_range(
    table: Dict[int, List[Annotation]], start: int, stop: int
) -> List[Annotation]:
    """Annotations on lines ``start <= line < stop`` (header regions)."""
    collected: List[Annotation] = []
    for line in range(start, stop):
        collected.extend(table.get(line, ()))
    return collected
