"""Findings and the baseline ratchet for the protocol-invariant linter.

A :class:`Finding` is one structured lint result — file, line, rule id,
message.  A *baseline* is a committed JSON file listing findings that are
deliberately tolerated (each with a human justification); the linter
subtracts the baseline from its results, so pre-existing debt can be
ratcheted down without blocking CI, while any *new* finding fails the
gate.

Baseline entries match findings by ``(rule, path, message)`` — not by
line number, so unrelated edits that shift code around do not invalidate
the baseline.  Matching is multiset-style: an entry with ``"count": 2``
absorbs at most two identical findings.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Tuple

#: Version tag of the baseline / ``--json`` schema.
SCHEMA_VERSION = 1


class BaselineFormatError(ValueError):
    """A baseline file did not match the documented schema."""


@dataclass(frozen=True, order=True)
class Finding:
    """One structured lint finding."""

    path: str  #: repo-relative posix path of the offending file
    line: int  #: 1-based line number
    rule: str  #: rule id, e.g. ``"PL001"``
    message: str  #: human-readable description (line-number free)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (the ``--json`` row schema)."""
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }

    def key(self) -> Tuple[str, str, str]:
        """The line-independent identity used for baseline matching."""
        return (self.rule, self.path, self.message)

    def render(self) -> str:
        """The one-line human-readable form."""
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


def load_baseline(path: str) -> Dict[Tuple[str, str, str], int]:
    """Parse a baseline file into ``finding-key -> tolerated count``.

    Raises :class:`BaselineFormatError` on schema violations — a malformed
    baseline must fail the gate loudly, not silently tolerate everything.
    """
    with open(path, encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise BaselineFormatError(f"{path}: not valid JSON: {exc}") from None
    if not isinstance(data, dict) or data.get("version") != SCHEMA_VERSION:
        raise BaselineFormatError(
            f"{path}: expected an object with version={SCHEMA_VERSION}"
        )
    entries = data.get("entries")
    if not isinstance(entries, list):
        raise BaselineFormatError(f"{path}: 'entries' must be a list")
    allowance: Dict[Tuple[str, str, str], int] = {}
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise BaselineFormatError(f"{path}: entry {index} is not an object")
        for field in ("rule", "path", "message", "justification"):
            if not isinstance(entry.get(field), str) or not entry[field].strip():
                raise BaselineFormatError(
                    f"{path}: entry {index} needs a non-empty {field!r} "
                    "(every baselined finding must be justified)"
                )
        count = entry.get("count", 1)
        if not isinstance(count, int) or count < 1:
            raise BaselineFormatError(
                f"{path}: entry {index} has a non-positive count"
            )
        key = (entry["rule"], entry["path"], entry["message"])
        allowance[key] = allowance.get(key, 0) + count
    return allowance


def apply_baseline(
    findings: Iterable[Finding], allowance: Dict[Tuple[str, str, str], int]
) -> Tuple[List[Finding], int]:
    """Subtract baselined findings; returns ``(new_findings, absorbed)``."""
    remaining = dict(allowance)
    fresh: List[Finding] = []
    absorbed = 0
    for finding in sorted(findings):
        key = finding.key()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            absorbed += 1
        else:
            fresh.append(finding)
    return fresh, absorbed


def render_baseline(findings: Iterable[Finding]) -> str:
    """A baseline document tolerating exactly *findings* (as JSON text).

    Justifications are stamped ``"TODO: justify"`` — the committed file is
    expected to be edited by a human before review.
    """
    counts: Dict[Tuple[str, str, str], int] = {}
    for finding in sorted(findings):
        counts[finding.key()] = counts.get(finding.key(), 0) + 1
    entries = [
        {
            "rule": rule,
            "path": path,
            "message": message,
            "count": count,
            "justification": "TODO: justify",
        }
        for (rule, path, message), count in sorted(counts.items())
    ]
    return json.dumps(
        {"version": SCHEMA_VERSION, "entries": entries}, indent=2, sort_keys=False
    ) + "\n"
