"""Findings and the baseline ratchet for the protocol-invariant linter.

A :class:`Finding` is one structured lint result — file, line, rule id,
message.  A *baseline* is a committed JSON file listing findings that are
deliberately tolerated (each with a human justification); the linter
subtracts the baseline from its results, so pre-existing debt can be
ratcheted down without blocking CI, while any *new* finding fails the
gate.

Baseline entries match findings by ``(rule, path, message)`` — not by
line number, so unrelated edits that shift code around do not invalidate
the baseline.  Matching is multiset-style: an entry with ``"count": 2``
absorbs at most two identical findings.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Tuple

#: Version tag of the baseline / ``--json`` schema.
SCHEMA_VERSION = 1

#: The justification ``--write-baseline`` stamps on every entry.  A
#: committed baseline must not still carry it: the whole point of the
#: ratchet is that every tolerated finding has a *human* justification.
PLACEHOLDER_JUSTIFICATION = "TODO: justify"


class BaselineFormatError(ValueError):
    """A baseline file did not match the documented schema."""


class PlaceholderJustificationError(BaselineFormatError):
    """A baseline entry still carries the writer's ``TODO: justify`` stamp.

    The parsed allowance is attached so a caller that deliberately
    tolerates placeholders (``--allow-todo-justify``) can warn and
    continue without re-parsing the file.
    """

    def __init__(self, message: str, allowance: Dict[Tuple[str, str, str], int]):
        super().__init__(message)
        self.allowance = allowance


@dataclass(frozen=True, order=True)
class Finding:
    """One structured lint finding."""

    path: str  #: repo-relative posix path of the offending file
    line: int  #: 1-based line number
    rule: str  #: rule id, e.g. ``"PL001"``
    message: str  #: human-readable description (line-number free)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (the ``--json`` row schema)."""
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }

    def key(self) -> Tuple[str, str, str]:
        """The line-independent identity used for baseline matching."""
        return (self.rule, self.path, self.message)

    def render(self) -> str:
        """The one-line human-readable form."""
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


def load_baseline(path: str) -> Dict[Tuple[str, str, str], int]:
    """Parse a baseline file into ``finding-key -> tolerated count``.

    Raises :class:`BaselineFormatError` on schema violations — a malformed
    baseline must fail the gate loudly, not silently tolerate everything.
    """
    with open(path, encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise BaselineFormatError(f"{path}: not valid JSON: {exc}") from None
    if not isinstance(data, dict) or data.get("version") != SCHEMA_VERSION:
        raise BaselineFormatError(
            f"{path}: expected an object with version={SCHEMA_VERSION}"
        )
    entries = data.get("entries")
    if not isinstance(entries, list):
        raise BaselineFormatError(f"{path}: 'entries' must be a list")
    allowance: Dict[Tuple[str, str, str], int] = {}
    placeholders: List[str] = []
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise BaselineFormatError(f"{path}: entry {index} is not an object")
        for field in ("rule", "path", "message", "justification"):
            if not isinstance(entry.get(field), str) or not entry[field].strip():
                raise BaselineFormatError(
                    f"{path}: entry {index} needs a non-empty {field!r} "
                    "(every baselined finding must be justified)"
                )
        count = entry.get("count", 1)
        if not isinstance(count, int) or count < 1:
            raise BaselineFormatError(
                f"{path}: entry {index} has a non-positive count"
            )
        if entry["justification"].strip() == PLACEHOLDER_JUSTIFICATION:
            placeholders.append(f"{entry['rule']} {entry['path']}")
        key = (entry["rule"], entry["path"], entry["message"])
        allowance[key] = allowance.get(key, 0) + count
    if placeholders:
        plural = "y" if len(placeholders) == 1 else "ies"
        raise PlaceholderJustificationError(
            f"{path}: {len(placeholders)} baseline entr{plural} still "
            f"stamped {PLACEHOLDER_JUSTIFICATION!r} "
            f"({', '.join(placeholders)}); write real justifications, or "
            "pass --allow-todo-justify to tolerate them temporarily",
            allowance,
        )
    return allowance


def apply_baseline(
    findings: Iterable[Finding], allowance: Dict[Tuple[str, str, str], int]
) -> Tuple[List[Finding], int]:
    """Subtract baselined findings; returns ``(new_findings, absorbed)``."""
    remaining = dict(allowance)
    fresh: List[Finding] = []
    absorbed = 0
    for finding in sorted(findings):
        key = finding.key()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            absorbed += 1
        else:
            fresh.append(finding)
    return fresh, absorbed


def render_baseline(findings: Iterable[Finding]) -> str:
    """A baseline document tolerating exactly *findings* (as JSON text).

    Justifications are stamped :data:`PLACEHOLDER_JUSTIFICATION` — the
    committed file must be edited by a human before review: the gate
    refuses a baseline that still carries the stamp (unless the run
    opted into ``--allow-todo-justify``).
    """
    counts: Dict[Tuple[str, str, str], int] = {}
    for finding in sorted(findings):
        counts[finding.key()] = counts.get(finding.key(), 0) + 1
    entries = [
        {
            "rule": rule,
            "path": path,
            "message": message,
            "count": count,
            "justification": PLACEHOLDER_JUSTIFICATION,
        }
        for (rule, path, message), count in sorted(counts.items())
    ]
    return json.dumps(
        {"version": SCHEMA_VERSION, "entries": entries}, indent=2, sort_keys=False
    ) + "\n"
