"""PL004 — observer purity.

Observability hooks (`on_round` observers wired into the synchronous
network) exist to *watch* an execution: record transcripts, check
invariants, export metrics.  The moment a hook mutates simulator state —
rewrites a party's field, drains an inbox, or drives a party's round
methods — the observed run diverges from the unobserved one, and every
recorded trace becomes unreproducible evidence.

This rule inspects every class that defines an ``on_round`` method.  In
each method of such a class it flags:

* assignments / augmented assignments / deletions whose target is rooted
  in a non-``self`` parameter (the simulator state handed to the hook);
* calls to known container mutators (``append``, ``add``, ``update``,
  ``pop``, ``clear``, …) on receivers rooted in a parameter;
* calls to the protocol-driving methods ``receive_round`` /
  ``messages_for_round`` on parameter-rooted objects — an observer must
  not advance the protocol.

Mutating ``self`` (the observer's own records) is fine; that is what the
hooks are for.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..findings import Finding
from . import Rule, root_name

#: Container methods that mutate their receiver in place.
MUTATOR_METHODS = {
    "append", "add", "update", "pop", "popitem", "clear", "remove",
    "discard", "extend", "insert", "setdefault", "sort", "reverse",
}

#: Protocol-driving methods an observer must never call on watched state.
DRIVER_METHODS = {"receive_round", "messages_for_round"}


class ObserverPurityRule(Rule):
    """PL004: ``on_round`` observers read simulator state, never mutate it."""

    rule_id = "PL004"
    title = "observer purity"

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:  # noqa: F821
        if not ctx.module.startswith("repro"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = [
                item
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            ]
            if not any(method.name == "on_round" for method in methods):
                continue
            for method in methods:
                yield from self._check_method(ctx, method)

    def _check_method(
        self,
        ctx: "ModuleContext",  # noqa: F821
        method: ast.AST,
    ) -> Iterator[Finding]:
        args = method.args
        params: Set[str] = {
            arg.arg
            for arg in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            )
        }
        for vararg in (args.vararg, args.kwarg):
            if vararg is not None:
                params.add(vararg.arg)
        params.discard("self")
        if not params:
            return
        for node in ast.walk(method):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    # A bare-Name rebind is a new local, not a mutation;
                    # attribute/subscript targets write through the param.
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        root = root_name(target)
                        if root in params:
                            yield self.finding(
                                ctx,
                                node,
                                f"observer method {method.name!r} writes to "
                                f"simulator state reachable from parameter "
                                f"{root!r}; observers must only read",
                            )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    root = root_name(target)
                    if root in params:
                        yield self.finding(
                            ctx,
                            node,
                            f"observer method {method.name!r} deletes simulator "
                            f"state reachable from parameter {root!r}",
                        )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                root = root_name(node.func.value)
                if root not in params:
                    continue
                if node.func.attr in MUTATOR_METHODS:
                    yield self.finding(
                        ctx,
                        node,
                        f"observer method {method.name!r} calls mutator "
                        f"`.{node.func.attr}(...)` on state reachable from "
                        f"parameter {root!r}; observers must only read",
                    )
                elif node.func.attr in DRIVER_METHODS:
                    yield self.finding(
                        ctx,
                        node,
                        f"observer method {method.name!r} drives the protocol "
                        f"via `.{node.func.attr}(...)` on parameter {root!r}",
                    )
