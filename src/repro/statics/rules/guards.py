"""PL002 — guard discipline.

The simulator ships two exception types for a reason:
``repro.core.errors.ValidityViolationError`` marks a *model* violation
(an input or adversary behaviour outside the paper's assumptions) and
``repro.net.protocol.ProtocolStateError`` marks an *internal* state
machine violation.  A bare ``assert`` is neither: ``python -O`` strips it
wholesale, so a guard written as an assert is a guard that silently
disappears in optimised runs — the exact runs a performance sweep uses.

This rule flags every ``assert`` statement in ``src/repro``.  Guards
should raise one of the two exception types; genuinely impossible
conditions should be rewritten so the type-checker can see them (or, as
a last resort, suppressed inline with a justification).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from . import Rule


class GuardDisciplineRule(Rule):
    """PL002: no bare ``assert`` for model/validity checks."""

    rule_id = "PL002"
    title = "guard discipline"

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:  # noqa: F821
        if not ctx.module.startswith("repro"):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assert):
                detail = ""
                if isinstance(node.msg, ast.Constant) and isinstance(
                    node.msg.value, str
                ):
                    detail = f" ({node.msg.value!r})"
                yield self.finding(
                    ctx,
                    node,
                    "bare `assert` is stripped under `python -O`; raise "
                    "ValidityViolationError (model violation) or "
                    f"ProtocolStateError (internal invariant) instead{detail}",
                )
