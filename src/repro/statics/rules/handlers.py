"""PL003 — handler exhaustiveness.

Messages in this simulator are plain tuples whose head is a short
string tag (``("val", iteration, value)``).  The tag inventory is
declared in :data:`repro.net.messages.MESSAGE_TYPES`; that registry is
the contract between senders and receivers.  This rule checks the
contract statically, per protocol module:

* every tag the module *sends* (a tuple literal with a tag-shaped string
  head) must also be *handled* there (compared against a payload head or
  passed to a payload-parsing helper) — peers run the same code, so a
  sent-but-unhandled tag is a message the protocol mails itself and then
  drops on the floor;
* every tag sent or handled must be declared in ``MESSAGE_TYPES``;
* (cross-module) every declared tag must be handled by at least one
  checked module — a dead declaration means the registry and the code
  have drifted apart.

Tags in :data:`repro.net.messages.HANDLER_EXEMPT_TYPES` (signature
preimages such as ``"ds"``, which ride *inside* other messages) are
exempt from the handler checks.  Adversary modules (``repro.adversary``
package, or modules named like ``adversary``/``attacks``) forge messages
without handling them, so they are checked for declaredness only.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..findings import Finding
from . import Rule, in_packages

#: Packages whose modules must handle every tag they send.
SYMMETRY_PACKAGES: Tuple[str, ...] = (
    "protocols", "baselines", "asynchrony", "authenticated",
)

#: Packages additionally checked for tag declaredness only.
DECLARED_ONLY_PACKAGES: Tuple[str, ...] = ("adversary",)

#: Module basename fragments that mark adversarial (send-only) code.
_ADVERSARY_HINTS = ("adversar", "attack", "chaos", "strategies")

#: The grammar of a message tag: short, lowercase, identifier-like.
TAG_RE = re.compile(r"^[a-z][a-z0-9_]{1,15}$")

#: Variable names conventionally bound to a payload head.
_HEAD_NAMES = {"kind", "tag"}


def extract_message_types(path: str) -> Tuple[Dict[str, str], Set[str]]:
    """Parse ``MESSAGE_TYPES`` / ``HANDLER_EXEMPT_TYPES`` out of *path*.

    Reads the registry straight from the AST of ``repro/net/messages.py``
    so the linter never has to import simulator code.  Raises
    :class:`ValueError` if the registry is missing or not a literal —
    the registry being machine-readable is part of the contract.
    """
    with open(path, encoding="utf-8") as handle:
        tree = ast.parse(handle.read(), filename=path)
    declared: Optional[Dict[str, str]] = None
    exempt: Optional[Set[str]] = None
    for node in tree.body:
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        if not isinstance(target, ast.Name) or value is None:
            continue
        if target.id == "MESSAGE_TYPES":
            if not isinstance(value, ast.Dict):
                raise ValueError(f"{path}: MESSAGE_TYPES must be a dict literal")
            declared = {}
            for key, val in zip(value.keys, value.values):
                if (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and isinstance(val, ast.Constant)
                    and isinstance(val.value, str)
                ):
                    declared[key.value] = val.value
                else:
                    raise ValueError(
                        f"{path}: MESSAGE_TYPES entries must be str: str literals"
                    )
        elif target.id == "HANDLER_EXEMPT_TYPES":
            exempt = set()
            elements: List[ast.expr] = []
            if isinstance(value, ast.Call) and value.args:
                inner = value.args[0]
                if isinstance(inner, (ast.Set, ast.Tuple, ast.List)):
                    elements = list(inner.elts)
            elif isinstance(value, (ast.Set, ast.Tuple, ast.List)):
                elements = list(value.elts)
            for element in elements:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    exempt.add(element.value)
    if declared is None:
        raise ValueError(f"{path}: no MESSAGE_TYPES dict literal found")
    return declared, exempt or set()


def _is_adversary_module(module: str) -> bool:
    basename = module.rsplit(".", 1)[-1]
    return any(hint in basename for hint in _ADVERSARY_HINTS)


def _is_head_expr(node: ast.expr) -> bool:
    """Whether *node* reads a payload head: ``payload[0]`` or ``kind``."""
    if isinstance(node, ast.Subscript):
        index = node.slice
        if isinstance(index, ast.Constant) and index.value == 0:
            return True
        return False
    if isinstance(node, ast.Name):
        return node.id in _HEAD_NAMES
    return False


class HandlerExhaustivenessRule(Rule):
    """PL003: sent tags are handled; sent/handled tags are declared."""

    rule_id = "PL003"
    title = "handler exhaustiveness"

    def __init__(self, config: "LintConfig") -> None:  # noqa: F821
        super().__init__(config)
        self._handled_anywhere: Set[str] = set()
        self._registry_anchor: Optional[Tuple[str, int]] = None

    # -- per-module pass -------------------------------------------------

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:  # noqa: F821
        declared = self.config.declared_tags or {}
        exempt = self.config.handler_exempt_tags or set()
        if ctx.module == "repro.net.messages":
            self._note_registry(ctx)
            return
        symmetric = in_packages(ctx.module, SYMMETRY_PACKAGES) and not (
            _is_adversary_module(ctx.module)
        )
        declared_only = in_packages(
            ctx.module, SYMMETRY_PACKAGES + DECLARED_ONLY_PACKAGES
        )
        if not declared_only:
            return
        sent = self._collect_sent(ctx)
        handled = self._collect_handled(ctx)
        self._handled_anywhere.update(tag for tag, _ in handled)
        for tag, node in sorted(sent, key=lambda item: (item[0], item[1].lineno)):
            if tag not in declared:
                yield self.finding(
                    ctx,
                    node,
                    f"message tag {tag!r} is sent but not declared in "
                    "repro.net.messages.MESSAGE_TYPES",
                )
        for tag, node in sorted(handled, key=lambda item: (item[0], item[1].lineno)):
            if tag not in declared:
                yield self.finding(
                    ctx,
                    node,
                    f"handler references tag {tag!r} which is not declared "
                    "in repro.net.messages.MESSAGE_TYPES",
                )
        if symmetric:
            handled_tags = {tag for tag, _ in handled}
            for tag, node in sorted(
                sent, key=lambda item: (item[0], item[1].lineno)
            ):
                if tag in exempt or tag in handled_tags:
                    continue
                handled_tags.add(tag)  # report each unhandled tag once
                yield self.finding(
                    ctx,
                    node,
                    f"message tag {tag!r} is sent by this module but never "
                    "handled here; peers running this code will drop it",
                )

    # -- cross-module pass -----------------------------------------------

    def finalize(self) -> Iterator[Finding]:
        if self._registry_anchor is None:
            return  # partial run: the registry module was not checked
        declared = self.config.declared_tags or {}
        exempt = self.config.handler_exempt_tags or set()
        rel_path, line = self._registry_anchor
        for tag in sorted(declared):
            if tag in exempt or tag in self._handled_anywhere:
                continue
            yield Finding(
                path=rel_path,
                line=line,
                rule=self.rule_id,
                message=(
                    f"declared message tag {tag!r} is handled by no checked "
                    "module; remove the declaration or add a handler"
                ),
            )

    # -- collection helpers ----------------------------------------------

    def _note_registry(self, ctx: "ModuleContext") -> None:  # noqa: F821
        line = 1
        for node in ctx.tree.body:
            target = None
            if isinstance(node, ast.AnnAssign):
                target = node.target
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
            if isinstance(target, ast.Name) and target.id == "MESSAGE_TYPES":
                line = node.lineno
                break
        self._registry_anchor = (ctx.rel_path, line)

    def _collect_sent(
        self, ctx: "ModuleContext"  # noqa: F821
    ) -> List[Tuple[str, ast.AST]]:
        # Tuples that are membership-test comparators (`x in ("up", "down")`)
        # are option lists, not payloads; skip them.
        comparators: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Compare):
                for comparator in node.comparators:
                    comparators.add(id(comparator))
        sent: List[Tuple[str, ast.AST]] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Tuple) or not node.elts:
                continue
            if id(node) in comparators:
                continue
            # An all-string tuple of length >= 2 is an enum/option tuple
            # (payloads carry data after the tag head).
            if len(node.elts) >= 2 and all(
                isinstance(e, ast.Constant) and isinstance(e.value, str)
                for e in node.elts
            ):
                continue
            head = node.elts[0]
            if (
                isinstance(head, ast.Constant)
                and isinstance(head.value, str)
                and TAG_RE.match(head.value)
            ):
                sent.append((head.value, node))
        return sent

    def _collect_handled(
        self, ctx: "ModuleContext"  # noqa: F821
    ) -> List[Tuple[str, ast.AST]]:
        handled: List[Tuple[str, ast.AST]] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Compare):
                handled.extend(self._handled_in_compare(node))
            elif isinstance(node, ast.Call):
                handled.extend(self._handled_in_call(node))
        return handled

    def _handled_in_compare(self, node: ast.Compare) -> List[Tuple[str, ast.AST]]:
        out: List[Tuple[str, ast.AST]] = []
        operands = [node.left] + list(node.comparators)
        has_head = any(_is_head_expr(op) for op in operands)
        if not has_head:
            return out
        for op, comparator in zip(node.ops, node.comparators):
            if isinstance(op, (ast.Eq, ast.NotEq)):
                for candidate in (node.left, comparator):
                    if (
                        isinstance(candidate, ast.Constant)
                        and isinstance(candidate.value, str)
                        and TAG_RE.match(candidate.value)
                    ):
                        out.append((candidate.value, node))
            elif isinstance(op, (ast.In, ast.NotIn)) and isinstance(
                comparator, (ast.Tuple, ast.List, ast.Set)
            ):
                for element in comparator.elts:
                    if (
                        isinstance(element, ast.Constant)
                        and isinstance(element.value, str)
                        and TAG_RE.match(element.value)
                    ):
                        out.append((element.value, node))
        return out

    def _handled_in_call(self, node: ast.Call) -> List[Tuple[str, ast.AST]]:
        """Payload-parsing helper calls: ``_clean_vector(payload, "echo", ...)``."""
        takes_payload = any(
            isinstance(arg, ast.Name) and arg.id == "payload" for arg in node.args
        )
        if not takes_payload:
            return []
        out: List[Tuple[str, ast.AST]] = []
        for arg in node.args:
            if (
                isinstance(arg, ast.Constant)
                and isinstance(arg.value, str)
                and TAG_RE.match(arg.value)
            ):
                out.append((arg.value, node))
        return out
