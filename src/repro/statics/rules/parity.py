"""PL201–PL202 — backend parity between adversaries and the batch engine.

The differential conformance suite is the project's core oracle: every
scenario must either run identically on the reference and batch backends
or refuse loudly with ``UnsupportedBackendError``.  The refusal side of
that contract is pure convention — a concrete ``Adversary`` subclass
that forgets ``batch_spec()`` silently inherits the base raise, and the
docs support matrix drifts with nobody noticing.  These rules make both
declarations checkable:

========  ==============================================================
PL201     every concrete ``Adversary`` subclass either overrides
          ``batch_spec()`` with a real spec, or carries a
          ``# statics: batch-unsupported(<reason>)`` class annotation
          that matches an actual ``UnsupportedBackendError`` raise
PL202     the adversary support matrix in ``docs/API.md`` (between the
          ``<!-- statics: adversary-batch-matrix -->`` marker and the
          end of its table) agrees with the declared support set
========  ==============================================================

Both rules hang off the cross-module :class:`~repro.statics.model.ProgramModel`:
the hierarchy below ``repro.adversary.base.Adversary`` spans
``repro.adversary`` *and* ``repro.authenticated``, so per-module
analysis cannot see it.  PL202's absence checks (missing or stale rows)
only fire on full-tree runs — a subtree lint cannot tell "class not in
the model" from "class not linted".
"""

from __future__ import annotations

import ast
import os
import re
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from ..annotations import Annotation
from ..findings import Finding
from ..model import ClassInfo, ProgramModel
from . import Rule

if TYPE_CHECKING:  # circular at runtime (engine imports rules)
    from ..engine import ModuleContext

#: The hierarchy root every PL2xx check walks from.
ADVERSARY_ROOT = "repro.adversary.base.Adversary"

#: The method a concrete adversary must implement to be instantiable.
REQUIRED_METHOD = "byzantine_messages"

#: The marker preceding the support matrix in ``docs/API.md``.
MATRIX_MARKER = "<!-- statics: adversary-batch-matrix -->"

_MATRIX_ROW = re.compile(r"^\|\s*`(\w+)`\s*\|\s*(✅|❌)\s*([^|]*)\|")


def _unsupported_annotation(
    info: ClassInfo, model: ProgramModel
) -> Optional[Annotation]:
    """The class's own ``batch-unsupported`` header annotation, if any."""
    for annotation in info.header_annotations(model):
        if annotation.directive == "batch-unsupported":
            return annotation
    return None


def _is_super_delegation(node: ast.expr) -> bool:
    """``super().batch_spec(...)`` — the exact-type-guard escape hatch."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "batch_spec"
        and isinstance(node.func.value, ast.Call)
        and isinstance(node.func.value.func, ast.Name)
        and node.func.value.func.id == "super"
    )


def _returns_spec(fn: ast.FunctionDef) -> bool:
    """Whether *fn* has a return that produces an actual batch spec.

    ``return super().batch_spec()`` (the guard path of the exact-type
    idiom) and bare/None returns do not count.
    """
    for node in ast.walk(fn):
        if isinstance(node, ast.Return) and node.value is not None:
            if _is_super_delegation(node.value):
                continue
            if isinstance(node.value, ast.Constant) and node.value.value is None:
                continue
            return True
    return False


def _raises_unsupported(fn: ast.FunctionDef) -> bool:
    """Whether *fn* raises ``UnsupportedBackendError`` or delegates to super."""
    for node in ast.walk(fn):
        if isinstance(node, ast.Raise) and node.exc is not None:
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            name = exc.attr if isinstance(exc, ast.Attribute) else (
                exc.id if isinstance(exc, ast.Name) else None
            )
            if name == "UnsupportedBackendError":
                return True
        if isinstance(node, ast.expr) and _is_super_delegation(node):
            return True
    return False


def _is_supported(info: ClassInfo) -> bool:
    """A class supports the batch backend iff its *own* ``batch_spec``
    returns a spec — inherited definitions use the exact-type guard and
    raise for subclasses."""
    own = info.methods.get("batch_spec")
    return own is not None and _returns_spec(own)


def support_matrix(
    model: ProgramModel,
) -> Dict[str, Tuple[bool, Optional[str]]]:
    """``{class name: (supported, unsupported-reason)}`` for every
    concrete adversary in the model.

    This is the declared support set: PL201 checks the declarations are
    coherent, PL202 checks ``docs/API.md`` agrees with this table, and
    the docs example blocks assert against it.
    """
    matrix: Dict[str, Tuple[bool, Optional[str]]] = {}
    if ADVERSARY_ROOT not in model.classes:
        return matrix
    for info in model.subclasses_of(ADVERSARY_ROOT):
        if not model.is_concrete(info, REQUIRED_METHOD):
            continue
        annotation = _unsupported_annotation(info, model)
        reason = annotation.argument if annotation is not None else None
        matrix[info.name] = (_is_supported(info), reason)
    return matrix


class BatchParityRule(Rule):
    """PL201: adversary batch support is declared, one way or the other."""

    rule_id = "PL201"
    title = "adversary batch parity"

    def __init__(self, config: "LintConfig") -> None:  # noqa: F821
        super().__init__(config)
        self._model: Optional[ProgramModel] = None

    def begin(self, model: ProgramModel) -> None:
        """Keep the model; checks run per-module so suppressions apply."""
        self._model = model if ADVERSARY_ROOT in model.classes else None

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:  # noqa: F821
        model = self._model
        if model is None:
            return
        for info in model.subclasses_of(ADVERSARY_ROOT):
            if info.module != ctx.module:
                continue
            if not model.is_concrete(info, REQUIRED_METHOD):
                continue
            yield from self._check_class(ctx, info, model)

    def _check_class(
        self, ctx: "ModuleContext", info: ClassInfo, model: ProgramModel  # noqa: F821
    ) -> Iterator[Finding]:
        annotation = _unsupported_annotation(info, model)
        supported = _is_supported(info)
        if supported:
            if annotation is not None:
                yield self.finding(
                    ctx,
                    info.node,
                    f"`{info.name}` is declared batch-unsupported but its "
                    "batch_spec() returns a spec; drop the annotation or the "
                    "override",
                )
            return
        if annotation is None:
            yield self.finding(
                ctx,
                info.node,
                f"concrete adversary `{info.name}` neither overrides "
                "batch_spec() nor declares "
                "`# statics: batch-unsupported(<reason>)`; the batch backend "
                "would raise with a generic message nobody signed off on",
            )
            return
        if not annotation.argument:
            yield self.finding(
                ctx,
                info.node,
                f"`{info.name}` declares batch-unsupported without a reason; "
                "say why the batch engine cannot replay it",
            )
        resolved = model.find_method(info, "batch_spec")
        if resolved is None or not _raises_unsupported(resolved[1]):
            yield self.finding(
                ctx,
                info.node,
                f"`{info.name}` is declared batch-unsupported but its "
                "effective batch_spec() never raises UnsupportedBackendError; "
                "the declaration does not match the code",
            )


def parse_support_table(
    lines: List[str],
) -> Tuple[Optional[int], Dict[str, Tuple[bool, int]]]:
    """Parse the marker + table out of ``docs/API.md`` lines.

    Returns ``(marker line or None, {class name: (supported, row line)})``
    with 1-based lines.
    """
    marker_line: Optional[int] = None
    rows: Dict[str, Tuple[bool, int]] = {}
    in_table = False
    for index, text in enumerate(lines, start=1):
        if MATRIX_MARKER in text:
            marker_line = index
            in_table = True
            continue
        if not in_table:
            continue
        match = _MATRIX_ROW.match(text.strip())
        if match is not None:
            rows[match.group(1)] = (match.group(2) == "✅", index)
        elif rows and not text.strip().startswith("|"):
            break
    return marker_line, rows


class DocsParityRule(Rule):
    """PL202: the ``docs/API.md`` support matrix matches the declarations."""

    rule_id = "PL202"
    title = "docs support-matrix parity"

    def __init__(self, config: "LintConfig") -> None:  # noqa: F821
        super().__init__(config)
        self._model: Optional[ProgramModel] = None

    def begin(self, model: ProgramModel) -> None:
        """Keep the model for the finalize pass."""
        self._model = model if ADVERSARY_ROOT in model.classes else None

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:  # noqa: F821
        return iter(())

    def finalize(self) -> Iterator[Finding]:
        """Diff the declared support set against the documented matrix."""
        model = self._model
        doc_path = getattr(self.config, "api_doc_path", None)
        if model is None or not doc_path or not os.path.exists(doc_path):
            return
        declared = support_matrix(model)
        with open(doc_path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        marker_line, rows = parse_support_table(lines)
        rel = _doc_rel_path(doc_path)
        full_tree = bool(getattr(self.config, "full_tree", False))
        if marker_line is None:
            if full_tree and declared:
                yield Finding(
                    path=rel,
                    line=1,
                    rule=self.rule_id,
                    message=(
                        f"no `{MATRIX_MARKER}` support matrix found; document "
                        "the adversary batch support set"
                    ),
                )
            return
        for name in sorted(declared):
            supported, _reason = declared[name]
            if name not in rows:
                if full_tree:
                    yield Finding(
                        path=rel,
                        line=marker_line,
                        rule=self.rule_id,
                        message=(
                            f"adversary `{name}` is missing from the batch "
                            "support matrix"
                        ),
                    )
                continue
            documented, row_line = rows[name]
            if documented != supported:
                actual = "supported" if supported else "unsupported"
                yield Finding(
                    path=rel,
                    line=row_line,
                    rule=self.rule_id,
                    message=(
                        f"support matrix says `{name}` is "
                        f"{'supported' if documented else 'unsupported'} but "
                        f"the declarations say {actual}"
                    ),
                )
        if full_tree:
            for name in sorted(set(rows) - set(declared)):
                yield Finding(
                    path=rel,
                    line=rows[name][1],
                    rule=self.rule_id,
                    message=(
                        f"support matrix row `{name}` matches no concrete "
                        "adversary class; remove or rename the row"
                    ),
                )


def _doc_rel_path(path: str) -> str:
    """A stable repo-relative path for findings in a docs file."""
    parts = os.path.abspath(path).replace(os.sep, "/").split("/")
    if "docs" in parts:
        return "/".join(parts[parts.index("docs") :])
    return parts[-1]
