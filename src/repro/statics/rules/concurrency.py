"""PL101–PL104 — concurrency discipline for the threaded service.

``repro.service`` is a long-running multi-threaded system: HTTP handler
threads (``ThreadingHTTPServer``) read job state while the worker thread
writes it, with one ``JobStore`` lock in between.  A forgotten lock is
invisible to the test suite (CPython's GIL hides most races until the
worst moment), so the discipline is enforced statically, driven by
``# statics:`` annotations (:mod:`repro.statics.annotations`):

========  ==============================================================
PL101     guarded-state discipline — mutable state shared across threads
          must be declared ``# statics: guarded-by(<lock>)``, and every
          read/write of a declared attribute must sit inside a
          ``with <lock>:`` block or a method marked
          ``# statics: holds(<lock>)``
PL102     lock ordering — the may-acquire graph (built across modules,
          ``holds`` edges included) must be acyclic
PL103     no blocking under lock — ``join()``/``wait()``/socket/HTTP/
          subprocess/pool-submit calls are banned inside ``with lock:``
          bodies
PL104     thread lifecycle — every ``threading.Thread(...)`` constructed
          must be ``daemon=True`` or joined on a shutdown path
          (``close``/``shutdown``/``stop``/``__exit__``)
========  ==============================================================

Scope: :data:`CONCURRENCY_PACKAGES` (``repro.service``) plus
:data:`CONCURRENCY_MODULES` (``repro.analysis.parallel``).  The analysis
is lexical and name-based (attribute *names*, not objects): precise
enough for one service codebase with a handful of locks, cheap enough to
run on every commit, and honest about its limits — a ``holds`` method's
*callers* are trusted, not checked.
"""

from __future__ import annotations

import ast
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from ..annotations import Annotation, annotations_in_range
from ..findings import Finding
from ..model import ProgramModel
from . import Rule, in_packages, root_name

if TYPE_CHECKING:  # circular at runtime (engine imports rules)
    from ..engine import ModuleContext

#: ``repro.<pkg>`` packages under concurrency discipline.
CONCURRENCY_PACKAGES: Tuple[str, ...] = ("service",)

#: Individual modules under concurrency discipline.
CONCURRENCY_MODULES: Tuple[str, ...] = ("repro.analysis.parallel",)

#: Constructor names that make an attribute a lock.
LOCK_CONSTRUCTORS = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}

#: Method names that count as a shutdown path for PL104.
SHUTDOWN_METHODS = {"close", "shutdown", "stop", "join", "__exit__", "__del__"}

#: Call names that block the calling thread (PL103).
BLOCKING_NAMES = {
    "wait",
    "acquire",
    "urlopen",
    "recv",
    "accept",
    "connect",
    "sendall",
    "submit",
    "result",
    "sleep",
    "check_call",
    "check_output",
    "Popen",
}

#: Methods whose bodies run before the object is shared between threads.
CONSTRUCTION_METHODS = {"__init__", "__post_init__"}


def in_concurrency_scope(module: str) -> bool:
    """Whether *module* is linted by the PL1xx family."""
    if in_packages(module, CONCURRENCY_PACKAGES):
        return True
    return module in CONCURRENCY_MODULES or any(
        module.startswith(prefix + ".") for prefix in CONCURRENCY_MODULES
    )


def _terminal_name(node: ast.expr) -> Optional[str]:
    """The last component of a Name/Attribute/Call chain."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class GuardedDeclaration:
    """One ``guarded-by`` declaration: which attribute, which lock, where."""

    def __init__(
        self, owner: str, attribute: str, lock: str, module: str, line: int
    ) -> None:
        self.owner = owner  #: declaring class qualname
        self.attribute = attribute
        self.lock = lock
        self.module = module
        self.line = line


def _assigned_attributes(node: ast.stmt) -> List[str]:
    """Attribute names assigned by one statement (fields and ``self.x``)."""
    targets: List[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        targets = [node.target]
    names: List[str] = []
    for target in targets:
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, ast.Attribute):
            names.append(target.attr)
        elif isinstance(target, ast.Tuple):
            for element in target.elts:
                if isinstance(element, ast.Attribute):
                    names.append(element.attr)
                elif isinstance(element, ast.Name):
                    names.append(element.id)
    return names


def guarded_declarations(model: ProgramModel) -> List[GuardedDeclaration]:
    """Every ``guarded-by`` declaration in the concurrency scope."""
    declarations: List[GuardedDeclaration] = []
    for qualname in sorted(model.classes):
        info = model.classes[qualname]
        if not in_concurrency_scope(info.module):
            continue
        table = model.annotations(info.module)
        for stmt in ast.walk(info.node):
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                continue
            for annotation in table.get(stmt.lineno, ()):
                if annotation.directive != "guarded-by" or not annotation.argument:
                    continue
                for attr in _assigned_attributes(stmt):
                    declarations.append(
                        GuardedDeclaration(
                            owner=qualname,
                            attribute=attr,
                            lock=annotation.argument,
                            module=info.module,
                            line=stmt.lineno,
                        )
                    )
    return declarations


def _declared_locks(model: ProgramModel) -> Set[str]:
    """Every lock name referenced by ``guarded-by``/``holds`` annotations."""
    locks: Set[str] = set()
    for ctx in model.contexts:
        if not in_concurrency_scope(ctx.module):
            continue
        for annotations in model.annotations(ctx.module).values():
            for annotation in annotations:
                if annotation.directive in ("guarded-by", "holds"):
                    if annotation.argument:
                        locks.add(annotation.argument)
    return locks


def _lock_attributes(model: ProgramModel) -> Set[str]:
    """Attribute names assigned a ``threading.Lock()``-style constructor."""
    names: Set[str] = set()
    for ctx in model.contexts:
        if not in_concurrency_scope(ctx.module):
            continue
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                ctor = _terminal_name(node.value)
                if ctor in LOCK_CONSTRUCTORS:
                    names.update(_assigned_attributes(node))
    return names


def make_lock_predicate(model: ProgramModel) -> Callable[[str], bool]:
    """``is_lock(name)`` for with-statement acquisition detection."""
    known = _declared_locks(model) | _lock_attributes(model)

    def is_lock(name: str) -> bool:
        return name in known or "lock" in name.lower()

    return is_lock


class _LockAwareVisitor(ast.NodeVisitor):
    """Shared traversal that tracks which locks are lexically held.

    ``with <lock>:`` items and ``# statics: holds(<lock>)`` method
    headers push onto :attr:`held`; subclasses hook :meth:`on_acquire`
    and the standard ``visit_*`` methods.
    """

    def __init__(
        self,
        ann_table: Dict[int, List[Annotation]],
        is_lock: Callable[[str], bool],
    ) -> None:
        self.ann_table = ann_table
        self.is_lock = is_lock
        self.held: List[str] = []

    def _header_annotations(self, node: ast.AST) -> List[Annotation]:
        body = getattr(node, "body", None)
        stop = body[0].lineno if body else node.lineno + 1  # type: ignore[attr-defined]
        return annotations_in_range(self.ann_table, node.lineno, stop)  # type: ignore[attr-defined]

    def on_acquire(self, lock: str, node: ast.expr) -> None:
        """Called when a ``with <lock>:`` acquisition is entered."""

    def enter_function(self, node: ast.AST) -> None:
        """Called before a function body is traversed."""

    def exit_function(self, node: ast.AST) -> None:
        """Called after a function body was traversed."""

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Track ``holds`` headers around the function body."""
        holds = [
            annotation.argument
            for annotation in self._header_annotations(node)
            if annotation.directive == "holds" and annotation.argument
        ]
        before = len(self.held)
        self.held.extend(holds)
        self.enter_function(node)
        self.generic_visit(node)
        self.exit_function(node)
        del self.held[before:]

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        """Async functions track ``holds`` exactly like plain ones."""
        self.visit_FunctionDef(node)  # type: ignore[arg-type]

    def _visit_with(self, node: ast.With) -> None:
        acquired: List[str] = []
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
            name = _terminal_name(item.context_expr)
            if name is not None and self.is_lock(name):
                self.on_acquire(name, item.context_expr)
                acquired.append(name)
        self.held.extend(acquired)
        for stmt in node.body:
            self.visit(stmt)
        if acquired:
            del self.held[-len(acquired) :]

    visit_With = _visit_with
    visit_AsyncWith = _visit_with


class _GuardedAccessVisitor(_LockAwareVisitor):
    """PL101 component: guarded attributes accessed only under their lock."""

    def __init__(
        self,
        rule: "GuardedStateRule",
        ctx: "ModuleContext",
        guarded: Dict[str, Set[str]],
        ann_table: Dict[int, List[Annotation]],
        is_lock: Callable[[str], bool],
        imported_roots: Set[str],
    ) -> None:
        super().__init__(ann_table, is_lock)
        self.rule = rule
        self.ctx = ctx
        self.guarded = guarded
        self.imported_roots = imported_roots
        self.findings: List[Finding] = []
        self._construction_depth = 0

    def enter_function(self, node: ast.AST) -> None:
        if getattr(node, "name", "") in CONSTRUCTION_METHODS:
            self._construction_depth += 1

    def exit_function(self, node: ast.AST) -> None:
        if getattr(node, "name", "") in CONSTRUCTION_METHODS:
            self._construction_depth -= 1

    def visit_Attribute(self, node: ast.Attribute) -> None:
        """Check one attribute access against the guarded table."""
        locks = self.guarded.get(node.attr)
        if (
            locks is not None
            and self._construction_depth == 0
            and not any(lock in self.held for lock in locks)
            and not self._is_declaration_line(node.lineno)
            # A chain rooted at an imported name (``urllib.error``) is a
            # module/class attribute, not shared instance state.
            and root_name(node) not in self.imported_roots
        ):
            wanted = "/".join(sorted(locks))
            self.findings.append(
                self.rule.finding(
                    self.ctx,
                    node,
                    f"access to guarded attribute `{node.attr}` outside "
                    f"`with <{wanted}>:`; hold the lock or mark the method "
                    f"`# statics: holds({wanted})`",
                )
            )
        self.generic_visit(node)

    def _is_declaration_line(self, line: int) -> bool:
        return any(
            annotation.directive == "guarded-by"
            for annotation in self.ann_table.get(line, ())
        )


class GuardedStateRule(Rule):
    """PL101: shared mutable state is declared and accessed under its lock."""

    rule_id = "PL101"
    title = "guarded-state discipline"

    def __init__(self, config: "LintConfig") -> None:  # noqa: F821
        super().__init__(config)
        self._guarded: Dict[str, Set[str]] = {}
        self._is_lock: Callable[[str], bool] = lambda name: "lock" in name.lower()
        self._model: Optional[ProgramModel] = None

    def begin(self, model: ProgramModel) -> None:
        """Build the cross-module guarded table before per-module checks."""
        self._model = model
        self._guarded = {}
        for declaration in guarded_declarations(model):
            self._guarded.setdefault(declaration.attribute, set()).add(
                declaration.lock
            )
        self._is_lock = make_lock_predicate(model)

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:  # noqa: F821
        if ctx.module.startswith("repro"):
            yield from self._check_malformed(ctx)
        if not in_concurrency_scope(ctx.module):
            return
        yield from self._check_undeclared_writes(ctx)
        visitor = _GuardedAccessVisitor(
            self,
            ctx,
            self._guarded,
            self._annotations(ctx),
            self._is_lock,
            _imported_roots(ctx.tree),
        )
        visitor.visit(ctx.tree)
        yield from visitor.findings

    # -- malformed annotations -----------------------------------------

    def _annotations(self, ctx: "ModuleContext") -> Dict[int, List[Annotation]]:  # noqa: F821
        if self._model is not None and ctx.module in self._model.by_module:
            return self._model.annotations(ctx.module)
        from ..annotations import scan_annotations

        return scan_annotations(ctx.lines)

    def _check_malformed(self, ctx: "ModuleContext") -> Iterator[Finding]:  # noqa: F821
        for line, annotations in sorted(self._annotations(ctx).items()):
            for annotation in annotations:
                if annotation.directive == "malformed":
                    yield Finding(
                        path=ctx.rel_path,
                        line=line,
                        rule=self.rule_id,
                        message=(
                            f"malformed `# statics:` annotation "
                            f"({annotation.argument!r}); expected "
                            "guarded-by(<lock>), holds(<lock>) or "
                            "batch-unsupported(<reason>)"
                        ),
                    )

    # -- undeclared shared writes ----------------------------------------

    def _check_undeclared_writes(
        self, ctx: "ModuleContext"  # noqa: F821
    ) -> Iterator[Finding]:
        table = self._annotations(ctx)
        for classdef in ctx.tree.body:
            if not isinstance(classdef, ast.ClassDef):
                continue
            if not self._is_concurrent_class(classdef):
                continue
            for method in classdef.body:
                if not isinstance(
                    method, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if method.name in CONSTRUCTION_METHODS:
                    continue
                yield from self._scan_method_writes(ctx, classdef, method, table)

    def _scan_method_writes(
        self,
        ctx: "ModuleContext",  # noqa: F821
        classdef: ast.ClassDef,
        method: ast.AST,
        table: Dict[int, List[Annotation]],
    ) -> Iterator[Finding]:
        for stmt in ast.walk(method):
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                continue
            if any(
                annotation.directive == "guarded-by"
                for annotation in table.get(stmt.lineno, ())
            ):
                continue
            for target in _self_attribute_targets(stmt):
                if target in self._guarded or self._is_lock(target):
                    continue
                yield self.finding(
                    ctx,
                    stmt,
                    f"`self.{target}` is written outside __init__ in "
                    f"concurrent class `{classdef.name}` without a "
                    "`# statics: guarded-by(<lock>)` declaration",
                )

    def _is_concurrent_class(self, classdef: ast.ClassDef) -> bool:
        for base in classdef.bases:
            name = _terminal_name(base) or ""
            if "Thread" in name or name.endswith(("RequestHandler", "Server")):
                return True
        for node in ast.walk(classdef):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                if _terminal_name(node.value) in LOCK_CONSTRUCTORS:
                    return True
        return False


def _imported_roots(tree: ast.Module) -> Set[str]:
    """Local names bound by imports anywhere in *tree*."""
    roots: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                roots.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                roots.add(alias.asname or alias.name)
    return roots


def _self_attribute_targets(stmt: ast.stmt) -> List[str]:
    targets: List[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        targets = [stmt.target]
    names: List[str] = []
    for target in targets:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            names.append(target.attr)
    return names


class _AcquisitionVisitor(_LockAwareVisitor):
    """PL102 helper: record may-acquire edges while traversing."""

    def __init__(
        self,
        ctx: "ModuleContext",  # noqa: F821
        ann_table: Dict[int, List[Annotation]],
        is_lock: Callable[[str], bool],
        edges: Dict[Tuple[str, str], Tuple[str, int]],
    ) -> None:
        super().__init__(ann_table, is_lock)
        self.ctx = ctx
        self.edges = edges

    def on_acquire(self, lock: str, node: ast.expr) -> None:
        for outer in self.held:
            if outer != lock:
                self.edges.setdefault(
                    (outer, lock), (self.ctx.rel_path, node.lineno)
                )


class LockOrderingRule(Rule):
    """PL102: the cross-module may-acquire graph has no cycles."""

    rule_id = "PL102"
    title = "lock ordering"

    def __init__(self, config: "LintConfig") -> None:  # noqa: F821
        super().__init__(config)
        self._edges: Dict[Tuple[str, str], Tuple[str, int]] = {}
        self._model: Optional[ProgramModel] = None

    def begin(self, model: ProgramModel) -> None:
        """Collect acquisition edges from every in-scope module."""
        self._model = model
        self._edges = {}
        is_lock = make_lock_predicate(model)
        for ctx in model.contexts:
            if not in_concurrency_scope(ctx.module):
                continue
            visitor = _AcquisitionVisitor(
                ctx, model.annotations(ctx.module), is_lock, self._edges
            )
            visitor.visit(ctx.tree)

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:  # noqa: F821
        return iter(())

    def finalize(self) -> Iterator[Finding]:
        """Report one finding per distinct acquisition cycle."""
        adjacency: Dict[str, List[str]] = {}
        for outer, inner in self._edges:
            adjacency.setdefault(outer, []).append(inner)
        reported: Set[frozenset] = set()
        for start in sorted(adjacency):
            cycle = self._find_cycle(start, adjacency)
            if cycle is None or frozenset(cycle) in reported:
                continue
            reported.add(frozenset(cycle))
            path, line = self._edges[(cycle[0], cycle[1])]
            chain = " -> ".join(cycle + [cycle[0]])
            yield Finding(
                path=path,
                line=line,
                rule=self.rule_id,
                message=(
                    f"lock-ordering cycle {chain}: two threads taking these "
                    "locks in opposite orders can deadlock; pick one global "
                    "order"
                ),
            )

    @staticmethod
    def _find_cycle(
        start: str, adjacency: Dict[str, List[str]]
    ) -> Optional[List[str]]:
        stack: List[str] = []
        on_stack: Set[str] = set()
        visited: Set[str] = set()

        def walk(node: str) -> Optional[List[str]]:
            stack.append(node)
            on_stack.add(node)
            for succ in sorted(adjacency.get(node, ())):
                if succ in on_stack:
                    return stack[stack.index(succ) :]
                if succ not in visited:
                    found = walk(succ)
                    if found is not None:
                        return found
            on_stack.discard(node)
            visited.add(node)
            stack.pop()
            return None

        return walk(start)


class _BlockingCallVisitor(_LockAwareVisitor):
    """PL103 helper: flag blocking calls while any lock is held."""

    def __init__(
        self,
        rule: "NoBlockingUnderLockRule",
        ctx: "ModuleContext",  # noqa: F821
        ann_table: Dict[int, List[Annotation]],
        is_lock: Callable[[str], bool],
    ) -> None:
        super().__init__(ann_table, is_lock)
        self.rule = rule
        self.ctx = ctx
        self.findings: List[Finding] = []

    def visit_Call(self, node: ast.Call) -> None:
        """Flag blocking calls made while a lock is lexically held."""
        if self.held:
            reason = _blocking_call_name(node)
            if reason is not None:
                held = "/".join(sorted(set(self.held)))
                self.findings.append(
                    self.rule.finding(
                        self.ctx,
                        node,
                        f"blocking call `{reason}` while holding `{held}`; "
                        "move the blocking work outside the `with` block "
                        "(snapshot under the lock, block without it)",
                    )
                )
        self.generic_visit(node)


def _blocking_call_name(node: ast.Call) -> Optional[str]:
    name = _terminal_name(node.func)
    if name is None:
        return None
    if name == "join" and not node.args:
        # join() with a positional argument is almost always
        # str.join/os.path.join; the thread/process form takes at most a
        # timeout keyword.
        return "join()"
    if name in BLOCKING_NAMES:
        return f"{name}()"
    if root_name(node.func) == "subprocess":
        return f"subprocess.{name}()"
    return None


class NoBlockingUnderLockRule(Rule):
    """PL103: nothing that blocks the thread runs inside a lock body."""

    rule_id = "PL103"
    title = "no blocking under lock"

    def __init__(self, config: "LintConfig") -> None:  # noqa: F821
        super().__init__(config)
        self._model: Optional[ProgramModel] = None
        self._is_lock: Callable[[str], bool] = lambda name: "lock" in name.lower()

    def begin(self, model: ProgramModel) -> None:
        """Remember the model's lock predicate for the per-module pass."""
        self._model = model
        self._is_lock = make_lock_predicate(model)

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:  # noqa: F821
        if not in_concurrency_scope(ctx.module):
            return
        if self._model is not None and ctx.module in self._model.by_module:
            table = self._model.annotations(ctx.module)
        else:
            from ..annotations import scan_annotations

            table = scan_annotations(ctx.lines)
        visitor = _BlockingCallVisitor(self, ctx, table, self._is_lock)
        visitor.visit(ctx.tree)
        yield from visitor.findings


class ThreadLifecycleRule(Rule):
    """PL104: every constructed thread is daemonic or joined on shutdown."""

    rule_id = "PL104"
    title = "thread lifecycle"

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:  # noqa: F821
        if not in_concurrency_scope(ctx.module):
            return
        for scope in self._thread_scopes(ctx.tree):
            yield from self._check_scope(ctx, scope)

    @staticmethod
    def _thread_scopes(tree: ast.Module) -> Iterator[ast.AST]:
        """Each class body, plus the module for top-level threads."""
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                yield node
        yield tree

    def _check_scope(
        self, ctx: "ModuleContext", scope: ast.AST  # noqa: F821
    ) -> Iterator[Finding]:
        in_class = isinstance(scope, ast.ClassDef)
        body = scope.body if in_class else [
            stmt for stmt in scope.body if not isinstance(stmt, ast.ClassDef)  # type: ignore[attr-defined]
        ]
        joined_attrs = self._joined_attributes(scope) if in_class else set()
        joined_names = self._joined_names(body)
        handled: Set[int] = set()
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Assign) and _is_thread_ctor(node.value):
                    handled.add(id(node.value))
                    if _has_daemon_true(node.value):
                        continue
                    yield from self._check_assigned(
                        ctx, node, joined_attrs, joined_names
                    )
        for stmt in body:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and _is_thread_ctor(node)
                    and id(node) not in handled
                    and not _has_daemon_true(node)
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "thread constructed without lifecycle handling: pass "
                        "daemon=True, or keep a reference and join() it on a "
                        "shutdown path (close/shutdown/stop/__exit__)",
                    )

    def _check_assigned(
        self,
        ctx: "ModuleContext",  # noqa: F821
        node: ast.Assign,
        joined_attrs: Set[str],
        joined_names: Set[str],
    ) -> Iterator[Finding]:
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                if target.attr not in joined_attrs:
                    yield self.finding(
                        ctx,
                        node,
                        f"non-daemon thread stored in `self.{target.attr}` is "
                        "never joined on a shutdown path "
                        "(close/shutdown/stop/__exit__); join it or pass "
                        "daemon=True",
                    )
            elif isinstance(target, ast.Name) and target.id not in joined_names:
                yield self.finding(
                    ctx,
                    node,
                    f"non-daemon thread `{target.id}` has no shutdown-path "
                    "join; pass daemon=True or join it before returning",
                )

    @staticmethod
    def _joined_names(body: List[ast.stmt]) -> Set[str]:
        """Local names that some ``<name>.join(...)`` call waits on."""
        joined: Set[str] = set()
        for stmt in body:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                    and isinstance(node.func.value, ast.Name)
                ):
                    joined.add(node.func.value.id)
        return joined

    @staticmethod
    def _joined_attributes(classdef: ast.AST) -> Set[str]:
        joined: Set[str] = set()
        for method in classdef.body:  # type: ignore[attr-defined]
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name not in SHUTDOWN_METHODS:
                continue
            for node in ast.walk(method):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                ):
                    receiver = _terminal_name(node.func.value)
                    if receiver is not None:
                        joined.add(receiver)
        return joined


def _is_thread_ctor(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = _terminal_name(node.func)
    if name != "Thread":
        return False
    root = root_name(node.func)
    return root in ("threading", "Thread", None) or root == name


def _has_daemon_true(node: ast.Call) -> bool:
    for keyword in node.keywords:
        if keyword.arg == "daemon":
            return (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            )
    return False
