"""PL001 — protocol-layer determinism.

The correctness arguments this repo reproduces (Lemma 4 path agreement,
the chain-of-views lower bounds, and the replayable JSONL traces) all
assume a protocol round is a *deterministic* function of
``(state, received messages)``.  This rule statically bans the two ways
that silently breaks in Python:

* **ambient nondeterminism** — calls into ``random`` module-level
  functions, any ``time`` function, ``os.urandom``, ``uuid``,
  ``secrets``, or wall-clock ``datetime`` constructors.  Constructing a
  seeded ``random.Random(seed)`` instance is whitelisted: seeded
  generators injected through adversary/runner parameters are the
  sanctioned randomness path.
* **bare-set iteration** — ``for``-loops and comprehensions that iterate
  a value statically known to be a ``set``/``frozenset`` without a
  ``sorted(...)`` wrapper.  Set iteration order is salted per process, so
  any order that escapes into messages, outputs, or recorded state breaks
  replayability.  Iterations consumed directly by an order-insensitive
  reducer (``max``, ``min``, ``sum``, ``any``, ``all``, ``len``, ``set``,
  ``frozenset``, ``sorted``) are exempt.

Scope: the protocol-layer packages ``repro.core``, ``repro.protocols``,
``repro.net``, and ``repro.trees``.  Analysis/observability layers may
legitimately read clocks and draw seeds; the protocol layer may not.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from ..findings import Finding
from . import Rule, in_packages

#: Packages whose rounds must be deterministic functions of their inputs.
PROTOCOL_PACKAGES: Tuple[str, ...] = ("core", "protocols", "net", "trees")

#: Modules whose module-level functions are ambient nondeterminism.
BANNED_MODULES = {"random", "uuid", "secrets", "time"}

#: ``random`` attributes that are fine: seeded-generator construction.
RANDOM_WHITELIST = {"Random"}

#: Attribute names on ``datetime``/``date`` objects that read wall clocks.
WALLCLOCK_CTORS = {"now", "today", "utcnow"}

#: Reducers whose result does not depend on iteration order.
ORDER_INSENSITIVE = {
    "max", "min", "sum", "any", "all", "len", "set", "frozenset", "sorted",
}

#: Attribute names known (from the simulator's data model) to hold sets.
KNOWN_SET_ATTRIBUTES = {"honest", "corrupted", "bad"}

_SET_ANNOTATIONS = {"Set", "set", "FrozenSet", "frozenset", "MutableSet", "AbstractSet"}


def _annotation_is_set(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_ANNOTATIONS
    if isinstance(node, ast.Name):
        return node.id in _SET_ANNOTATIONS
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.split("[", 1)[0].strip()
        return text.rsplit(".", 1)[-1] in _SET_ANNOTATIONS
    return False


class _ModuleFacts(ast.NodeVisitor):
    """Collect module-wide typing facts for the set-iteration check."""

    def __init__(self) -> None:
        self.set_attributes: Set[str] = set(KNOWN_SET_ATTRIBUTES)
        self.set_returning: Set[str] = set()
        self.module_aliases: Dict[str, str] = {}
        self.from_imports: Dict[str, Tuple[str, str]] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name.split(".")[0]
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None:
            return
        for alias in node.names:
            self.from_imports[alias.asname or alias.name] = (
                node.module, alias.name
            )

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        target = node.target
        if _annotation_is_set(node.annotation):
            if isinstance(target, ast.Name):
                self.set_attributes.add(target.id)
            elif isinstance(target, ast.Attribute):
                self.set_attributes.add(target.attr)
        self.generic_visit(node)

    def _visit_function(self, node: ast.AST) -> None:
        if _annotation_is_set(getattr(node, "returns", None)):
            self.set_returning.add(node.name)  # type: ignore[attr-defined]
        self.generic_visit(node)

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function


class DeterminismRule(Rule):
    """PL001: no ambient nondeterminism or bare-set iteration order escape."""

    rule_id = "PL001"
    title = "protocol-layer determinism"

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:  # noqa: F821
        if not in_packages(ctx.module, PROTOCOL_PACKAGES):
            return
        facts = _ModuleFacts()
        facts.visit(ctx.tree)
        yield from self._check_imports(ctx, facts)
        yield from self._check_calls(ctx, facts)
        yield from self._check_set_iteration(ctx, facts)

    # -- ambient nondeterminism -----------------------------------------

    def _check_imports(
        self, ctx: "ModuleContext", facts: _ModuleFacts  # noqa: F821
    ) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ImportFrom) or node.module is None:
                continue
            top = node.module.split(".")[0]
            for alias in node.names:
                banned = (
                    (top == "random" and alias.name not in RANDOM_WHITELIST)
                    or top in ("time", "uuid", "secrets")
                    or (top == "os" and alias.name == "urandom")
                )
                if banned:
                    yield self.finding(
                        ctx,
                        node,
                        f"nondeterministic import `from {node.module} import "
                        f"{alias.name}` in a protocol-layer module; inject a "
                        "seeded random.Random (or pass values in) instead",
                    )

    def _check_calls(
        self, ctx: "ModuleContext", facts: _ModuleFacts  # noqa: F821
    ) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
                base = facts.module_aliases.get(node.value.id)
                if base == "random" and node.attr not in RANDOM_WHITELIST:
                    yield self.finding(
                        ctx,
                        node,
                        f"`random.{node.attr}` uses ambient randomness; "
                        "construct a seeded random.Random and pass it in",
                    )
                elif base in ("time", "uuid", "secrets"):
                    yield self.finding(
                        ctx,
                        node,
                        f"`{base}.{node.attr}` is nondeterministic; protocol "
                        "rounds must be functions of (state, messages) only",
                    )
                elif base == "os" and node.attr == "urandom":
                    yield self.finding(
                        ctx, node, "`os.urandom` is nondeterministic"
                    )
                elif base == "datetime" and node.attr in WALLCLOCK_CTORS:
                    yield self.finding(
                        ctx,
                        node,
                        f"`datetime.{node.attr}` reads the wall clock",
                    )
                elif (
                    node.value.id in facts.from_imports
                    and facts.from_imports[node.value.id][0] == "datetime"
                    and node.attr in WALLCLOCK_CTORS
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"`{node.value.id}.{node.attr}` reads the wall clock",
                    )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                origin = facts.from_imports.get(node.func.id)
                if origin is not None and origin[0].split(".")[0] in BANNED_MODULES:
                    if not (origin[0] == "random" and origin[1] in RANDOM_WHITELIST):
                        yield self.finding(
                            ctx,
                            node,
                            f"call to `{node.func.id}` (from {origin[0]}) is "
                            "nondeterministic in a protocol-layer module",
                        )

    # -- bare-set iteration ----------------------------------------------

    def _check_set_iteration(
        self, ctx: "ModuleContext", facts: _ModuleFacts  # noqa: F821
    ) -> Iterator[Finding]:
        exempt: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id in ORDER_INSENSITIVE:
                    for arg in node.args:
                        if isinstance(
                            arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)
                        ):
                            exempt.add(id(arg))

        for scope in ast.walk(ctx.tree):
            if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            set_locals: Set[str] = set()
            for arg in list(scope.args.args) + list(scope.args.kwonlyargs):
                if _annotation_is_set(arg.annotation):
                    set_locals.add(arg.arg)
            for stmt in ast.walk(scope):
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target = stmt.targets[0]
                    if isinstance(target, ast.Name) and self._is_set_expr(
                        stmt.value, facts, set_locals
                    ):
                        set_locals.add(target.id)
                elif isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    if _annotation_is_set(stmt.annotation):
                        set_locals.add(stmt.target.id)
            for stmt in ast.walk(scope):
                iters = []
                if isinstance(stmt, (ast.For, ast.AsyncFor)):
                    iters.append(stmt.iter)
                elif isinstance(
                    stmt, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
                ):
                    if id(stmt) in exempt:
                        continue
                    iters.extend(gen.iter for gen in stmt.generators)
                for it in iters:
                    if self._is_set_expr(it, facts, set_locals):
                        yield self.finding(
                            ctx,
                            it,
                            "iteration over a bare set; wrap in sorted(...) so "
                            "no salted set order escapes into messages, "
                            "outputs, or recorded state",
                        )

    def _is_set_expr(
        self, node: ast.expr, facts: _ModuleFacts, set_locals: Set[str]
    ) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in set_locals
        if isinstance(node, ast.Attribute):
            return node.attr in facts.set_attributes
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            return name in facts.set_returning
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Sub, ast.BitOr, ast.BitAnd, ast.BitXor)
        ):
            return self._is_set_expr(node.left, facts, set_locals) or (
                self._is_set_expr(node.right, facts, set_locals)
            )
        return False
