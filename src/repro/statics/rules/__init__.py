"""The pluggable rule set of the protocol-invariant linter.

Each rule is a class with a ``rule_id`` (``PLxxx``), a per-module
:meth:`~Rule.check` pass and an optional cross-module
:meth:`~Rule.finalize` pass.  The shipped catalog (see
``docs/STATIC_ANALYSIS.md`` for rationale):

========  ==============================================================
PL001     determinism — protocol-layer modules must not reach for
          ambient nondeterminism (``random.*``, clocks, ``uuid``,
          ``os.urandom``) or iterate bare sets in order-sensitive
          positions
PL002     guard discipline — no bare ``assert`` in ``src/repro``
          (``python -O`` strips them); raise
          ``ValidityViolationError`` / ``ProtocolStateError`` instead
PL003     handler exhaustiveness — payload tags must be declared in
          ``repro.net.messages.MESSAGE_TYPES`` and every tag a protocol
          module sends it must also handle
PL004     observer purity — ``on_round`` observers read simulator state,
          never mutate it
PL101     guarded-state discipline — shared service state is declared
          ``# statics: guarded-by(<lock>)`` and only touched under that
          lock (or in a ``# statics: holds(<lock>)`` method)
PL102     lock ordering — the cross-module may-acquire graph is acyclic
PL103     no blocking under lock — joins, waits, sockets, subprocesses
          and pool submits stay outside ``with lock:`` bodies
PL104     thread lifecycle — threads are ``daemon=True`` or joined on a
          shutdown path
PL201     adversary batch parity — concrete ``Adversary`` subclasses
          override ``batch_spec()`` or declare
          ``# statics: batch-unsupported(<reason>)``
PL202     docs parity — the ``docs/API.md`` support matrix agrees with
          the PL201 declarations
========  ==============================================================

Rule ids group into families by their hundreds digit; the CLI accepts
family selectors (``PL1xx``) wherever it accepts ids (see
:func:`expand_rule_selectors`).
"""

from __future__ import annotations

import abc
import ast
import re
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Type

from ..findings import Finding

if TYPE_CHECKING:  # circular at runtime (engine imports rules)
    from ..engine import LintConfig, ModuleContext
    from ..model import ProgramModel

_FAMILY_SELECTOR = re.compile(r"^(PL\d)xx$", re.IGNORECASE)


class Rule(abc.ABC):
    """One lint rule: per-module and (optionally) cross-module passes.

    The engine drives three hooks per run: :meth:`begin` once with the
    cross-module :class:`~repro.statics.model.ProgramModel`, then
    :meth:`check` per module, then :meth:`finalize` once.
    """

    rule_id: str = "PL000"
    title: str = ""

    def __init__(self, config: "LintConfig") -> None:
        self.config = config

    def begin(self, model: "ProgramModel") -> None:
        """Receive the cross-module model before the per-module passes."""

    @abc.abstractmethod
    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        """Yield findings for one module."""

    def finalize(self) -> Iterator[Finding]:
        """Yield cross-module findings after every module was checked."""
        return iter(())

    def finding(self, ctx: "ModuleContext", node: ast.AST, message: str) -> Finding:
        """Construct a finding anchored at *node*."""
        return Finding(
            path=ctx.rel_path,
            line=getattr(node, "lineno", 1),
            rule=self.rule_id,
            message=message,
        )


def root_name(node: ast.AST) -> Optional[str]:
    """The base ``Name`` id of an attribute/subscript/call chain.

    ``parties[pid].receive_round`` → ``"parties"``; chains rooted in a
    call result or literal have no root name and return ``None``.
    """
    while True:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, (ast.Attribute, ast.Subscript, ast.Starred)):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        else:
            return None


def in_packages(module: str, packages: Sequence[str]) -> bool:
    """Whether dotted *module* lives in one of the ``repro.<pkg>`` packages."""
    for package in packages:
        prefix = f"repro.{package}"
        if module == prefix or module.startswith(prefix + "."):
            return True
    return False


def expand_rule_selectors(selectors: Sequence[str]) -> List[str]:
    """Expand family selectors (``PL1xx``) into concrete rule ids.

    Plain ids pass through untouched (including unknown ones, so
    :func:`make_rules` still produces its "unknown rule id" error); a
    family selector that matches nothing raises :class:`KeyError`.
    """
    expanded: List[str] = []
    for selector in selectors:
        match = _FAMILY_SELECTOR.match(selector.strip())
        if match is None:
            expanded.append(selector.strip())
            continue
        prefix = match.group(1).upper()
        members = sorted(
            rule_id for rule_id in RULES if rule_id.startswith(prefix)
        )
        if not members:
            raise KeyError(
                f"rule family {selector!r} matches no rules "
                f"(available: {', '.join(sorted(RULES))})"
            )
        expanded.extend(members)
    return expanded


def make_rules(
    rule_ids: Optional[Sequence[str]], config: "LintConfig"
) -> List[Rule]:
    """Instantiate the selected rules (all of them when *rule_ids* is None).

    *rule_ids* may mix concrete ids with family selectors (``PL1xx``).
    """
    selected: List[Rule] = []
    if rule_ids is not None:
        rule_ids = expand_rule_selectors(rule_ids)
    unknown = set(rule_ids or ()) - set(RULES)
    if unknown:
        raise KeyError(
            f"unknown rule id(s): {', '.join(sorted(unknown))} "
            f"(available: {', '.join(sorted(RULES))})"
        )
    for rule_id, rule_class in sorted(RULES.items()):
        if rule_ids is None or rule_id in rule_ids:
            selected.append(rule_class(config))
    return selected


from .concurrency import (  # noqa: E402
    GuardedStateRule,
    LockOrderingRule,
    NoBlockingUnderLockRule,
    ThreadLifecycleRule,
)
from .determinism import DeterminismRule  # noqa: E402
from .guards import GuardDisciplineRule  # noqa: E402
from .handlers import HandlerExhaustivenessRule  # noqa: E402
from .observers import ObserverPurityRule  # noqa: E402
from .parity import BatchParityRule, DocsParityRule  # noqa: E402

#: The shipped rule catalog, keyed by rule id.
RULES: Dict[str, Type[Rule]] = {
    DeterminismRule.rule_id: DeterminismRule,
    GuardDisciplineRule.rule_id: GuardDisciplineRule,
    HandlerExhaustivenessRule.rule_id: HandlerExhaustivenessRule,
    ObserverPurityRule.rule_id: ObserverPurityRule,
    GuardedStateRule.rule_id: GuardedStateRule,
    LockOrderingRule.rule_id: LockOrderingRule,
    NoBlockingUnderLockRule.rule_id: NoBlockingUnderLockRule,
    ThreadLifecycleRule.rule_id: ThreadLifecycleRule,
    BatchParityRule.rule_id: BatchParityRule,
    DocsParityRule.rule_id: DocsParityRule,
}
