"""The cross-module program model behind the PL1xx/PL2xx rules.

Until these rule families, every rule in :mod:`repro.statics` analysed
one module at a time (``check``) with at most an aggregate pass at the
end (``finalize``).  Concurrency discipline and backend parity cannot
work that way: the lock that guards ``Job.status`` is declared in
``repro.service.jobs`` but the accesses live in ``worker``/``http_api``/
``session``, and the ``Adversary`` hierarchy that PL201 walks spans
``repro.adversary`` *and* ``repro.authenticated``.

:class:`ProgramModel` is the engine's answer: it is built once per lint
run from every parsed module and handed to each rule's ``begin`` hook
before the per-module passes start.  It indexes

* every top-level class with its (import-resolved) base classes, so a
  rule can walk inheritance across modules;
* every ``# statics:`` annotation (:mod:`repro.statics.annotations`);
* helper queries: subclass enumeration, method resolution along the
  hierarchy, and the guarded-state inventory the architecture docs are
  generated from.

Resolution is deliberately lexical — no imports are executed.  Relative
imports (``from .base import Adversary``) and re-export chains through
``__init__`` modules are followed; anything that leaves the linted
module set (``abc.ABC``, stdlib bases) resolves to ``None`` and is
ignored by hierarchy walks.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from .annotations import Annotation, annotations_in_range, scan_annotations

if TYPE_CHECKING:  # circular at runtime (engine imports model)
    from .engine import LintConfig, ModuleContext

#: Maximum re-export hops followed when resolving a symbol.
_MAX_RESOLVE_DEPTH = 16


@dataclass
class ClassInfo:
    """One top-level class definition and its cross-module identity."""

    module: str  #: dotted module, e.g. ``"repro.adversary.base"``
    name: str  #: the class name
    node: ast.ClassDef  #: the definition
    ctx: "ModuleContext"  #: the module it was parsed from
    base_names: List[str] = field(default_factory=list)  #: raw dotted bases
    methods: Dict[str, ast.FunctionDef] = field(default_factory=dict)  #: own defs

    @property
    def qualname(self) -> str:
        """``module.ClassName`` — the index key."""
        return f"{self.module}.{self.name}"

    def header_annotations(self, model: "ProgramModel") -> List[Annotation]:
        """Annotations in the class header region.

        The region runs from the ``class`` line to the first body
        statement, so both styles parse::

            class X(Y):  # statics: batch-unsupported(reason)

            class X(Y):
                # statics: batch-unsupported(reason)
                \"\"\"Docstring.\"\"\"
        """
        table = model.annotations(self.module)
        stop = self.node.body[0].lineno if self.node.body else self.node.lineno + 1
        return annotations_in_range(table, self.node.lineno, stop)


def _dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.C`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_abstract_def(node: ast.FunctionDef) -> bool:
    for decorator in node.decorator_list:
        name = _dotted_name(decorator)
        if name is not None and name.rsplit(".", 1)[-1].startswith("abstract"):
            return True
    return False


class ProgramModel:
    """Cross-module class hierarchy, imports, and annotation index."""

    def __init__(
        self,
        contexts: List["ModuleContext"],
        config: Optional["LintConfig"] = None,
    ) -> None:
        self.config = config
        self.contexts = list(contexts)
        self.by_module: Dict[str, "ModuleContext"] = {
            ctx.module: ctx for ctx in self.contexts
        }
        self._annotations: Dict[str, Dict[int, List[Annotation]]] = {}
        self._imports: Dict[str, Dict[str, str]] = {}
        self.classes: Dict[str, ClassInfo] = {}
        for ctx in self.contexts:
            self._imports[ctx.module] = self._collect_imports(ctx)
            for node in ctx.tree.body:
                if isinstance(node, ast.ClassDef):
                    self._index_class(ctx, node)

    # -- construction --------------------------------------------------

    def _collect_imports(self, ctx: "ModuleContext") -> Dict[str, str]:
        is_package = ctx.path.endswith("__init__.py") or ctx.path == "<memory>"
        table: Dict[str, str] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    table[local] = alias.name if alias.asname else local
            elif isinstance(node, ast.ImportFrom):
                base = self._from_base(ctx.module, node, is_package)
                if base is None:
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    table[local] = f"{base}.{alias.name}" if base else alias.name
        return table

    @staticmethod
    def _from_base(
        module: str, node: ast.ImportFrom, is_package: bool
    ) -> Optional[str]:
        """The absolute module an ``ImportFrom`` pulls names out of."""
        if node.level == 0:
            return node.module
        parts = module.split(".")
        # A package's own module path is its base; a plain module drops
        # its final component first.
        trim = node.level - 1 if is_package else node.level
        if trim > len(parts):
            return None
        base_parts = parts[: len(parts) - trim]
        if node.module:
            base_parts.append(node.module)
        return ".".join(base_parts)

    def _index_class(self, ctx: "ModuleContext", node: ast.ClassDef) -> None:
        info = ClassInfo(module=ctx.module, name=node.name, node=node, ctx=ctx)
        for base in node.bases:
            dotted = _dotted_name(base)
            if dotted is not None:
                info.base_names.append(dotted)
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods.setdefault(child.name, child)  # type: ignore[arg-type]
        self.classes[info.qualname] = info

    # -- queries -------------------------------------------------------

    def annotations(self, module: str) -> Dict[int, List[Annotation]]:
        """The parsed ``# statics:`` table of one module (cached)."""
        if module not in self._annotations:
            ctx = self.by_module.get(module)
            self._annotations[module] = (
                scan_annotations(ctx.lines) if ctx is not None else {}
            )
        return self._annotations[module]

    def resolve_symbol(
        self, module: str, dotted: str, _depth: int = 0
    ) -> Optional[str]:
        """Resolve *dotted* as used in *module* to a known class qualname.

        Follows import aliases and re-export chains (``from .base import
        Adversary`` inside ``__init__`` modules); returns ``None`` for
        anything outside the linted module set.
        """
        if _depth > _MAX_RESOLVE_DEPTH:
            return None
        head, _, rest = dotted.partition(".")
        imported = self._imports.get(module, {}).get(head)
        if imported is not None:
            full = f"{imported}.{rest}" if rest else imported
        elif f"{module}.{dotted}" in self.classes:
            return f"{module}.{dotted}"
        else:
            full = dotted
        if full in self.classes:
            return full
        # ``full`` may pass through another module's namespace (a
        # re-export); split at the longest known module prefix and keep
        # resolving from there.
        prefix = full
        while "." in prefix:
            prefix = prefix.rsplit(".", 1)[0]
            if prefix in self.by_module:
                remainder = full[len(prefix) + 1 :]
                if remainder and (prefix, remainder) != (module, dotted):
                    return self.resolve_symbol(prefix, remainder, _depth + 1)
                break
        return None

    def resolved_bases(self, info: ClassInfo) -> List[ClassInfo]:
        """The base classes of *info* that resolve inside the model."""
        bases: List[ClassInfo] = []
        for name in info.base_names:
            qualname = self.resolve_symbol(info.module, name)
            if qualname is not None and qualname != info.qualname:
                bases.append(self.classes[qualname])
        return bases

    def is_subclass_of(self, info: ClassInfo, root_qualname: str) -> bool:
        """Transitive subclass test against a class *qualname*."""
        seen = set()
        stack = [info]
        while stack:
            current = stack.pop()
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            for base in self.resolved_bases(current):
                if base.qualname == root_qualname:
                    return True
                stack.append(base)
        return False

    def subclasses_of(self, root_qualname: str) -> Iterator[ClassInfo]:
        """Every indexed class transitively below *root_qualname* (sorted)."""
        for qualname in sorted(self.classes):
            info = self.classes[qualname]
            if qualname != root_qualname and self.is_subclass_of(
                info, root_qualname
            ):
                yield info

    def find_method(
        self, info: ClassInfo, name: str
    ) -> Optional[Tuple[ClassInfo, ast.FunctionDef]]:
        """The definition of *name* along the hierarchy (own class first)."""
        seen = set()
        stack = [info]
        while stack:
            current = stack.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if name in current.methods:
                return current, current.methods[name]
            stack.extend(self.resolved_bases(current))
        return None

    def is_concrete(self, info: ClassInfo, required_method: str) -> bool:
        """Whether *info* is instantiable with *required_method* implemented.

        "Concrete" here is lexical: the class declares no own
        ``@abstractmethod`` and *required_method* resolves to a
        non-abstract definition somewhere in the hierarchy.
        """
        if any(_is_abstract_def(fn) for fn in info.methods.values()):
            return False
        resolved = self.find_method(info, required_method)
        return resolved is not None and not _is_abstract_def(resolved[1])


def guarded_state_inventory(
    src_root: Optional[str] = None,
) -> Dict[Tuple[str, str], str]:
    """``(class qualname, attribute) -> lock`` from PL101 annotations.

    This is what the concurrency-model section of
    ``docs/ARCHITECTURE.md`` is generated from (and asserts against in
    its executable block): the documented lock table and the annotations
    the linter enforces are the same data by construction.
    """
    import os

    from .discovery import iter_source_files, module_name, source_root
    from .engine import parse_module
    from .rules.concurrency import guarded_declarations, in_concurrency_scope

    src = os.path.abspath(src_root) if src_root else source_root()
    repo = os.path.dirname(src)
    contexts = []
    for path in iter_source_files(os.path.join(src, "repro")):
        module = module_name(path, src)
        if not in_concurrency_scope(module):
            continue
        rel = os.path.relpath(path, repo).replace(os.sep, "/")
        contexts.append(parse_module(path, rel, module))
    model = ProgramModel(contexts)
    inventory: Dict[Tuple[str, str], str] = {}
    for declaration in guarded_declarations(model):
        inventory[(declaration.owner, declaration.attribute)] = declaration.lock
    return inventory
