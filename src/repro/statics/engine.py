"""The protocol-invariant lint engine.

Parses each discovered module once, hands the AST to every registered
rule (:mod:`repro.statics.rules`), filters findings through inline
``# protolint: disable=PLxxx`` suppressions, and returns structured
:class:`~repro.statics.findings.Finding` objects.  The CLI layers
(``tools/protolint.py`` and ``repro lint``) add baseline subtraction and
output formatting on top.

Suppression comments are same-line, flake8-style::

    risky_line()  # protolint: disable=PL001
    other_line()  # protolint: disable=PL001,PL004
    anything()    # protolint: disable=all

A suppression silences only findings reported *on that line*.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .discovery import iter_source_files, module_name, source_root
from .findings import Finding
from .model import ProgramModel

_SUPPRESS = re.compile(r"#\s*protolint:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass
class ModuleContext:
    """Everything a rule needs to know about one parsed module."""

    path: str  #: absolute filesystem path
    rel_path: str  #: repo-relative posix path, used in findings
    module: str  #: dotted module name, e.g. ``"repro.core.api"``
    tree: ast.Module  #: the parsed AST
    lines: List[str] = field(default_factory=list)  #: source lines (1-based - 1)

    def suppressed_rules(self, line: int) -> Set[str]:
        """The rule ids suppressed on 1-based *line* (``{"all"}`` wildcard)."""
        if not 1 <= line <= len(self.lines):
            return set()
        match = _SUPPRESS.search(self.lines[line - 1])
        if match is None:
            return set()
        return {token.strip() for token in match.group(1).split(",") if token.strip()}


@dataclass
class LintConfig:
    """Cross-module inputs the rules need.

    ``declared_tags`` / ``handler_exempt_tags`` feed PL003; when ``None``
    the engine extracts them from ``repro/net/messages.py`` (see
    :func:`repro.statics.rules.handlers.extract_message_types`).
    ``api_doc_path`` points PL202 at the support-matrix document, and
    ``full_tree`` records whether the run covers the whole package —
    cross-module rules only report *absence* findings (a class missing
    from a doc table, say) when they saw the complete picture.
    """

    declared_tags: Optional[Dict[str, str]] = None
    handler_exempt_tags: Optional[Set[str]] = None
    api_doc_path: Optional[str] = None
    full_tree: bool = False


@dataclass
class LintResult:
    """The outcome of one engine run (before baseline subtraction)."""

    findings: List[Finding]
    checked_files: int
    suppressed: int
    rules: List[str] = field(default_factory=list)  #: executed rule ids


def parse_module(
    path: str, rel_path: str, module: str, source: Optional[str] = None
) -> ModuleContext:
    """Parse one file into a :class:`ModuleContext`.

    A syntax error becomes a context with an empty AST; the engine turns
    it into a finding rather than crashing the whole run.
    """
    if source is None:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
    tree = ast.parse(source, filename=path)
    return ModuleContext(
        path=path,
        rel_path=rel_path,
        module=module,
        tree=tree,
        lines=source.splitlines(),
    )


def _build_rules(rule_ids: Optional[Sequence[str]], config: LintConfig) -> List[object]:
    from .rules import make_rules

    return make_rules(rule_ids, config)


def _resolve_config(config: Optional[LintConfig], src_root: str) -> LintConfig:
    from .rules.handlers import extract_message_types

    config = config or LintConfig()
    if config.declared_tags is None or config.handler_exempt_tags is None:
        messages_path = os.path.join(src_root, "repro", "net", "messages.py")
        declared, exempt = extract_message_types(messages_path)
        if config.declared_tags is None:
            config.declared_tags = declared
        if config.handler_exempt_tags is None:
            config.handler_exempt_tags = exempt
    return config


def lint_contexts(
    contexts: Iterable[ModuleContext],
    rule_ids: Optional[Sequence[str]] = None,
    config: Optional[LintConfig] = None,
) -> LintResult:
    """Run the rules over already-parsed module contexts."""
    config = config or LintConfig()
    if config.declared_tags is None:
        config.declared_tags = {}
    if config.handler_exempt_tags is None:
        config.handler_exempt_tags = set()
    rules = _build_rules(rule_ids, config)
    raw: List[Finding] = []
    contexts = list(contexts)
    model = ProgramModel(contexts, config)
    for rule in rules:
        rule.begin(model)
    for ctx in contexts:
        for rule in rules:
            raw.extend(rule.check(ctx))
    for rule in rules:
        raw.extend(rule.finalize())
    kept: List[Finding] = []
    suppressed = 0
    by_path = {ctx.rel_path: ctx for ctx in contexts}
    for finding in sorted(set(raw)):
        ctx = by_path.get(finding.path)
        if ctx is not None:
            silenced = ctx.suppressed_rules(finding.line)
            if finding.rule in silenced or "all" in silenced:
                suppressed += 1
                continue
        kept.append(finding)
    return LintResult(
        findings=kept,
        checked_files=len(contexts),
        suppressed=suppressed,
        rules=[rule.rule_id for rule in rules],
    )


def lint_paths(
    paths: Optional[Sequence[str]] = None,
    src_root: Optional[str] = None,
    rule_ids: Optional[Sequence[str]] = None,
    config: Optional[LintConfig] = None,
) -> LintResult:
    """Lint files or directory trees (default: the whole ``repro`` package).

    *paths* may mix files and directories; directories are walked with the
    shared deterministic discovery.  Findings carry repo-relative paths.
    """
    src = os.path.abspath(src_root) if src_root else source_root()
    repo = os.path.dirname(src)
    full_tree = not paths
    if not paths:
        paths = [os.path.join(src, "repro")]
    files: List[str] = []
    for path in paths:
        path = os.path.abspath(path)
        if os.path.isdir(path):
            files.extend(iter_source_files(path))
        else:
            files.append(path)
    config = _resolve_config(config, src)
    config.full_tree = full_tree
    if config.api_doc_path is None:
        candidate = os.path.join(repo, "docs", "API.md")
        if os.path.exists(candidate):
            config.api_doc_path = candidate
    contexts: List[ModuleContext] = []
    syntax_findings: List[Finding] = []
    for path in files:
        rel = os.path.relpath(path, repo).replace(os.sep, "/")
        try:
            contexts.append(parse_module(path, rel, module_name(path, src)))
        except SyntaxError as exc:
            syntax_findings.append(
                Finding(
                    path=rel,
                    line=exc.lineno or 1,
                    rule="PL000",
                    message=f"syntax error: {exc.msg}",
                )
            )
    result = lint_contexts(contexts, rule_ids=rule_ids, config=config)
    result.findings = sorted(set(result.findings) | set(syntax_findings))
    result.checked_files += len(syntax_findings)
    return result


def lint_source(
    source: str,
    module: str = "repro.core.snippet",
    rel_path: str = "snippet.py",
    rule_ids: Optional[Sequence[str]] = None,
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    """Lint a source string as if it were the given module (for tests/docs)."""
    ctx = parse_module("<memory>", rel_path, module, source=source)
    return lint_contexts([ctx], rule_ids=rule_ids, config=config).findings


def finding_tuples(findings: Iterable[Finding]) -> List[Tuple[str, int, str, str]]:
    """``(path, line, rule, message)`` tuples — a convenience for tests."""
    return [(f.path, f.line, f.rule, f.message) for f in findings]
