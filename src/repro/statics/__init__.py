"""Protocol-invariant static analysis for the simulator (``protolint``).

A small, dependency-free lint engine that parses ``src/repro`` with
:mod:`ast` and checks the invariants the paper's correctness arguments
lean on: protocol-layer determinism (PL001), guard discipline (PL002),
message-handler exhaustiveness (PL003), observer purity (PL004),
concurrency discipline for the threaded service (PL101–PL104, driven by
``# statics:`` annotations — see :mod:`repro.statics.annotations`), and
backend parity for the adversary hierarchy (PL201–PL202).

Per-module rules see one AST at a time; cross-module rules get a
:class:`~repro.statics.model.ProgramModel` (class hierarchy, imports,
annotations over the whole linted set) through their ``begin`` hook.

Two front ends share this engine: ``tools/protolint.py`` (standalone,
used by CI) and the ``repro lint`` subcommand.  See
``docs/STATIC_ANALYSIS.md`` for the rule catalog, suppression syntax and
the baseline-ratchet workflow.
"""

from .annotations import Annotation, scan_annotations
from .engine import (
    LintConfig,
    LintResult,
    ModuleContext,
    finding_tuples,
    lint_contexts,
    lint_paths,
    lint_source,
    parse_module,
)
from .findings import (
    PLACEHOLDER_JUSTIFICATION,
    SCHEMA_VERSION,
    BaselineFormatError,
    Finding,
    PlaceholderJustificationError,
    apply_baseline,
    load_baseline,
    render_baseline,
)
from .model import ClassInfo, ProgramModel, guarded_state_inventory
from .rules import RULES, Rule, expand_rule_selectors, make_rules

__all__ = [
    "PLACEHOLDER_JUSTIFICATION",
    "SCHEMA_VERSION",
    "Annotation",
    "BaselineFormatError",
    "ClassInfo",
    "Finding",
    "LintConfig",
    "LintResult",
    "ModuleContext",
    "PlaceholderJustificationError",
    "ProgramModel",
    "RULES",
    "Rule",
    "apply_baseline",
    "expand_rule_selectors",
    "finding_tuples",
    "guarded_state_inventory",
    "lint_contexts",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "make_rules",
    "parse_module",
    "render_baseline",
    "scan_annotations",
]
