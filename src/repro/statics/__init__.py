"""Protocol-invariant static analysis for the simulator (``protolint``).

A small, dependency-free lint engine that parses ``src/repro`` with
:mod:`ast` and checks the invariants the paper's correctness arguments
lean on: protocol-layer determinism (PL001), guard discipline (PL002),
message-handler exhaustiveness (PL003), and observer purity (PL004).

Two front ends share this engine: ``tools/protolint.py`` (standalone,
used by CI) and the ``repro lint`` subcommand.  See
``docs/STATIC_ANALYSIS.md`` for the rule catalog, suppression syntax and
the baseline-ratchet workflow.
"""

from .engine import (
    LintConfig,
    LintResult,
    ModuleContext,
    finding_tuples,
    lint_contexts,
    lint_paths,
    lint_source,
    parse_module,
)
from .findings import (
    PLACEHOLDER_JUSTIFICATION,
    SCHEMA_VERSION,
    BaselineFormatError,
    Finding,
    PlaceholderJustificationError,
    apply_baseline,
    load_baseline,
    render_baseline,
)
from .rules import RULES, Rule, make_rules

__all__ = [
    "PLACEHOLDER_JUSTIFICATION",
    "SCHEMA_VERSION",
    "BaselineFormatError",
    "Finding",
    "LintConfig",
    "LintResult",
    "ModuleContext",
    "PlaceholderJustificationError",
    "RULES",
    "Rule",
    "apply_baseline",
    "finding_tuples",
    "lint_contexts",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "make_rules",
    "parse_module",
    "render_baseline",
]
