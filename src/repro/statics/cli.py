"""Shared command-line front end for the protocol-invariant linter.

Both entry points — the standalone ``tools/protolint.py`` script that CI
runs and the ``repro lint`` subcommand — are thin shims over
:func:`run` here, so flags, output formats and exit codes cannot drift
apart.

Exit codes (documented contract, relied on by CI and tests):

* ``0`` — clean: no findings outside the baseline
* ``1`` — findings: at least one new finding was reported
* ``2`` — usage error: bad flags, unknown rule id, malformed baseline
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from typing import List, Optional, Sequence, TextIO

from .discovery import source_root
from .engine import lint_paths
from .findings import (
    SCHEMA_VERSION,
    BaselineFormatError,
    PlaceholderJustificationError,
    apply_baseline,
    load_baseline,
    render_baseline,
)

#: Exit status when the tree is clean.
EXIT_CLEAN = 0
#: Exit status when new findings were reported.
EXIT_FINDINGS = 1
#: Exit status for usage errors (bad flags, unknown rules, bad baseline).
EXIT_USAGE = 2


def default_baseline_path() -> str:
    """The committed baseline location: ``tools/protolint_baseline.json``."""
    repo_root = os.path.dirname(source_root())
    return os.path.join(repo_root, "tools", "protolint_baseline.json")


def build_parser(prog: str = "protolint") -> argparse.ArgumentParser:
    """The argument parser shared by ``tools/protolint.py`` and ``repro lint``."""
    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "Protocol-invariant linter for src/repro (rules PL001-PL004, "
            "PL101-PL104, PL201-PL202; see docs/STATIC_ANALYSIS.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit findings as a JSON document instead of text",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="IDS",
        help=(
            "comma-separated rule ids or families to run, e.g. "
            "'PL101,PL2xx' (default: all)"
        ),
    )
    parser.add_argument(
        "--changed",
        nargs="?",
        const="",
        default=None,
        metavar="BASE",
        help=(
            "lint only Python files changed since the git merge-base with "
            "BASE (default: origin/main, falling back to main); includes "
            "uncommitted and untracked files.  Cross-module absence checks "
            "(e.g. PL202 missing-row findings) are skipped on such partial "
            "runs — CI's full run still enforces them"
        ),
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=(
            "baseline file of tolerated findings "
            "(default: tools/protolint_baseline.json when it exists)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file, report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="write the current findings as a baseline file and exit 0",
    )
    parser.add_argument(
        "--allow-todo-justify",
        action="store_true",
        help=(
            "tolerate baseline entries still stamped 'TODO: justify' "
            "(warns instead of failing; the committed baseline should "
            "carry real justifications)"
        ),
    )
    return parser


def changed_files(base: Optional[str], src_root: str) -> List[str]:
    """Python files under *src_root* differing from the git merge-base.

    The diff base is ``merge-base HEAD <base>`` (default: ``origin/main``,
    falling back to ``main``); uncommitted modifications and untracked
    files are included, deletions are not (the file no longer exists).
    Raises :class:`RuntimeError` when git or the base ref is unavailable.
    """
    repo_root = os.path.dirname(src_root)

    def git(*args: str) -> str:
        proc = subprocess.run(
            ["git", *args],
            cwd=repo_root,
            capture_output=True,
            text=True,
            check=True,
        )
        return proc.stdout

    merge_base = None
    errors: List[str] = []
    for ref in [base] if base else ["origin/main", "main"]:
        try:
            merge_base = git("merge-base", "HEAD", ref).strip()
            break
        except (OSError, subprocess.CalledProcessError) as exc:
            detail = getattr(exc, "stderr", "") or str(exc)
            errors.append(f"{ref}: {detail.strip()}")
    if merge_base is None:
        raise RuntimeError(
            "cannot resolve a merge base for --changed "
            f"({'; '.join(errors)})"
        )
    names = set(git("diff", "--name-only", merge_base).splitlines())
    names.update(git("ls-files", "--others", "--exclude-standard").splitlines())
    selected = []
    for name in sorted(names):
        if not name.endswith(".py"):
            continue
        path = os.path.join(repo_root, name.replace("/", os.sep))
        if os.path.exists(path) and path.startswith(src_root + os.sep):
            selected.append(path)
    return selected


def run(
    argv: Optional[Sequence[str]] = None,
    prog: str = "protolint",
    stdout: Optional[TextIO] = None,
    stderr: Optional[TextIO] = None,
) -> int:
    """Run the linter CLI; returns the process exit code (0/1/2)."""
    out = stdout if stdout is not None else sys.stdout
    err = stderr if stderr is not None else sys.stderr
    parser = build_parser(prog)
    try:
        args = parser.parse_args(list(argv) if argv is not None else None)
    except SystemExit as exc:
        code = exc.code if isinstance(exc.code, int) else EXIT_USAGE
        return EXIT_USAGE if code not in (0,) else 0

    rule_ids: Optional[List[str]] = None
    if args.rules is not None:
        rule_ids = [token.strip() for token in args.rules.split(",") if token.strip()]
        if not rule_ids:
            print(f"{prog}: --rules given but no rule ids parsed", file=err)
            return EXIT_USAGE

    paths = args.paths or None
    if args.changed is not None:
        if paths:
            print(
                f"{prog}: --changed and explicit paths are mutually exclusive",
                file=err,
            )
            return EXIT_USAGE
        try:
            paths = changed_files(args.changed or None, source_root())
        except RuntimeError as exc:
            print(f"{prog}: {exc}", file=err)
            return EXIT_USAGE
        if not paths:
            if args.json:
                document = {
                    "version": SCHEMA_VERSION,
                    "checked_files": 0,
                    "suppressed": 0,
                    "baselined": 0,
                    "rules": [],
                    "findings": [],
                }
                print(json.dumps(document, indent=2), file=out)
            else:
                print(
                    f"{prog}: no changed files under src/, nothing to lint",
                    file=out,
                )
            return EXIT_CLEAN

    try:
        result = lint_paths(paths=paths, rule_ids=rule_ids)
    except KeyError as exc:
        print(f"{prog}: {exc.args[0]}", file=err)
        return EXIT_USAGE
    except OSError as exc:
        print(f"{prog}: {exc}", file=err)
        return EXIT_USAGE

    if args.write_baseline:
        with open(args.write_baseline, "w", encoding="utf-8") as handle:
            handle.write(render_baseline(result.findings))
        print(
            f"{prog}: wrote baseline with {len(result.findings)} entr"
            f"{'y' if len(result.findings) == 1 else 'ies'} to "
            f"{args.write_baseline} (edit the justifications before committing)",
            file=out,
        )
        return EXIT_CLEAN

    absorbed = 0
    findings = result.findings
    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline:
        candidate = default_baseline_path()
        if os.path.exists(candidate):
            baseline_path = candidate
    if baseline_path is not None and not args.no_baseline:
        try:
            allowance = load_baseline(baseline_path)
        except PlaceholderJustificationError as exc:
            if not args.allow_todo_justify:
                print(f"{prog}: {exc}", file=err)
                return EXIT_USAGE
            print(f"{prog}: warning: {exc}", file=err)
            allowance = exc.allowance
        except (OSError, BaselineFormatError) as exc:
            print(f"{prog}: {exc}", file=err)
            return EXIT_USAGE
        findings, absorbed = apply_baseline(findings, allowance)

    if args.json:
        document = {
            "version": SCHEMA_VERSION,
            "checked_files": result.checked_files,
            "suppressed": result.suppressed,
            "baselined": absorbed,
            "rules": result.rules,
            "findings": [finding.to_dict() for finding in findings],
        }
        print(json.dumps(document, indent=2), file=out)
    else:
        for finding in findings:
            print(finding.render(), file=out)
        plural = "" if len(findings) == 1 else "s"
        print(
            f"{prog}: {len(findings)} finding{plural} in "
            f"{result.checked_files} file(s) "
            f"({result.suppressed} suppressed, {absorbed} baselined)",
            file=out,
        )
    return EXIT_FINDINGS if findings else EXIT_CLEAN
