"""Executable chain-of-views constructions (the mechanism behind Theorem 1).

Fekete's proof builds, for a deterministic full-information protocol, a
chain of views ``V_0, …, V_s`` such that (i) adjacent views co-occur in a
single legal execution — two honest parties hold them simultaneously — and
(ii) Validity pins the outputs of the chain's endpoints to the two extreme
inputs.  Some adjacent pair must then exhibit an output gap ≥ ``D/s``.

This module makes the ``R = 1`` instance of that argument *runnable*: a
one-round full-information protocol is just a deterministic output rule
``f(view)``, and the chain is explicit.  Benchmark T4 and
``examples/lower_bound_demo.py`` apply it to the actual trimmed-mean and
safe-area-midpoint rules this library uses, exhibiting concrete adversarial
executions that force the predicted gap.

The view convention: party ``p``'s view after one round is the tuple of the
``n`` values it received (entry ``q`` = what party ``q`` sent to ``p``);
with authenticated channels the adversary controls only the entries of
corrupted parties.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, List, Tuple

from ..trees.labeled_tree import Label, LabeledTree
from ..trees.paths import diameter_path, distance
from ..trees.safe_area import safe_area_midpoint

#: A one-round full-information view: what each of the n parties reported.
View = Tuple[Any, ...]

#: A deterministic output rule for a one-round protocol.
OutputRule = Callable[[View], Any]


@dataclass
class ChainLink:
    """One adversarial execution connecting two adjacent views.

    In this execution the parties of ``byzantine_block`` are corrupted; they
    report ``high_value`` to the honest party holding ``view_after`` and
    ``low_value`` to the one holding ``view_before``.  All other parties are
    honest with the inputs their view entries show.
    """

    index: int
    byzantine_block: Tuple[int, ...]
    view_before: View
    view_after: View


@dataclass
class ChainDemonstration:
    """The outcome of running an output rule along the chain."""

    views: List[View]
    links: List[ChainLink]
    outputs: List[Any]
    gaps: List[float]
    max_gap: float
    witness_index: int  # link whose two honest outputs differ the most
    guaranteed_gap: float  # D / s — what the argument promises

    @property
    def witness(self) -> ChainLink:
        return self.links[self.witness_index]


def one_round_view_chain(n: int, t: int, low: Any, high: Any) -> List[View]:
    """The chain ``V_0 … V_s``: a sliding block of ``t`` parties flips
    ``low → high``.  ``V_0`` is all-``low``, ``V_s`` all-``high``,
    ``s = ⌈n/t⌉``."""
    if t < 1 or n < 1 or t >= n:
        raise ValueError("need 1 <= t < n")
    blocks = [tuple(range(i, min(i + t, n))) for i in range(0, n, t)]
    views: List[View] = []
    for k in range(len(blocks) + 1):
        flipped = {p for block in blocks[:k] for p in block}
        views.append(tuple(high if p in flipped else low for p in range(n)))
    return views


def chain_links(n: int, t: int, low: Any, high: Any) -> List[ChainLink]:
    """The executions connecting adjacent views of the chain."""
    views = one_round_view_chain(n, t, low, high)
    blocks = [tuple(range(i, min(i + t, n))) for i in range(0, n, t)]
    return [
        ChainLink(
            index=k,
            byzantine_block=blocks[k],
            view_before=views[k],
            view_after=views[k + 1],
        )
        for k in range(len(blocks))
    ]


def demonstrate_real(
    rule: OutputRule, n: int, t: int, low: float = 0.0, high: float = 1.0
) -> ChainDemonstration:
    """Run a real-valued output rule along the chain.

    Validity forces ``rule(V_0) = low`` and ``rule(V_s) = high`` (all-honest
    executions), so some adjacent pair — two honest parties inside one
    Byzantine execution — must differ by at least ``(high − low)/s``.
    """
    views = one_round_view_chain(n, t, low, high)
    links = chain_links(n, t, low, high)
    outputs = [rule(view) for view in views]
    gaps = [abs(outputs[k + 1] - outputs[k]) for k in range(len(links))]
    max_gap = max(gaps)
    return ChainDemonstration(
        views=views,
        links=links,
        outputs=outputs,
        gaps=gaps,
        max_gap=max_gap,
        witness_index=gaps.index(max_gap),
        guaranteed_gap=(high - low) / len(links),
    )


def demonstrate_tree(
    rule: Callable[[View], Label], tree: LabeledTree, n: int, t: int
) -> ChainDemonstration:
    """Corollary 1 made concrete: the chain with the diameter endpoints.

    The two extreme inputs are the endpoints of a longest path of *tree*
    (``D(T)``-distant vertices); gaps are tree distances.
    """
    longest = diameter_path(tree)
    low, high = longest.start, longest.end
    views = one_round_view_chain(n, t, low, high)
    links = chain_links(n, t, low, high)
    outputs = [rule(view) for view in views]
    gaps = [
        float(distance(tree, outputs[k], outputs[k + 1]))
        for k in range(len(links))
    ]
    max_gap = max(gaps)
    return ChainDemonstration(
        views=views,
        links=links,
        outputs=outputs,
        gaps=gaps,
        max_gap=max_gap,
        witness_index=gaps.index(max_gap),
        guaranteed_gap=longest.length / len(links),
    )


def trimmed_mean_rule(t: int) -> OutputRule:
    """The one-round rule RealAA's iterations use: trim ``t``/``t``, average."""

    def rule(view: View) -> float:
        ordered = sorted(view)
        if len(ordered) > 2 * t:
            ordered = ordered[t : len(ordered) - t]
        return math.fsum(ordered) / len(ordered)

    return rule


def trimmed_midpoint_rule(t: int) -> OutputRule:
    """The outline baseline's rule: trim ``t``/``t``, take the midpoint."""

    def rule(view: View) -> float:
        ordered = sorted(view)
        if len(ordered) > 2 * t:
            ordered = ordered[t : len(ordered) - t]
        return (ordered[0] + ordered[-1]) / 2.0

    return rule


def safe_area_midpoint_rule(tree: LabeledTree, t: int) -> Callable[[View], Label]:
    """The tree baseline's one-round rule: midpoint of the tree safe area."""

    def rule(view: View) -> Label:
        return safe_area_midpoint(tree, list(view), t)

    return rule
