"""Lower-bound machinery: Fekete's bound on ℝ adapted to trees (Section 3)."""

from .chains import (
    ChainDemonstration,
    ChainLink,
    chain_links,
    demonstrate_real,
    demonstrate_tree,
    one_round_view_chain,
    safe_area_midpoint_rule,
    trimmed_mean_rule,
    trimmed_midpoint_rule,
)
from .fekete import (
    EMPIRICAL_ROUND_CONSTANT,
    empirical_tree_round_bound,
    fekete_K,
    fekete_K_closed_form,
    lower_bound_table,
    max_split_product,
    min_rounds_required,
    optimal_integer_split,
    theorem2_lower_bound,
)

__all__ = [
    "EMPIRICAL_ROUND_CONSTANT",
    "empirical_tree_round_bound",
    "optimal_integer_split",
    "max_split_product",
    "fekete_K",
    "fekete_K_closed_form",
    "min_rounds_required",
    "theorem2_lower_bound",
    "lower_bound_table",
    "one_round_view_chain",
    "chain_links",
    "ChainLink",
    "ChainDemonstration",
    "demonstrate_real",
    "demonstrate_tree",
    "trimmed_mean_rule",
    "trimmed_midpoint_rule",
    "safe_area_midpoint_rule",
]
