"""Fekete's lower bound, adapted to trees (Section 3).

Implements the quantitative content of Theorem 1 (Theorem 15 of [19]),
Corollary 1, and Theorem 2:

* :func:`fekete_K` — the guaranteed output gap ``K(R, D)`` of Equation (1),
  with the *exact* integer supremum of ``t_1 · … · t_R`` (``t_i ∈ ℕ``,
  ``Σ t_i ≤ t``) rather than the looser ``(t/R)^R`` closed form;
* :func:`theorem2_lower_bound` — the explicit round lower bound
  ``log2 D / log2 log2 D^δ`` with ``δ = (n + t)/t`` the paper derives;
* :func:`min_rounds_required` — the sharpest integer consequence of
  Corollary 1: the smallest ``R`` for which ``K(R, D) ≤ 1`` no longer
  *forbids* 1-agreement.

Benchmark T4 tabulates these against TreeAA's measured round counts.
"""

from __future__ import annotations

import math
from typing import List, Tuple


def optimal_integer_split(t: int, rounds: int) -> Tuple[int, ...]:
    """The split ``t_1 + … + t_R ≤ t`` maximising ``∏ t_i`` over ``ℕ^R``.

    For ``t ≥ R`` the maximiser spends the whole budget as evenly as
    possible (parts ``⌊t/R⌋`` and ``⌈t/R⌉``).  For ``t < R`` every split
    has a zero part, so the supremum of the product is 0 — Fekete's chain
    becomes infinitely long and the bound degenerates, which is exactly why
    protocols with more rounds than corruptions can converge arbitrarily
    well.
    """
    if t < 0 or rounds < 1:
        raise ValueError("need t >= 0 and rounds >= 1")
    if t < rounds:
        return tuple([1] * t + [0] * (rounds - t))
    base, extra = divmod(t, rounds)
    return tuple([base + 1] * extra + [base] * (rounds - extra))


def max_split_product(t: int, rounds: int) -> int:
    """``sup{t_1·…·t_R : t_i ∈ ℕ, Σ t_i ≤ t}`` (0 when ``t < R``)."""
    split = optimal_integer_split(t, rounds)
    product = 1
    for part in split:
        product *= part
    return product


def fekete_K(rounds: int, spread: float, n: int, t: int) -> float:
    """``K(R, D)`` of Equation (1): the output gap some execution forces.

    Any deterministic ``R``-round protocol satisfying Validity and
    Termination with ``t`` Byzantine parties has an execution in which two
    honest outputs differ by at least this much (Theorem 1 on ℝ,
    Corollary 1 verbatim on a tree of diameter ``D``).
    """
    if n < 1 or t < 0 or rounds < 1:
        raise ValueError("need n >= 1, t >= 0, rounds >= 1")
    if spread < 0:
        raise ValueError("spread must be non-negative")
    return spread * max_split_product(t, rounds) / float((n + t) ** rounds)


def fekete_K_closed_form(rounds: int, spread: float, n: int, t: int) -> float:
    """The weaker closed form ``D · t^R / (R^R (n+t)^R)`` of Equation (1)."""
    if n < 1 or t < 0 or rounds < 1:
        raise ValueError("need n >= 1, t >= 0, rounds >= 1")
    return spread * (t / (rounds * (n + t))) ** rounds


def min_rounds_required(spread: float, n: int, t: int, limit: int = 10_000) -> int:
    """The smallest ``R`` with ``K(R, D) ≤ 1``: Corollary 1's integer bound.

    Every protocol running fewer rounds has an execution violating
    1-agreement.  ``K`` is not monotone in ``R`` a priori, so the search
    returns the first ``R`` at which *no* execution of Corollary 1's form
    forces a gap above 1 for this or any larger round count we can build
    by idling (running longer never hurts, so the first admissible ``R``
    is the bound).
    """
    if t == 0:
        return 1  # the paper's footnote: with t = 0 the bound is Ω(1)
    for rounds in range(1, limit + 1):
        if fekete_K(rounds, spread, n, t) <= 1.0:
            return rounds
    raise RuntimeError(f"no admissible round count below {limit}")


def theorem2_lower_bound(spread: float, n: int, t: int) -> float:
    """Theorem 2's explicit bound ``log2 D / log2 log2 D^δ``, ``δ=(n+t)/t``.

    Returns a (possibly fractional) number of rounds; any deterministic AA
    protocol on a tree of diameter ``D ≥ 4`` needs strictly more rounds.
    For ``t = 0`` (footnote 1) or tiny diameters the bound degenerates to 1.
    """
    if n < 1 or t < 0:
        raise ValueError("need n >= 1 and t >= 0")
    if t == 0 or spread < 4:
        return 1.0
    delta = (n + t) / t
    denominator = math.log2(delta * math.log2(spread))
    if denominator <= 0:
        return 1.0
    return max(1.0, math.log2(spread) / denominator)


#: Empirical constant for the upper round budget in the small-tree
#: regime (calibrated by the fuzzing described in EXPERIMENTS.md S1; the
#: tier-1 round-complexity property test and the flywheel's round-bound
#: oracle share this exact constant so they can never drift apart).
EMPIRICAL_ROUND_CONSTANT = 16


def empirical_tree_round_bound(n_vertices: int) -> int:
    """``ceil(C·log2|V| / max(1, log2 log2 |V|))`` with calibrated ``C=16``.

    The upper counterpart to :func:`theorem2_lower_bound`: every observed
    TreeAA/PathAA execution in the calibrated regime (``|V| ≤ 12``,
    ``t ≤ 3``) finishes within this budget, with ~2× headroom over the
    worst measured ratio.  Trivial trees (``|V| ≤ 1``) need 0 rounds.
    """
    if n_vertices <= 1:
        return 0
    log_v = math.log2(n_vertices)
    return math.ceil(
        EMPIRICAL_ROUND_CONSTANT * log_v / max(1.0, math.log2(log_v))
    )


def lower_bound_table(
    spreads: List[float], n: int, t: int
) -> List[Tuple[float, float, int]]:
    """For each diameter: (Theorem-2 bound, Corollary-1 integer bound)."""
    return [
        (d, theorem2_lower_bound(d, n, t), min_rounds_required(d, n, t))
        for d in spreads
    ]
