"""The authenticated setting (t < n/2) — the paper's Section-7 note.

Simulated unforgeable signatures, Dolev–Strong broadcast, the exact-AA
engine it yields, and TreeAA with that engine plugged in — demonstrating
that the paper's reduction is independent of the corruption threshold.
"""

from .adversary import DSEquivocatorAdversary, SignatureForgeryAdversary
from .dolev_strong import (
    BOTTOM,
    DolevStrongParty,
    ParallelDolevStrong,
)
from .exact_aa import (
    ExactRealAAParty,
    check_authenticated_resilience,
    exact_trimmed_mean,
)
from .signatures import Signature, SignatureAuthority, Signer
from .tree_aa import (
    AuthPathsFinderParty,
    AuthProjectionPhaseParty,
    AuthTreeAAParty,
    run_auth_tree_aa,
)

__all__ = [
    "Signature",
    "SignatureAuthority",
    "Signer",
    "BOTTOM",
    "ParallelDolevStrong",
    "DolevStrongParty",
    "ExactRealAAParty",
    "exact_trimmed_mean",
    "check_authenticated_resilience",
    "AuthPathsFinderParty",
    "AuthProjectionPhaseParty",
    "AuthTreeAAParty",
    "run_auth_tree_aa",
    "DSEquivocatorAdversary",
    "SignatureForgeryAdversary",
]
