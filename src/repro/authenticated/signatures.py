"""Simulated unforgeable digital signatures.

The paper's final note considers the *authenticated setting*: with digital
signatures, synchronous AA tolerates up to ``t < n/2`` corruptions, and the
TreeAA reduction carries over unchanged.  Since the simulation needs
unforgeability, not cryptography, signatures are modelled structurally:

* a per-execution :class:`SignatureAuthority` holds the only registry of
  issued signatures;
* signing requires a :class:`Signer` — a capability bound to one party id,
  handed out once per party.  The adversary holds the signers of corrupted
  parties only (it extracts them from its puppets), so it can *replay* any
  signature ever issued but can never mint one for an honest party;
* verification is a registry lookup: a guessed token either matches an
  actually-issued ``(signer, message)`` pair — a replay, which real
  signatures permit too — or fails.

Messages must be hashable; a signature is a small frozen value object so
it can travel inside payloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

from ..net.messages import PartyId


@dataclass(frozen=True)
class Signature:
    """An issued signature: opaque token + the claimed signer."""

    signer: PartyId
    token: int

    def __repr__(self) -> str:
        return f"Sig(p{self.signer}#{self.token})"


class SignatureAuthority:
    """The per-execution signing oracle and verification registry."""

    def __init__(self) -> None:
        self._issued: Dict[int, Tuple[PartyId, Any]] = {}
        self._counter = 0
        self._signers: Dict[PartyId, "Signer"] = {}

    def signer(self, pid: PartyId) -> "Signer":
        """The signing capability for *pid* (one instance per party)."""
        if pid not in self._signers:
            self._signers[pid] = Signer(self, pid)
        return self._signers[pid]

    def _sign(self, pid: PartyId, message: Any) -> Signature:
        hash(message)  # messages must be hashable (raises otherwise)
        token = self._counter
        self._counter += 1
        self._issued[token] = (pid, message)
        return Signature(signer=pid, token=token)

    def verify(self, signature: Any, message: Any) -> bool:
        """Whether *signature* is a genuine signature on *message*."""
        if not isinstance(signature, Signature):
            return False
        issued = self._issued.get(signature.token)
        if issued is None:
            return False
        pid, signed_message = issued
        return pid == signature.signer and signed_message == message


class Signer:
    """A capability to sign as one party.  Do not share with the enemy."""

    def __init__(self, authority: SignatureAuthority, pid: PartyId) -> None:
        self._authority = authority
        self.pid = pid

    def sign(self, message: Any) -> Signature:
        return self._authority._sign(self.pid, message)
