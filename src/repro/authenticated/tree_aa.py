"""TreeAA in the authenticated setting: ``t < n/2`` (the paper's §7 note).

"Our reduction is independent of the number of corrupted parties: whenever
protocol RealAA achieves AA on ``[1, 2·|V(T)|]``, our protocol TreeAA
achieves AA on the input space tree ``T``" — demonstrated here by swapping
the real-valued engine.  With the Dolev–Strong exact-AA engine the two
stages each cost ``t + 1`` rounds, tolerate every ``t < n/2``, and (since
the engine is *exact*) the honest parties obtain identical paths and
identical output vertices — AA with room to spare.

Round-optimality at ``t < n/2`` would require Proxcensus [22] as the
engine (out of scope here); this module reproduces the *reduction* claim,
which is the paper's point.
"""

from __future__ import annotations

from typing import Optional

from ..core.closest_int import closest_int
from ..core.errors import ValidityViolationError, check_index_in_range
from ..net.messages import Inbox, Outbox, PartyId
from ..net.protocol import PhasedParty, ProtocolParty
from ..trees.euler import EulerList, list_construction
from ..trees.labeled_tree import Label, LabeledTree
from ..trees.paths import TreePath, diameter
from ..trees.projection import project_onto_path
from .exact_aa import ExactRealAAParty, check_authenticated_resilience
from .signatures import SignatureAuthority


class AuthPathsFinderParty(ExactRealAAParty):
    """PathsFinder with the exact engine: ``t + 1`` rounds, ``t < n/2``."""

    def __init__(
        self,
        pid: PartyId,
        n: int,
        t: int,
        authority: SignatureAuthority,
        tree: LabeledTree,
        input_vertex: Label,
        root: Optional[Label] = None,
    ) -> None:
        tree.require_vertex(input_vertex)
        euler = list_construction(tree, root)
        index = euler.first_occurrence(input_vertex)
        # Domain separation: this phase's signatures must be useless in the
        # projection phase (and vice versa).
        super().__init__(pid, n, t, authority, float(index), session="tree-aa/pf")
        self.tree = tree
        self.euler: EulerList = euler

    def _final_output(self) -> TreePath:
        index = closest_int(self.value)
        check_index_in_range(index, len(self.euler), "L", self.value)
        return TreePath(self.euler.rooted.root_path(self.euler[index]))


class AuthProjectionPhaseParty(ExactRealAAParty):
    """Phase 2 with the exact engine; the line-6 clamp kept for symmetry
    (unreachable with an exact engine — all paths coincide)."""

    def __init__(
        self,
        pid: PartyId,
        n: int,
        t: int,
        authority: SignatureAuthority,
        tree: LabeledTree,
        path: TreePath,
        input_vertex: Label,
    ) -> None:
        projection = project_onto_path(tree, input_vertex, path)
        super().__init__(
            pid,
            n,
            t,
            authority,
            float(path.position_of(projection)),
            session="tree-aa/proj",
        )
        self.path = path

    def _final_output(self) -> Label:
        index = closest_int(self.value)
        if index < 0:
            raise ValidityViolationError(
                f"closestInt({self.value}) = {index} below the path start — "
                "engine validity violated"
            )
        if index >= len(self.path):
            return self.path.end
        return self.path[index]


class AuthTreeAAParty(ProtocolParty):
    """TreeAA with the authenticated exact-AA engine (``t < n/2``)."""

    def __init__(
        self,
        pid: PartyId,
        n: int,
        t: int,
        authority: SignatureAuthority,
        tree: LabeledTree,
        input_vertex: Label,
        root: Optional[Label] = None,
    ) -> None:
        super().__init__(pid, n, t)
        check_authenticated_resilience(n, t)
        tree.require_vertex(input_vertex)
        self.tree = tree
        self.authority = authority
        self.signer = authority.signer(pid)
        self.input_vertex = input_vertex
        self.root = tree.root_label if root is None else root
        self.paths_finder: Optional[AuthPathsFinderParty] = None
        self.projection_phase: Optional[AuthProjectionPhaseParty] = None
        self._inner: Optional[PhasedParty] = None
        if diameter(tree) <= 1:
            self.output = input_vertex
            return
        phase_rounds = t + 1

        def make_phase1(_previous: object) -> ProtocolParty:
            self.paths_finder = AuthPathsFinderParty(
                pid, n, t, authority, tree, input_vertex, root=self.root
            )
            return self.paths_finder

        def make_phase2(path: TreePath) -> ProtocolParty:
            self.projection_phase = AuthProjectionPhaseParty(
                pid, n, t, authority, tree, path, input_vertex
            )
            return self.projection_phase

        self._inner = PhasedParty(
            pid,
            n,
            t,
            phases=[(phase_rounds, make_phase1), (phase_rounds, make_phase2)],
        )

    @property
    def duration(self) -> int:
        return 0 if self._inner is None else self._inner.duration

    def messages_for_round(self, round_index: int) -> Outbox:
        if self._inner is None:
            return {}
        return self._inner.messages_for_round(round_index)

    def receive_round(self, round_index: int, inbox: Inbox) -> None:
        if self._inner is None:
            return
        self._inner.receive_round(round_index, inbox)
        if self._inner.output is not None:
            self.output = self._inner.output


def run_auth_tree_aa(
    tree: LabeledTree,
    inputs,
    t: int,
    adversary=None,
    root: Optional[Label] = None,
):
    """Run authenticated TreeAA end to end; returns a
    :class:`~repro.core.api.TreeAAOutcome`."""
    from ..core.api import TreeAAOutcome, _evaluate_tree_outputs
    from ..net.runner import run_protocol

    n = len(inputs)
    authority = SignatureAuthority()
    execution = run_protocol(
        n,
        t,
        lambda pid: AuthTreeAAParty(
            pid, n, t, authority, tree, inputs[pid], root=root
        ),
        adversary=adversary,
    )
    honest_inputs = {pid: inputs[pid] for pid in sorted(execution.honest)}
    honest_outputs = execution.honest_outputs
    verdicts = _evaluate_tree_outputs(tree, honest_inputs, honest_outputs)
    return TreeAAOutcome(
        execution=execution,
        tree=tree,
        honest_inputs=honest_inputs,
        honest_outputs=honest_outputs,
        rounds=execution.trace.rounds_executed,
        **verdicts,
    )
