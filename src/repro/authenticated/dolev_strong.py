"""Dolev–Strong authenticated broadcast ([13]) — exact agreement, any t.

With signatures, *exact* Byzantine broadcast is achievable for any number
of corruptions in ``t + 1`` rounds: a value travels with a chain of
signatures from distinct parties (the origin's first); a party accepts a
value seen with ``r + 1`` signatures by the end of round ``r``, appends
its own signature, and relays.  After round ``t`` every honest party holds
the same *extracted set* per origin:

* a chain of ``t + 1`` signatures contains an honest one, whose owner
  accepted earlier and relayed to everyone — so late acceptances propagate;
* an honest origin signs exactly one value, and its signature is
  unforgeable — so only that value is ever extracted.

The broadcast output is the extracted value if the set is a singleton and
``⊥`` otherwise (an equivocating origin yields ``⊥`` *consistently*).

:class:`ParallelDolevStrong` runs the ``n`` simultaneous instances one
AA iteration needs; honest relaying is capped at two values per instance
(enough to prove equivocation, and it keeps traffic polynomial).
"""

from __future__ import annotations

from typing import Any, Dict, List, Set, Tuple

from ..net.messages import Inbox, Outbox, PartyId
from ..net.protocol import ProtocolParty
from .signatures import Signature, SignatureAuthority, Signer

#: The ⊥ output of an equivocating (or silent) origin.
BOTTOM = None


def _chain_valid(
    authority: SignatureAuthority,
    session: Any,
    origin: PartyId,
    value: Any,
    chain: Any,
    n: int,
    minimum: int,
) -> bool:
    """Whether *chain* is ≥ *minimum* distinct valid signatures on the
    instance message, the origin's among them.

    The *session* tag is part of the signed message — domain separation,
    so signatures issued in one exchange (e.g. TreeAA's PathsFinder phase)
    can never be replayed into another (the projection phase).  The test
    suite contains the regression that found this.
    """
    if not isinstance(chain, tuple) or len(chain) < minimum:
        return False
    message = ("ds", session, origin, value)
    signers: Set[PartyId] = set()
    for signature in chain:
        if not isinstance(signature, Signature):
            return False
        if not 0 <= signature.signer < n:
            return False
        if not authority.verify(signature, message):
            return False
        signers.add(signature.signer)
    return len(signers) >= minimum and origin in signers


class ParallelDolevStrong:
    """All ``n`` Dolev–Strong instances of one exact-AA exchange.

    Drive with one :meth:`messages_for_round` / :meth:`receive_round` pair
    per round for rounds ``0 .. t``; read :meth:`outputs` afterwards.
    """

    def __init__(
        self,
        pid: PartyId,
        n: int,
        t: int,
        authority: SignatureAuthority,
        signer: Signer,
        own_value: Any,
        validate_value=None,
        session: Any = 0,
    ) -> None:
        if t < 0 or n < 1:
            raise ValueError("need n >= 1 and t >= 0")
        hash(session)
        self.pid = pid
        self.n = n
        self.t = t
        self.session = session
        self.authority = authority
        self.signer = signer
        self.own_value = own_value
        self._validate = validate_value
        #: per origin: accepted values -> the chain we hold for them
        self._accepted: Dict[PartyId, Dict[Any, Tuple[Signature, ...]]] = {
            origin: {} for origin in range(n)
        }
        #: values accepted this round, to relay next round
        self._to_relay: List[Tuple[PartyId, Any, Tuple[Signature, ...]]] = []

    @property
    def rounds(self) -> int:
        return self.t + 1

    # ------------------------------------------------------------------

    def messages_for_round(self, round_index: int) -> Outbox:
        payload_items: List[Tuple[PartyId, Any, Tuple[Signature, ...]]] = []
        if round_index == 0:
            message = ("ds", self.session, self.pid, self.own_value)
            chain = (self.signer.sign(message),)
            self._accepted[self.pid][self.own_value] = chain
            payload_items.append((self.pid, self.own_value, chain))
        else:
            for origin, value, chain in self._to_relay:
                extended = chain + (
                    self.signer.sign(("ds", self.session, origin, value)),
                )
                payload_items.append((origin, value, extended))
            self._to_relay = []
        if not payload_items:
            return {}
        payload = ("dsmsg", self.session, round_index, tuple(payload_items))
        return {recipient: payload for recipient in range(self.n)}

    def receive_round(self, round_index: int, inbox: Inbox) -> None:
        minimum = round_index + 1
        for sender, payload in inbox.items():
            if (
                not isinstance(payload, tuple)
                or len(payload) != 4
                or payload[0] != "dsmsg"
                or payload[1] != self.session
                or not isinstance(payload[3], tuple)
            ):
                continue
            for item in payload[3]:
                if not isinstance(item, tuple) or len(item) != 3:
                    continue
                origin, value, chain = item
                self._consider(origin, value, chain, minimum, round_index)

    def _consider(
        self, origin: Any, value: Any, chain: Any, minimum: int, round_index: int
    ) -> None:
        if not isinstance(origin, int) or not 0 <= origin < self.n:
            return
        try:
            hash(value)
        except TypeError:
            return
        if self._validate is not None and not self._validate(value):
            return
        known = self._accepted[origin]
        if value in known:
            return
        if len(known) >= 2:
            return  # two values already prove equivocation; output is ⊥
        if not _chain_valid(
            self.authority, self.session, origin, value, chain, self.n, minimum
        ):
            return
        known[value] = tuple(chain)
        if round_index < self.t:
            self._to_relay.append((origin, value, tuple(chain)))

    # ------------------------------------------------------------------

    def outputs(self) -> Dict[PartyId, Any]:
        """Per origin: the agreed value, or ``BOTTOM`` for 0 or ≥ 2 values."""
        result: Dict[PartyId, Any] = {}
        for origin in range(self.n):
            accepted = self._accepted[origin]
            if len(accepted) == 1:
                result[origin] = next(iter(accepted))
            else:
                result[origin] = BOTTOM
        return result


class DolevStrongParty(ProtocolParty):
    """A single Dolev–Strong broadcast as a standalone protocol.

    Party *origin* broadcasts *value*; every party outputs the agreed
    value (or ``BOTTOM``).  For unit-testing the broadcast in isolation.
    """

    def __init__(
        self,
        pid: PartyId,
        n: int,
        t: int,
        authority: SignatureAuthority,
        origin: PartyId,
        value: Any = None,
    ) -> None:
        super().__init__(pid, n, t)
        self.origin = origin
        # The sentinel is an input *value* for non-origin parties, not a
        # wire message; its tuple shape trips the payload heuristic.
        own = value if pid == origin else ("unused", pid)  # protolint: disable=PL003
        self._engine = ParallelDolevStrong(
            pid, n, t, authority, authority.signer(pid), own
        )

    @property
    def signer(self) -> Signer:
        return self._engine.signer

    @property
    def duration(self) -> int:
        return self.t + 1

    def messages_for_round(self, round_index: int) -> Outbox:
        outbox = self._engine.messages_for_round(round_index)
        if self.pid != self.origin and round_index == 0:
            return {}  # only the designated origin opens an instance
        return outbox

    def receive_round(self, round_index: int, inbox: Inbox) -> None:
        self._engine.receive_round(round_index, inbox)
        if round_index == self.duration - 1:
            self.output = self._engine.outputs()[self.origin]
