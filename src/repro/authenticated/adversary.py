"""Attacks on the authenticated protocols.

The canonical attack on authenticated broadcast is origin equivocation:
sign two values and show each to half the network.  Dolev–Strong defeats
it — honest relays spread both signed values, every honest party extracts
both, and the output is a consistent ⊥.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from ..adversary.base import PuppetDrivingAdversary
from ..net.messages import Outbox, PartyId
from ..net.network import AdversaryView
from .signatures import Signer


class DSEquivocatorAdversary(PuppetDrivingAdversary):
    # statics: batch-unsupported(signed equivocation needs per-party signer state)
    """Corrupted origins sign *two* values in round 0 and split delivery.

    ``values(pid)`` returns the ``(low_half_value, high_half_value)`` pair
    a corrupted origin equivocates between.  Other rounds are faithful
    (puppet-driven), so the honest relay machinery is fully exercised.
    Requires the puppets to expose ``.signer`` (all authenticated parties
    here do).
    """

    def __init__(
        self,
        values: Callable[[PartyId], Any],
        corrupt: Optional[Sequence[PartyId]] = None,
    ) -> None:
        super().__init__(corrupt)
        self._values = values

    def transform_outbox(
        self, pid: PartyId, view: AdversaryView, faithful: Outbox
    ) -> Outbox:
        # Detect a Dolev–Strong round-0 send in the faithful traffic.
        sample = next(iter(faithful.values()), None)
        if (
            not isinstance(sample, tuple)
            or len(sample) != 4
            or sample[0] != "dsmsg"
            or sample[2] != 0
        ):
            return faithful
        session = sample[1]
        puppet = self.puppets.get(pid)
        signer: Optional[Signer] = getattr(puppet, "signer", None)
        if signer is None:
            return faithful
        low_value, high_value = self._values(pid)
        low_chain = (signer.sign(("ds", session, pid, low_value)),)
        high_chain = (signer.sign(("ds", session, pid, high_value)),)
        half = view.n // 2
        out: Outbox = {}
        for recipient in range(view.n):
            value, chain = (
                (low_value, low_chain)
                if recipient < half
                else (high_value, high_chain)
            )
            out[recipient] = ("dsmsg", session, 0, ((pid, value, chain),))
        return out


class SignatureForgeryAdversary(PuppetDrivingAdversary):
    # statics: batch-unsupported(hand-crafted forged signatures have no batch equivalent)
    """Try to forge an honest party's signature on a planted value.

    Structurally doomed — the adversary holds no honest
    :class:`~repro.authenticated.signatures.Signer` — but the attempt
    (hand-crafted ``Signature`` objects with guessed tokens) must bounce
    off verification, which the tests assert.
    """

    def __init__(
        self,
        forged_origin: PartyId,
        planted_value: Any,
        corrupt: Optional[Sequence[PartyId]] = None,
    ) -> None:
        super().__init__(corrupt)
        self.forged_origin = forged_origin
        self.planted_value = planted_value

    def transform_outbox(
        self, pid: PartyId, view: AdversaryView, faithful: Outbox
    ) -> Outbox:
        from .signatures import Signature

        forged_chain = tuple(
            Signature(signer=self.forged_origin, token=guess)
            for guess in range(32)
        )
        item = (self.forged_origin, self.planted_value, forged_chain)
        out = dict(faithful)
        for recipient in range(view.n):
            existing = out.get(recipient)
            if (
                isinstance(existing, tuple)
                and len(existing) == 4
                and existing[0] == "dsmsg"
            ):
                out[recipient] = (
                    "dsmsg",
                    existing[1],
                    existing[2],
                    tuple(existing[3]) + (item,),
                )
            else:
                out[recipient] = ("dsmsg", 0, view.round_index, (item,))
        return out
