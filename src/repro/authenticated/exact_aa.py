"""Exact real-valued agreement from Dolev–Strong, for ``t < n/2``.

With authenticated broadcast every honest party extracts the *identical*
value (or ⊥) per origin, so one broadcast exchange already yields identical
multisets — and any deterministic aggregation gives **exact** agreement.
Validity needs care: up to ``t`` of the extracted values are Byzantine, and
for ``n/3 ≤ t < n/2`` the classic symmetric ``t``-trim can exceed the
multiset.  But the multiset pins the Byzantine count: at least ``n − t`` of
its ``m`` entries are honest, so at most ``k = m − (n − t) ≤ t`` are not,
and trimming ``k`` from each side leaves ``≥ 2(n − t) − m ≥ n − 2t ≥ 1``
values inside the honest range.

This is the drop-in engine for the paper's authenticated-setting note: not
round-*optimal* (Dolev–Strong costs ``t + 1`` rounds; the paper points to
Proxcensus [22] for ``t = (1−c)n/2`` round optimality), but a *correct*
exact-AA block at the ``t < n/2`` threshold — which is all the TreeAA
reduction needs.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

from ..net.messages import Inbox, Outbox, PartyId
from ..net.protocol import ProtocolParty
from ..protocols.realaa import is_real
from .dolev_strong import BOTTOM, ParallelDolevStrong
from .signatures import SignatureAuthority, Signer


def check_authenticated_resilience(n: int, t: int) -> None:
    """Require the authenticated-setting threshold ``t < n/2``."""
    if n < 1 or t < 0:
        raise ValueError("need n >= 1 and t >= 0")
    if 2 * t >= n:
        raise ValueError(
            f"authenticated AA requires t < n/2 (got n={n}, t={t})"
        )


def exact_trimmed_mean(values: List[float], n: int, t: int) -> float:
    """Aggregate an *identical-across-honest* multiset, validly.

    Trims ``k = m − (n − t)`` from each side (the sharpest bound on the
    Byzantine entries the multiset's own size certifies), then averages.
    """
    m = len(values)
    if m < n - t:
        raise ValueError(
            f"extracted only {m} values but >= n - t = {n - t} are guaranteed"
        )
    k = m - (n - t)
    ordered = sorted(values)
    if k > 0:
        ordered = ordered[k : m - k]
    # Clamped: the float mean may land one ulp outside the envelope.
    return min(max(math.fsum(ordered) / len(ordered), ordered[0]), ordered[-1])


class ExactRealAAParty(ProtocolParty):
    """Exact agreement on ℝ in ``t + 1`` rounds, tolerating ``t < n/2``.

    All parties Dolev–Strong their inputs in parallel; the output is the
    :func:`exact_trimmed_mean` of the extracted multiset — bit-identical
    across honest parties.
    """

    def __init__(
        self,
        pid: PartyId,
        n: int,
        t: int,
        authority: SignatureAuthority,
        input_value: float,
        session: Any = "exact-aa",
    ) -> None:
        super().__init__(pid, n, t)
        check_authenticated_resilience(n, t)
        if not is_real(input_value):
            raise ValueError(f"input must be a finite real, got {input_value!r}")
        self.authority = authority
        self.signer: Signer = authority.signer(pid)
        self.input_value = float(input_value)
        #: The extracted per-origin values (diagnostics; set at the end).
        self.extracted: Optional[Dict[PartyId, Any]] = None
        self._engine = ParallelDolevStrong(
            pid,
            n,
            t,
            authority,
            self.signer,
            float(input_value),
            validate_value=is_real,
            session=session,
        )

    @property
    def duration(self) -> int:
        return self.t + 1

    def messages_for_round(self, round_index: int) -> Outbox:
        if round_index >= self.duration:
            return {}
        return self._engine.messages_for_round(round_index)

    def receive_round(self, round_index: int, inbox: Inbox) -> None:
        if round_index >= self.duration:
            return
        self._engine.receive_round(round_index, inbox)
        if round_index == self.duration - 1:
            self.extracted = self._engine.outputs()
            values = [
                float(v) for v in self.extracted.values() if v is not BOTTOM
            ]
            self.value = exact_trimmed_mean(values, self.n, self.t)
            self.output = self._final_output()

    def _final_output(self) -> Any:
        """Hook: map the exact real value to the protocol's output."""
        return self.value
