"""Declarative adversary descriptions for the batch backend.

The reference simulator drives adversaries as objects that inspect and
rewrite per-message dicts.  The batch engine cannot afford per-message
Python objects, so each supported strategy instead *describes itself* as a
:class:`BatchAdversarySpec` via :meth:`repro.adversary.base.Adversary
.batch_spec` — a narrow, array-friendly contract.  The kinds in
:data:`CLASS_KINDS` share one crucial property: corrupted parties never
equivocate, so each party (honest or corrupted) either broadcasts its
faithful protocol message to a deterministic recipient set or stays
silent, which is what lets the kernel collapse parties into classes
(:mod:`repro.engine.kernel`).  The equivocating kinds (chaos, burn)
carry their constructor parameters instead; the dense engine
(:mod:`repro.engine.dense`) rebuilds the adversary from them and replays
it organically against puppet party objects.

This module is NumPy-free on purpose: adversary modules import it lazily
to build their specs, and must not drag the array stack into executions
that never use it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Optional, Tuple

from .errors import UnsupportedBackendError

#: No adversary at all (also what :class:`~repro.adversary.base.NoAdversary`
#: reduces to): nothing is corrupted, every party is honest.
KIND_NONE = "none"
#: Corrupted parties never send anything (omission at round 0).
KIND_SILENT = "silent"
#: Corrupted parties follow the protocol to the letter.
KIND_PASSIVE = "passive"
#: Faithful until ``crash_round``; mid-send crash in that round (only
#: recipients with ids below ``partial_to`` still served); silent after.
KIND_CRASH = "crash"
#: Seeded per-round behaviour sampling (or a fixed script) per corrupted
#: party — :class:`~repro.adversary.chaos.ChaosAdversary` replayed
#: deterministically.  ``params`` carries ``seed`` / ``weights`` /
#: ``script``.  Dense-engine only: chaos payloads equivocate (stale /
#: junk / mirror), which breaks the class-collapse invariant.
KIND_CHAOS = "chaos"
#: The RealAA burn attack — equivocating value plants per iteration
#: (:class:`~repro.adversary.realaa_attacks.BurnScheduleAdversary`).
#: ``params`` carries ``schedule`` / ``direction`` / ``reuse_burners``.
#: Dense-engine only, for the same reason as :data:`KIND_CHAOS`.
KIND_BURN = "burn"

_KINDS = (KIND_NONE, KIND_SILENT, KIND_PASSIVE, KIND_CRASH, KIND_CHAOS, KIND_BURN)

#: Kinds whose parties never equivocate — replayable by the class-collapse
#: kernel.  The remaining kinds route to the dense per-party engine.
CLASS_KINDS = frozenset((KIND_NONE, KIND_SILENT, KIND_PASSIVE, KIND_CRASH))


@dataclass(frozen=True)
class BatchAdversarySpec:
    """Everything the batch kernel needs to replay a supported adversary.

    ``corrupted`` is the explicitly requested corrupt set, or ``None`` for
    the reference default (the last ``t`` ids, resolved once ``n`` and the
    network budget are known).  ``crash_round`` / ``partial_to`` only
    matter for :data:`KIND_CRASH` and mirror
    :class:`~repro.adversary.strategies.CrashAdversary` exactly.

    ``params`` is the kind-specific constructor payload for the dense
    kinds (:data:`KIND_CHAOS` / :data:`KIND_BURN`), stored as a tuple of
    ``(name, value)`` pairs so the spec stays hashable and this module
    stays NumPy-free.  The dense engine reconstructs a *fresh* adversary
    instance from these parameters — replaying the strategy's RNG draws
    from the seed instead of sharing the caller's (already consumed)
    instance state.
    """

    kind: str = KIND_NONE
    corrupted: Optional[FrozenSet[int]] = None
    crash_round: int = 0
    partial_to: int = 0
    params: Optional[Tuple[Tuple[str, Any], ...]] = None

    def param_dict(self) -> dict:
        """``params`` as a plain dict (empty when no params were given)."""
        return dict(self.params) if self.params else {}

    def __post_init__(self) -> None:
        """Reject kinds the kernel does not implement (a harness bug)."""
        if self.kind not in _KINDS:
            raise ValueError(f"unknown batch adversary kind {self.kind!r}")


def resolve_batch_spec(adversary: Optional[Any]) -> Optional[BatchAdversarySpec]:
    """The :class:`BatchAdversarySpec` of *adversary* (``None`` = fault-free).

    Raises :class:`~repro.engine.errors.UnsupportedBackendError` when the
    strategy declares no batch equivalent — the refusal contract of the
    backend: unsupported features fail loudly, never silently diverge.
    """
    if adversary is None:
        return None
    hook = getattr(adversary, "batch_spec", None)
    if hook is None:
        raise UnsupportedBackendError(
            f"{type(adversary).__name__} declares no batch_spec(); "
            "use backend='reference'"
        )
    spec = hook()
    if not isinstance(spec, BatchAdversarySpec):
        raise UnsupportedBackendError(
            f"{type(adversary).__name__}.batch_spec() returned "
            f"{type(spec).__name__}, expected BatchAdversarySpec"
        )
    return spec
