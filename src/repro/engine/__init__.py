"""Batched (vectorized) execution backend for large-``n`` experiments.

``repro.engine`` reruns the protocols of :mod:`repro.core` as NumPy array
operations instead of per-party message objects.  Two engines share the
work: the class-collapse kernel (:class:`BatchExecution`) turns the
reference engine's Θ(n³)-messages round loop into a handful of Θ(n)
array updates for non-equivocating adversaries, and the dense per-party
engine (:class:`DenseExecution`) replays fault plans and the
equivocating chaos/burn adversaries with ``(n, n)`` array state.  The
contract is strict observational equivalence: for every supported
configuration the batch backend must be indistinguishable from
``backend="reference"`` (outputs, verdicts, trace counters, metrics
rows, per-party diagnostics, and error behaviour); anything it cannot
replicate raises :class:`UnsupportedBackendError` instead of diverging.

The error and spec modules are NumPy-free and imported eagerly so that
adversary hooks and the resilience lab can reference them cheaply; the
NumPy-backed engine itself loads lazily on first attribute access.
"""

from __future__ import annotations

from typing import Any

from .errors import UnsupportedBackendError
from .spec import (
    CLASS_KINDS,
    KIND_BURN,
    KIND_CHAOS,
    KIND_CRASH,
    KIND_NONE,
    KIND_PASSIVE,
    KIND_SILENT,
    BatchAdversarySpec,
    resolve_batch_spec,
)

__all__ = [
    "BatchAdversarySpec",
    "BatchExecution",
    "BatchMetrics",
    "BatchSynchronousEngine",
    "CLASS_KINDS",
    "DenseExecution",
    "KIND_BURN",
    "KIND_CHAOS",
    "KIND_CRASH",
    "KIND_NONE",
    "KIND_PASSIVE",
    "KIND_SILENT",
    "UnsupportedBackendError",
    "resolve_batch_spec",
]

_LAZY_BACKEND = {
    "BatchSynchronousEngine": "backend",
    "BatchExecution": "kernel",
    "DenseExecution": "dense",
    "BatchMetrics": "metrics",
}


def __getattr__(name: str) -> Any:
    """Load the NumPy-backed engine classes on first use (PEP 562)."""
    module_name = _LAZY_BACKEND.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
