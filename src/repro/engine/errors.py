"""Error types of the batched execution backend.

Kept free of third-party imports so that modules which only need to
*mention* the batch backend (adversary hooks, the resilience lab) can do
so without pulling in NumPy.
"""

from __future__ import annotations


class UnsupportedBackendError(RuntimeError):
    """A requested feature cannot be replayed by the batch backend.

    The batched engine reproduces the reference simulator bit-for-bit for
    the features it supports; anything it cannot express (chaos scripts,
    fault plans, observers, equivocating adversaries) refuses loudly with
    this error instead of silently diverging.
    """
