"""Dense per-party batch engine — fault plans and equivocating adversaries.

The class-collapse kernel (:mod:`repro.engine.kernel`) relies on one
structural fact: no supported strategy equivocates, so parties partition
into a handful of message-indistinguishable classes.  Fault plans and the
equivocating adversaries (:class:`~repro.adversary.chaos.ChaosAdversary`,
:class:`~repro.adversary.realaa_attacks.BurnScheduleAdversary`) break
exactly that fact — per-(sender, recipient) drops and per-recipient value
plants make every party's view unique.

:class:`DenseExecution` is the batch backend's second engine for those
configurations.  It keeps the *honest* protocol state as dense ``(n,)`` /
``(n, n)`` NumPy arrays (values, BAD matrix, delivery masks, echo/support
count matrices) and updates them with array reductions, while driving the
*adversary* organically: a fresh strategy instance is rebuilt from its
:class:`~repro.engine.spec.BatchAdversarySpec` parameters, handed real
puppet party objects, and asked for its Byzantine traffic each round —
replaying the exact RNG draw sequence of a fresh reference run.  A real
:class:`~repro.net.faults.FaultInjector` is stepped in the reference's
(sender, recipient) transmission order so drop/duplicate/corrupt draws
land on the same messages.

Equivalence remains exact, not approximate — the same contract as the
class kernel, enforced by the same differential conformance suite.  The
honest-side array update leans on one invariant of the supported set,
checked defensively at parse time: for each gradecast origin and
iteration, at most one distinct real value ever circulates (burn plants a
single value per burner; chaos junk is filtered by validation, and its
stale/mirror payloads replay existing traffic).  A conflicting claim —
impossible for the supported strategies — raises
:class:`~repro.engine.errors.UnsupportedBackendError` rather than
risking divergence.

Cost: with an adversary attached the per-round Python traffic for the
corrupted parties is reference-like (that is the point — the adversary
*is* the reference object), but honest state stays in arrays; with only a
fault plan (no adversary) the round is the injector's draw loop plus
array updates.  The class kernel remains the large-``n`` fast path.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from ..net.faults import FaultInjector, FaultPlan
from ..net.network import (
    AdversaryView,
    ByzantineModelError,
    ExecutionTrace,
    TraceLevel,
    payload_units,
)
from ..protocols.realaa import is_real
from .errors import UnsupportedBackendError
from .kernel import (
    ClassIterationRecord,
    ClassPhaseOutcome,
    PartyClass,
    RealAAPhaseResult,
)
from .spec import (
    KIND_BURN,
    KIND_CHAOS,
    KIND_CRASH,
    KIND_NONE,
    KIND_PASSIVE,
    KIND_SILENT,
    BatchAdversarySpec,
)


def _build_adversary(spec: Optional[BatchAdversarySpec]) -> Optional[Any]:
    """A fresh adversary instance replaying *spec* (``None`` = fault-free).

    The caller's adversary object has already consumed RNG draws (and may
    have run under the reference engine first); rebuilding from the spec's
    constructor parameters reproduces the draw stream of a fresh run,
    which is what the reference engine sees.
    """
    if spec is None or spec.kind == KIND_NONE:
        return None
    corrupt = None if spec.corrupted is None else sorted(spec.corrupted)
    if spec.kind == KIND_SILENT:
        from ..adversary.strategies import SilentAdversary

        return SilentAdversary(corrupt=corrupt)
    if spec.kind == KIND_PASSIVE:
        from ..adversary.base import PassiveAdversary

        return PassiveAdversary(corrupt=corrupt)
    if spec.kind == KIND_CRASH:
        from ..adversary.strategies import CrashAdversary

        return CrashAdversary(
            spec.crash_round, partial_to=spec.partial_to, corrupt=corrupt
        )
    if spec.kind == KIND_CHAOS:
        from ..adversary.chaos import ChaosAdversary

        params = spec.param_dict()
        script = params.get("script")
        return ChaosAdversary(
            seed=params.get("seed", 0),
            weights=dict(params.get("weights") or ()),
            corrupt=corrupt,
            script=None if script is None else list(script),
        )
    if spec.kind == KIND_BURN:
        from ..adversary.realaa_attacks import BurnScheduleAdversary

        params = spec.param_dict()
        return BurnScheduleAdversary(
            list(params.get("schedule") or ()),
            corrupt=corrupt,
            direction=params["direction"],
            reuse_burners=params["reuse_burners"],
        )
    raise UnsupportedBackendError(
        f"no dense replay for adversary kind {spec.kind!r}"
    )


def _hashable(value: Any) -> bool:
    try:
        hash(value)
    except TypeError:
        return False
    return True


class DenseExecution:
    """One dense batched execution: real adversary, array-state honest side.

    Drop-in for :class:`~repro.engine.kernel.BatchExecution` where the
    backend drives RealAA phases: same corruption bookkeeping (identical
    :class:`~repro.net.network.ByzantineModelError` messages and order),
    same :class:`~repro.net.network.ExecutionTrace` accounting, same
    :class:`~repro.engine.kernel.RealAAPhaseResult` shape (every honest
    party is its own singleton class — views are per-party here).
    Corrupted parties are *real* protocol objects in
    :attr:`party_objects`; the backend reads their outputs directly
    instead of simulating puppet state.

    ``party_factory`` builds the puppet object for a corrupted pid; the
    backend validates all inputs beforehand, so construction cannot raise
    in configurations where the reference engine would have started.
    """

    def __init__(
        self,
        n: int,
        t_net: int,
        party_t: int,
        spec: Optional[BatchAdversarySpec],
        trace_level: TraceLevel = TraceLevel.FULL,
        fault_plan: Optional[FaultPlan] = None,
        party_factory: Optional[Callable[[int], Any]] = None,
    ) -> None:
        self.n = n
        self.t_net = t_net
        self.party_t = party_t
        self.spec = spec
        self.trace = ExecutionTrace(level=TraceLevel(trace_level))
        #: Optional :class:`~repro.engine.metrics.BatchMetrics` sink,
        #: attached by the backend when an observer is being replayed.
        self.metrics: Optional[Any] = None
        self.corrupted: Set[int] = set()
        self.party_objects: Dict[int, Any] = {}
        self._round = 0
        #: Late duplicates from the fault plan: recipient → sender →
        #: payload, delivered next round unless superseded (reference
        #: carryover semantics; persists across phase boundaries).
        self._carryover: Dict[int, Dict[int, Any]] = {}
        self.injector: Optional[FaultInjector] = (
            FaultInjector(fault_plan) if fault_plan is not None else None
        )
        self.adversary = _build_adversary(spec)
        self._register_corruptions(party_factory)
        self._honest_ids = [
            pid for pid in range(n) if pid not in self.corrupted
        ]
        self._hmask = np.zeros(n, dtype=bool)
        self._hmask[self._honest_ids] = True

    # -- corruption bookkeeping ----------------------------------------

    def _register_corruptions(
        self, party_factory: Optional[Callable[[int], Any]]
    ) -> None:
        spec = self.spec
        if spec is None or spec.kind == KIND_NONE:
            return
        if spec.corrupted is not None:
            requested = set(spec.corrupted)
        else:
            requested = set(range(self.n - self.t_net, self.n))
        if not requested:
            return
        if len(requested) > self.t_net:
            raise ByzantineModelError(
                f"adversary requested {len(requested)} "
                f"corruptions but the budget is t={self.t_net}"
            )
        for pid in sorted(requested):
            if not 0 <= pid < self.n:
                raise ByzantineModelError(f"cannot corrupt unknown party {pid}")
            self.corrupted.add(pid)
            self.trace.corruption_rounds[pid] = 0
        if party_factory is not None:
            self.party_objects = {
                pid: party_factory(pid) for pid in sorted(self.corrupted)
            }
        if self.adversary is not None:
            self.adversary.on_corrupted(dict(self.party_objects))

    @property
    def honest_set(self) -> Set[int]:
        """Ids of the honest (never corrupted) parties."""
        return set(range(self.n)) - self.corrupted

    @property
    def has_honest(self) -> bool:
        """Whether at least one party is honest (else zero rounds run)."""
        return len(self.corrupted) < self.n

    def retire_dead(self, dead: np.ndarray) -> None:
        """No-op: dense puppets are real objects and die organically.

        The adversary clone pops a puppet whose ``receive_round`` raised,
        exactly as the reference
        :class:`~repro.adversary.base.PuppetDrivingAdversary` does; there
        is no class partition to refine.
        """

    def finalize_trace(self) -> None:
        """Copy the fault-injector counters onto the trace (success path).

        The reference engine does this once in ``run()`` after the last
        round — a raising round leaves the counters at zero, which this
        method preserves by only being called after a completed run.
        """
        if self.injector is not None:
            self.trace.faults_dropped = self.injector.dropped
            self.trace.faults_duplicated = self.injector.duplicated
            self.trace.faults_corrupted = self.injector.corrupted

    def copy_diagnostics(self, adversary: Optional[Any]) -> None:
        """Copy the replay clone's diagnostics to the caller's instance.

        A reference run would have populated the caller's own ``log`` /
        ``burned`` / ``burn_log``; the dense engine ran a fresh clone
        instead, so mirror those fields back (replacing, not appending —
        they describe *this* run).  Puppet objects stay on the clone.
        """
        clone = self.adversary
        if clone is None or adversary is None:
            return
        if hasattr(clone, "log") and hasattr(adversary, "log"):
            adversary.log[:] = clone.log
        if hasattr(clone, "burned") and hasattr(adversary, "burned"):
            adversary.burned.clear()
            adversary.burned.update(clone.burned)
        if hasattr(clone, "burn_log") and hasattr(adversary, "burn_log"):
            adversary.burn_log[:] = clone.burn_log

    # -- one network round ----------------------------------------------

    def _network_round(
        self, payloads: Dict[int, Any], honest_units: Dict[int, int]
    ) -> Tuple[Dict[int, Dict[int, Any]], np.ndarray, Tuple[int, int, int, int, int]]:
        """Drive one synchronous round below the protocol layer.

        *payloads* maps each honest pid to the single object it broadcasts
        (reference parties share one payload object across recipients);
        *honest_units* its closed-form payload-unit count.  Performs, in
        reference order: adversary reaction (with real puppet objects),
        Byzantine traffic validation (identical error messages), fault
        injection (one ``transmit`` per (sender, recipient) in sorted
        order, preserving the RNG draw stream), trace accounting on the
        *sent* traffic, corrupted-party inbox assembly (byzantine first,
        honest ascending, carryover last — reference delivery order) and
        ``observe_delivery``.

        Returns ``(byzantine_out, delivered, stats)`` where ``delivered``
        is the honest faithful-delivery mask ``[sender, recipient]`` —
        fault-corrupted payloads are mask ``False`` because every
        :data:`~repro.net.faults.CORRUPTION_MENU` entry is inert for the
        honest parsers (they reach puppet inboxes verbatim, though) — and
        ``stats`` is ``(round_index, honest_sent, byz_sent, honest_units,
        byz_units)`` for the metrics sink.
        """
        n = self.n
        round_index = self._round
        clone = self.adversary
        honest_ids = self._honest_ids

        honest_out: Optional[Dict[int, Dict[int, Any]]] = None
        if clone is not None:
            honest_out = {
                s: {r: payloads[s] for r in range(n)} for s in honest_ids
            }

        byzantine_out: Dict[int, Dict[int, Any]] = {}
        byz_sent = 0
        if clone is not None:
            view = AdversaryView(
                round_index=round_index,
                n=n,
                t=self.t_net,
                corrupted=set(self.corrupted),
                honest_messages=honest_out,
                parties=self.party_objects,
            )
            newly = set(clone.adapt_corruptions(view))
            if newly:
                raise UnsupportedBackendError(
                    "adaptive corruption cannot be replayed by the batch "
                    "backend; use backend='reference'"
                )
            byz_out = clone.byzantine_messages(view)
            for sender, outbox in byz_out.items():
                if sender not in self.corrupted:
                    raise ByzantineModelError(
                        f"adversary tried to speak for honest party {sender}"
                    )
                for recipient in outbox:
                    if type(recipient) is not int or not 0 <= recipient < n:
                        raise ByzantineModelError(
                            f"byzantine sender {sender} addressed unknown "
                            f"recipient {recipient!r}"
                        )
                byzantine_out[sender] = dict(outbox)
                byz_sent += len(outbox)

        delivered = np.zeros((n, n), dtype=bool)
        overrides: Dict[Tuple[int, int], Any] = {}
        next_carry: Dict[int, Dict[int, Any]] = {}
        if self.injector is None:
            if honest_ids:
                delivered[honest_ids, :] = True
        else:
            for s in honest_ids:
                payload = payloads[s]
                row = delivered[s]
                for r in range(n):
                    copies = self.injector.transmit(round_index, payload)
                    if not copies:
                        continue
                    if copies[0] is payload:
                        row[r] = True
                    else:
                        overrides[(s, r)] = copies[0]
                    if len(copies) > 1:
                        next_carry.setdefault(r, {})[s] = copies[1]

        honest_sent = len(honest_ids) * n
        self.trace.honest_message_count += honest_sent
        self.trace.byzantine_message_count += byz_sent
        self.trace.per_round_messages.append(honest_sent + byz_sent)
        self.trace.rounds_executed = round_index + 1

        full = self.trace.level is TraceLevel.FULL
        h_units = b_units = 0
        if full or self.metrics is not None:
            h_units = n * sum(honest_units[s] for s in honest_ids)
            b_units = sum(
                payload_units(payload)
                for outbox in byzantine_out.values()
                for payload in outbox.values()
            )
            if full:
                self.trace.honest_payload_units += h_units
                self.trace.byzantine_payload_units += b_units

        if clone is not None and self.corrupted:
            inboxes: Dict[int, Dict[int, Any]] = {}
            for c in sorted(self.corrupted):
                inbox: Dict[int, Any] = {}
                for sender, outbox in byzantine_out.items():
                    if c in outbox:
                        inbox[sender] = outbox[c]
                for s in honest_ids:
                    if delivered[s, c]:
                        inbox[s] = payloads[s]
                    elif (s, c) in overrides:
                        inbox[s] = overrides[(s, c)]
                stale = self._carryover.get(c)
                if stale:
                    for sender, payload in stale.items():
                        inbox.setdefault(sender, payload)
                inboxes[c] = inbox
            clone.observe_delivery(round_index, inboxes)
        self._carryover = next_carry
        self._round += 1
        stats = (round_index, honest_sent, byz_sent, h_units, b_units)
        return byzantine_out, delivered, stats

    def _emit_metrics(
        self,
        stats: Tuple[int, int, int, int, int],
        values: np.ndarray,
        hold: bool,
    ) -> None:
        if self.metrics is None:
            return
        round_index, honest_sent, byz_sent, h_units, b_units = stats
        self.metrics.emit(
            round_index,
            honest_sent,
            byz_sent,
            h_units,
            b_units,
            values=values,
            hold=hold,
        )

    # -- gradecast claim bookkeeping -------------------------------------

    def _claim(
        self,
        cand: Dict[int, Any],
        cand_arr: np.ndarray,
        origin: int,
        value: Any,
    ) -> None:
        """Register that *value* circulates for gradecast *origin*.

        The dense count matrices track votes per origin, not per (origin,
        value); that is exact iff a single value circulates per origin,
        which every supported strategy guarantees (see module docstring).
        A conflicting claim refuses loudly instead of diverging.
        """
        known = cand.get(origin)
        if known is None:
            cand[origin] = value
            cand_arr[origin] = float(value)
        elif not (known == value):
            raise UnsupportedBackendError(
                f"conflicting gradecast claims for origin {origin} "
                f"({known!r} vs {value!r}): this adversary equivocates in "
                "a way the batch backend cannot replay; "
                "use backend='reference'"
            )

    def _parse_value(
        self,
        payload: Any,
        iteration: int,
        sender: int,
        recipient: int,
        recv: np.ndarray,
        cand: Dict[int, Any],
        cand_arr: np.ndarray,
        accusers: Dict[int, np.ndarray],
    ) -> None:
        """Reference value-round parse of one Byzantine payload.

        Mirrors ``ParallelGradecast.receive_values`` plus
        ``RealAAParty._collect_accusations`` exactly (tag/iteration
        check, hashability, ``is_real`` validation, 4-tuple accusation
        shape).
        """
        if not isinstance(payload, tuple):
            return
        if (
            len(payload) >= 3
            and payload[0] == "val"
            and payload[1] == iteration
        ):
            value = payload[2]
            if value is not None and _hashable(value) and is_real(value):
                self._claim(cand, cand_arr, sender, value)
                recv[recipient, sender] = True
        if (
            len(payload) == 4
            and payload[0] == "val"
            and payload[1] == iteration
        ):
            accused = payload[3]
            if isinstance(accused, tuple) and len(accused) <= self.n:
                for origin in accused:
                    if isinstance(origin, int) and 0 <= origin < self.n:
                        key = int(origin)
                        slot = accusers.get(key)
                        if slot is None:
                            slot = accusers[key] = np.zeros(
                                (self.n, self.n), dtype=bool
                            )
                        slot[recipient, sender] = True

    def _parse_vector(
        self, payload: Any, tag: str, iteration: int
    ) -> Dict[int, Any]:
        """``_clean_vector`` plus the ``is_real`` filter, verbatim."""
        if (
            not isinstance(payload, tuple)
            or len(payload) != 3
            or payload[0] != tag
            or payload[1] != iteration
            or not isinstance(payload[2], dict)
        ):
            return {}
        vector: Dict[int, Any] = {}
        for origin, value in payload[2].items():
            if not isinstance(origin, int) or not 0 <= origin < self.n:
                continue
            if value is None:
                continue
            if not _hashable(value):
                continue
            if not is_real(value):
                continue
            vector[int(origin)] = value
        return vector

    # -- the RealAA phase ------------------------------------------------

    def run_realaa_phase(
        self,
        initial_values: np.ndarray,
        epsilon: float,
        iterations: int,
    ) -> RealAAPhaseResult:
        """Run ``iterations`` RealAA iterations (3 rounds each) densely.

        Honest parties are arrays; corrupted parties are the real puppet
        objects driven through the adversary clone.  Iteration tags are
        local to the phase (fresh parties per phase in the reference);
        the network round clock is global across phases, so crash rounds,
        chaos scripts and fault windows line up.
        """
        n = self.n
        t = self.party_t
        honest_ids = self._honest_ids
        hmask = self._hmask
        values = np.array(initial_values, dtype=np.float64, copy=True)
        bad = np.zeros((n, n), dtype=bool)
        #: origin → (recipient, sender) accuser matrix; lazy because only
        #: a handful of origins are ever accused.  Persists across
        #: iterations within the phase, like ``RealAAParty._accusers``.
        accusers: Dict[int, np.ndarray] = {}
        local_term: Dict[int, Optional[int]] = {
            pid: None for pid in honest_ids
        }
        records: Dict[int, List[ClassIterationRecord]] = {
            pid: [] for pid in honest_ids
        }
        snapshots: List[np.ndarray] = []

        for iteration in range(iterations):
            final_iteration = iteration == iterations - 1
            # Per-iteration candidate registry: the unique value
            # circulating for each origin (see _claim).
            cand: Dict[int, Any] = {}
            cand_arr = np.zeros(n, dtype=np.float64)
            for pid in honest_ids:
                value = float(values[pid])
                cand[pid] = value
                cand_arr[pid] = value

            # Round 3i: gradecast value messages + piggybacked BAD sets.
            payloads: Dict[int, Any] = {}
            units: Dict[int, int] = {}
            for s in honest_ids:
                accused = tuple(int(o) for o in np.nonzero(bad[s])[0])
                payloads[s] = ("val", iteration, float(values[s]), accused)
                units[s] = 3 + len(accused)
            byz_out, delivered, stats = self._network_round(payloads, units)
            # recv[r, o]: recipient r recorded a value for origin o.
            recv = delivered.T.copy()
            for s in honest_ids:
                accused = payloads[s][3]
                if accused:
                    reach = delivered[s]
                    for origin in accused:
                        slot = accusers.get(origin)
                        if slot is None:
                            slot = accusers[origin] = np.zeros(
                                (n, n), dtype=bool
                            )
                        slot[:, s] |= reach
            for c, outbox in byz_out.items():
                for r, payload in outbox.items():
                    if hmask[r]:
                        self._parse_value(
                            payload, iteration, c, r, recv, cand, cand_arr,
                            accusers,
                        )
            self._emit_metrics(stats, values, hold=False)

            # Round 3i+1: echo vectors.
            payloads = {}
            units = {}
            for s in honest_ids:
                vector = {
                    int(o): cand[int(o)] for o in np.nonzero(recv[s])[0]
                }
                payloads[s] = ("echo", iteration, vector)
                units[s] = 2 + 2 * len(vector)
            byz_out, delivered, stats = self._network_round(payloads, units)
            d_h = delivered[honest_ids].astype(np.int64)
            recv_h = recv[honest_ids].astype(np.int64)
            # echo_count[r, o]: echoes recipient r saw for origin o's value.
            echo_count = d_h.T @ recv_h
            for c, outbox in byz_out.items():
                for r, payload in outbox.items():
                    if not hmask[r]:
                        continue
                    claims = self._parse_vector(payload, "echo", iteration)
                    for origin, value in claims.items():
                        self._claim(cand, cand_arr, origin, value)
                        echo_count[r, origin] += 1
            supports = echo_count >= (n - t)
            self._emit_metrics(stats, values, hold=False)

            # Round 3i+2: support vectors, then the iteration finish.
            payloads = {}
            units = {}
            for s in honest_ids:
                vector = {
                    int(o): cand[int(o)] for o in np.nonzero(supports[s])[0]
                }
                payloads[s] = ("sup", iteration, vector)
                units[s] = 2 + 2 * len(vector)
            byz_out, delivered, stats = self._network_round(payloads, units)
            d_h = delivered[honest_ids].astype(np.int64)
            sup_h = supports[honest_ids].astype(np.int64)
            support_count = d_h.T @ sup_h
            for c, outbox in byz_out.items():
                for r, payload in outbox.items():
                    if not hmask[r]:
                        continue
                    claims = self._parse_vector(payload, "sup", iteration)
                    for origin, value in claims.items():
                        self._claim(cand, cand_arr, origin, value)
                        support_count[r, origin] += 1

            # Finish (RealAAParty._finish_iteration, vectorized over
            # recipients): accusation quorums enter BAD before acceptance;
            # grade ≤ 1 detects; the accepted value is the grade winner —
            # the circulating candidate, not the origin's private value.
            quorum = np.zeros((n, n), dtype=bool)
            for origin, mat in accusers.items():
                quorum[:, origin] = mat.sum(axis=1) >= t + 1
            quorum &= ~bad
            bad |= quorum
            accepted_mask = (support_count >= t + 1) & ~bad
            low_conf = (support_count < n - t) & ~bad
            newly = quorum | low_conf
            bad |= low_conf
            for pid in honest_ids:
                origins = np.nonzero(accepted_mask[pid])[0]
                if origins.size:
                    for o in origins:
                        if int(o) not in cand:  # pragma: no cover - guarded
                            raise UnsupportedBackendError(
                                f"accepted origin {int(o)} has no recorded "
                                "candidate value; use backend='reference'"
                            )
                    core = np.sort(cand_arr[origins])
                    if int(core.size) > 2 * t:
                        core = core[t : int(core.size) - t]
                    lo = float(core[0])
                    hi = float(core[-1])
                    trimmed_range = hi - lo
                    mean = math.fsum(core.tolist()) / int(core.size)
                    values[pid] = min(max(mean, lo), hi)
                    accepted = {int(o): float(cand_arr[o]) for o in origins}
                else:
                    trimmed_range = 0.0
                    accepted = {}
                if local_term[pid] is None and trimmed_range <= epsilon:
                    local_term[pid] = iteration + 1
                records[pid].append(
                    ClassIterationRecord(
                        iteration=iteration,
                        accepted=accepted,
                        newly_detected=tuple(
                            int(o) for o in np.nonzero(newly[pid])[0]
                        ),
                        trimmed_range=trimmed_range,
                    )
                )
            snapshots.append(values.copy())
            self._emit_metrics(stats, values, hold=final_iteration)

        classes: List[PartyClass] = []
        outcomes: Dict[int, ClassPhaseOutcome] = {}
        for index, pid in enumerate(honest_ids):
            mask = np.zeros(n, dtype=bool)
            mask[pid] = True
            classes.append(
                PartyClass(
                    ids=(pid,),
                    mask=mask,
                    corrupt=False,
                    group_a=False,
                    runs=True,
                )
            )
            outcomes[index] = ClassPhaseOutcome(
                records=records[pid],
                bad=bad[pid],
                local_termination_iteration=local_term[pid],
            )
        return RealAAPhaseResult(
            classes=classes,
            outcomes=outcomes,
            snapshots=snapshots,
            values=values,
        )
