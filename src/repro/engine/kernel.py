"""The batched RealAA round kernel — class-collapsed array execution.

The reference simulator (:mod:`repro.net.network`) drives ``n`` party
objects through ``O(n)`` messages per round, each a Python tuple; one
gradecast round costs ``Θ(n²)`` dict operations and grading costs up to
``Θ(n³)``.  This kernel exploits a structural fact about every adversary
the batch backend supports (:mod:`repro.engine.spec`): **no supported
strategy equivocates**.  Each party — honest or corrupted — either
broadcasts its faithful protocol message to a deterministic recipient set
or stays silent.  Consequently the parties partition into at most four
*classes* (honest/corrupt × crash-recipient-group A/B) whose members are
mutually indistinguishable at the message level:

* the gradecast *support count* an origin reaches at a recipient depends
  only on the recipient's class, so detection (``BAD``) sets, accusation
  tallies and acceptance decisions are uniform per class and can be kept
  as a handful of ``(n,)`` boolean vectors;
* per-party state that is *not* message-visible — the current real value
  — stays per-party in one ``(n,)`` float vector (iteration-0 inputs
  differ within a class, and an iteration that accepts nothing keeps the
  old per-party value).

Equivalence with the reference engine is exact, not approximate: sorting,
``math.fsum`` (correctly rounded, hence order-independent), trimming and
clamping are performed with the same scalar operations on the same
multisets, and the :class:`~repro.net.network.ExecutionTrace` counters are
reproduced closed-form per round.  The differential conformance suite
(``tests/engine/``) pins this bit-for-bit.

Conceptually the reference engine's Byzantine traffic is an ``(n, n)``
per-recipient payload matrix; because supported adversaries never
equivocate, that matrix is rank-one per sender class (a broadcast value
masked by a recipient set), which is what the class collapse factors out.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from ..net.network import ByzantineModelError, ExecutionTrace, TraceLevel
from .spec import KIND_CRASH, KIND_NONE, KIND_PASSIVE, KIND_SILENT, BatchAdversarySpec

#: Delivery scopes of one sender class in one round: everyone, only
#: recipients with ids below ``partial_to`` (the mid-send crash of
#: :class:`~repro.adversary.strategies.CrashAdversary`), or nobody.
_SCOPE_ALL = "all"
_SCOPE_GROUP_A = "group_a"


@dataclass
class PartyClass:
    """A maximal set of parties indistinguishable at the message level.

    ``runs`` is whether the members' protocol state machines execute at
    all (silent puppets are never driven); ``alive`` flips to ``False``
    when a corrupted puppet dies of an exception at a phase boundary (the
    reference adversary pops such puppets, after which they neither send
    nor receive).  ``group_a`` marks the crash-recipient group
    (``pid < partial_to``); it is only meaningful under a crash spec.
    """

    ids: Tuple[int, ...]
    mask: np.ndarray
    corrupt: bool
    group_a: bool
    runs: bool
    alive: bool = True

    @property
    def size(self) -> int:
        """Number of member parties."""
        return len(self.ids)


@dataclass
class ClassIterationRecord:
    """The class-uniform part of one RealAA iteration's diagnostics.

    Mirrors :class:`repro.protocols.realaa.IterationRecord` minus
    ``new_value`` (which is per-party and read from the value snapshots).
    """

    iteration: int
    accepted: Dict[int, float]
    newly_detected: Tuple[int, ...]
    trimmed_range: float


@dataclass
class ClassPhaseOutcome:
    """One class's final RealAA state after a phase of iterations."""

    records: List[ClassIterationRecord]
    bad: np.ndarray
    local_termination_iteration: Optional[int]


@dataclass
class RealAAPhaseResult:
    """Everything one batched RealAA phase produced.

    ``classes`` is the partition the phase ran under (indices into it key
    ``outcomes``); ``snapshots[i]`` is the full ``(n,)`` value vector
    after iteration ``i``; ``values`` aliases the final snapshot.
    """

    classes: List[PartyClass]
    outcomes: Dict[int, ClassPhaseOutcome]
    snapshots: List[np.ndarray]
    values: np.ndarray

    def class_index_of(self, pid: int) -> Optional[int]:
        """Index (into :attr:`classes`) of the class that ran party *pid*."""
        for index in self.outcomes:
            if self.classes[index].mask[pid]:
                return index
        return None


class BatchExecution:
    """One batched protocol execution: corruption bookkeeping + round clock.

    Replicates the reference :class:`~repro.net.network.SynchronousNetwork`
    observables — corruption registration (same
    :class:`~repro.net.network.ByzantineModelError` messages, same order)
    and the full :class:`~repro.net.network.ExecutionTrace` accounting —
    while executing rounds as array operations over party classes.

    ``t_net`` is the network's corruption budget; ``party_t`` the
    tolerance the protocol logic assumes (they differ in ``t_assumed``
    degradation experiments, exactly as in the reference API).
    """

    def __init__(
        self,
        n: int,
        t_net: int,
        party_t: int,
        spec: Optional[BatchAdversarySpec],
        trace_level: TraceLevel = TraceLevel.FULL,
    ) -> None:
        """Register corruptions (reference order/messages) and build classes."""
        self.n = n
        self.t_net = t_net
        self.party_t = party_t
        self.spec = spec
        self.trace = ExecutionTrace(level=TraceLevel(trace_level))
        #: Optional :class:`~repro.engine.metrics.BatchMetrics` sink; when
        #: set, every round emits a reference-identical metrics row.
        self.metrics = None
        self.corrupted = set()
        self._round = 0
        self._register_corruptions()
        self.classes = self._build_classes()
        kind = KIND_NONE if spec is None else spec.kind
        partial = 0 if spec is None else spec.partial_to
        self._group_a_total = (
            min(max(partial, 0), n) if kind == KIND_CRASH else 0
        )

    # -- corruption bookkeeping ----------------------------------------

    def _register_corruptions(self) -> None:
        spec = self.spec
        if spec is None or spec.kind == KIND_NONE:
            return
        if spec.corrupted is not None:
            requested = set(spec.corrupted)
        else:
            requested = set(range(self.n - self.t_net, self.n))
        if not requested:
            return
        if len(requested) > self.t_net:
            raise ByzantineModelError(
                f"adversary requested {len(requested)} "
                f"corruptions but the budget is t={self.t_net}"
            )
        for pid in sorted(requested):
            if not 0 <= pid < self.n:
                raise ByzantineModelError(f"cannot corrupt unknown party {pid}")
            self.corrupted.add(pid)
            self.trace.corruption_rounds[pid] = 0

    @property
    def honest_set(self) -> Set[int]:
        """Ids of the honest (never corrupted) parties."""
        return set(range(self.n)) - self.corrupted

    @property
    def has_honest(self) -> bool:
        """Whether at least one party is honest (else zero rounds run)."""
        return len(self.corrupted) < self.n

    # -- class partition ------------------------------------------------

    def _build_classes(self) -> List[PartyClass]:
        spec = self.spec
        kind = KIND_NONE if spec is None else spec.kind
        split_at: Optional[int] = (
            spec.partial_to if spec is not None and kind == KIND_CRASH else None
        )
        honest_ids = [pid for pid in range(self.n) if pid not in self.corrupted]
        corrupt_ids = sorted(self.corrupted)
        groups: List[Tuple[bool, bool, List[int]]] = []
        for corrupt_flag, ids in ((False, honest_ids), (True, corrupt_ids)):
            if split_at is None:
                groups.append((corrupt_flag, False, ids))
            else:
                groups.append(
                    (corrupt_flag, True, [p for p in ids if p < split_at])
                )
                groups.append(
                    (corrupt_flag, False, [p for p in ids if p >= split_at])
                )
        classes: List[PartyClass] = []
        for corrupt_flag, group_a, ids in groups:
            if not ids:
                continue
            mask = np.zeros(self.n, dtype=bool)
            mask[ids] = True
            runs = (not corrupt_flag) or kind in (KIND_PASSIVE, KIND_CRASH)
            classes.append(
                PartyClass(
                    ids=tuple(ids),
                    mask=mask,
                    corrupt=corrupt_flag,
                    group_a=group_a,
                    runs=runs,
                )
            )
        return classes

    def retire_dead(self, dead: np.ndarray) -> None:
        """Split off puppets that died of an exception at a phase boundary.

        The reference adversary pops a puppet whose ``receive_round``
        raised; from then on it neither sends nor receives.  Honest deaths
        never reach here — their exceptions propagate out of the run.
        """
        if not bool(dead.any()):
            return
        refined: List[PartyClass] = []
        for cls in self.classes:
            dead_ids = [pid for pid in cls.ids if dead[pid]]
            if not dead_ids:
                refined.append(cls)
                continue
            alive_ids = [pid for pid in cls.ids if not dead[pid]]
            if alive_ids:
                mask = np.zeros(self.n, dtype=bool)
                mask[alive_ids] = True
                refined.append(
                    PartyClass(
                        ids=tuple(alive_ids),
                        mask=mask,
                        corrupt=cls.corrupt,
                        group_a=cls.group_a,
                        runs=cls.runs,
                        alive=cls.alive,
                    )
                )
            dead_mask = np.zeros(self.n, dtype=bool)
            dead_mask[dead_ids] = True
            refined.append(
                PartyClass(
                    ids=tuple(dead_ids),
                    mask=dead_mask,
                    corrupt=cls.corrupt,
                    group_a=cls.group_a,
                    runs=cls.runs,
                    alive=False,
                )
            )
        self.classes = refined

    # -- delivery model -------------------------------------------------

    def _delivery_scope(self, cls: PartyClass, round_index: int) -> Optional[str]:
        """To whom members of *cls* deliver their round messages."""
        if not cls.corrupt:
            return _SCOPE_ALL
        spec = self.spec
        if spec is not None and spec.kind == KIND_CRASH:
            if round_index < spec.crash_round:
                return _SCOPE_ALL
            if round_index == spec.crash_round:
                return _SCOPE_GROUP_A
            return None
        return _SCOPE_ALL

    @staticmethod
    def _reaches(scope: Optional[str], recipient_class: PartyClass) -> bool:
        """Whether *scope* includes the members of *recipient_class*."""
        if scope == _SCOPE_ALL:
            return True
        if scope == _SCOPE_GROUP_A:
            return recipient_class.group_a
        return False

    def _scope_size(self, scope: Optional[str]) -> int:
        """Number of recipients addressed under *scope*."""
        if scope == _SCOPE_ALL:
            return self.n
        if scope == _SCOPE_GROUP_A:
            return self._group_a_total
        return 0

    def _account_round(
        self,
        scopes: Dict[int, Optional[str]],
        units_for: Callable[[int], int],
    ) -> Tuple[int, int, int, int]:
        """Reference-exact trace accounting for the current round.

        Honest senders broadcast to all ``n`` recipients; Byzantine sends
        are counted per actually-addressed message (the reference counts
        ``len(outbox)``).  Payload units accumulate in the trace only at
        :attr:`~repro.net.network.TraceLevel.FULL` but are still computed
        when a metrics sink is attached (the reference collector counts
        them itself, regardless of trace level) — honest units on the
        *sent* traffic and Byzantine units per addressed message, exactly
        like ``SynchronousNetwork._run_round``.

        Returns ``(honest_sent, byzantine_sent, honest_units,
        byzantine_units)`` for the metrics row of this round.
        """
        honest_sent = 0
        byzantine_sent = 0
        honest_units = 0
        byzantine_units = 0
        full = self.trace.level is TraceLevel.FULL
        count_units = full or self.metrics is not None
        for index, scope in scopes.items():
            cls = self.classes[index]
            if cls.corrupt:
                targets = self._scope_size(scope)
                byzantine_sent += cls.size * targets
                if count_units and targets:
                    byzantine_units += cls.size * targets * units_for(index)
            else:
                honest_sent += cls.size * self.n
                if count_units:
                    honest_units += cls.size * self.n * units_for(index)
        if full:
            self.trace.honest_payload_units += honest_units
            self.trace.byzantine_payload_units += byzantine_units
        self.trace.honest_message_count += honest_sent
        self.trace.byzantine_message_count += byzantine_sent
        self.trace.per_round_messages.append(honest_sent + byzantine_sent)
        self.trace.rounds_executed = self._round + 1
        return honest_sent, byzantine_sent, honest_units, byzantine_units

    # -- the RealAA phase kernel ----------------------------------------

    def run_realaa_phase(
        self,
        initial_values: np.ndarray,
        epsilon: float,
        iterations: int,
    ) -> RealAAPhaseResult:
        """Run ``iterations`` RealAA iterations (3 rounds each) batched.

        Every active class's accusation memory, ``BAD`` set and iteration
        records start fresh — matching the reference, where each phase
        constructs new :class:`~repro.protocols.realaa.RealAAParty`
        machines.  The global round clock keeps advancing across phases
        so crash rounds line up with the reference execution.
        """
        n = self.n
        t = self.party_t
        values = np.array(initial_values, dtype=np.float64, copy=True)
        active = [
            index
            for index, cls in enumerate(self.classes)
            if cls.runs and cls.alive
        ]
        bad: Dict[int, np.ndarray] = {
            index: np.zeros(n, dtype=bool) for index in active
        }
        accusers: Dict[int, Dict[int, np.ndarray]] = {index: {} for index in active}
        local_term: Dict[int, Optional[int]] = {index: None for index in active}
        records: Dict[int, List[ClassIterationRecord]] = {
            index: [] for index in active
        }
        snapshots: List[np.ndarray] = []

        for iteration in range(iterations):
            v_pre = values.copy()

            # Round 3i: parallel-gradecast value messages, carrying each
            # sender's current BAD set as accusations.
            scopes = {
                index: self._delivery_scope(self.classes[index], self._round)
                for index in active
            }
            stats = self._account_round(
                scopes, lambda index: 3 + int(bad[index].sum())
            )
            if self.metrics is not None:
                self.metrics.emit(self._round, *stats, values=values)
            received: Dict[int, np.ndarray] = {}
            for rc in active:
                vec = np.zeros(n, dtype=bool)
                for sc in active:
                    if not self._reaches(scopes[sc], self.classes[rc]):
                        continue
                    vec |= self.classes[sc].mask
                    slot = accusers[rc].get(sc)
                    if slot is None:
                        slot = np.zeros(n, dtype=bool)
                        accusers[rc][sc] = slot
                    slot |= bad[sc]
                received[rc] = vec
            self._round += 1

            # Round 3i+1: echo vectors ("which values did you receive?").
            scopes = {
                index: self._delivery_scope(self.classes[index], self._round)
                for index in active
            }
            stats = self._account_round(
                scopes, lambda index: 2 + 2 * int(received[index].sum())
            )
            if self.metrics is not None:
                self.metrics.emit(self._round, *stats, values=values)
            supports: Dict[int, np.ndarray] = {}
            for rc in active:
                echo_count = np.zeros(n, dtype=np.int64)
                for sc in active:
                    if self._reaches(scopes[sc], self.classes[rc]):
                        echo_count += self.classes[sc].size * received[sc]
                supports[rc] = echo_count >= (n - t)
            self._round += 1

            # Round 3i+2: support vectors, then the iteration finish.
            scopes = {
                index: self._delivery_scope(self.classes[index], self._round)
                for index in active
            }
            stats = self._account_round(
                scopes, lambda index: 2 + 2 * int(supports[index].sum())
            )
            finish_round = self._round
            support_count: Dict[int, np.ndarray] = {}
            for rc in active:
                count = np.zeros(n, dtype=np.int64)
                for sc in active:
                    if self._reaches(scopes[sc], self.classes[rc]):
                        count += self.classes[sc].size * supports[sc]
                support_count[rc] = count
            self._round += 1

            for rc in active:
                self._finish_iteration(
                    rc,
                    iteration,
                    epsilon,
                    v_pre,
                    values,
                    bad[rc],
                    accusers[rc],
                    support_count[rc],
                    local_term,
                    records[rc],
                )
            snapshots.append(values.copy())
            if self.metrics is not None:
                # The reference observer fires after the receives, i.e.
                # after the iteration finish updated the values.  The
                # phase-final row stays pending until the backend's
                # boundary checks pass (a raise suppresses it).
                self.metrics.emit(
                    finish_round,
                    *stats,
                    values=values,
                    hold=iteration == iterations - 1,
                )

        outcomes = {
            index: ClassPhaseOutcome(
                records=records[index],
                bad=bad[index],
                local_termination_iteration=local_term[index],
            )
            for index in active
        }
        return RealAAPhaseResult(
            classes=list(self.classes),
            outcomes=outcomes,
            snapshots=snapshots,
            values=values,
        )

    def _finish_iteration(
        self,
        rc: int,
        iteration: int,
        epsilon: float,
        v_pre: np.ndarray,
        values: np.ndarray,
        rc_bad: np.ndarray,
        rc_accusers: Dict[int, np.ndarray],
        rc_support_count: np.ndarray,
        local_term: Dict[int, Optional[int]],
        rc_records: List[ClassIterationRecord],
    ) -> None:
        """One class's end-of-iteration step (RealAA ``_finish_iteration``).

        Order matters and follows the reference exactly: accusation quorum
        detections enter ``BAD`` *before* acceptance is evaluated; an
        origin graded exactly 1 is both accepted and newly detected; an
        empty accepted multiset keeps the old (per-party) value.
        """
        n = self.n
        t = self.party_t
        acc_count = np.zeros(n, dtype=np.int64)
        for sc, vec in rc_accusers.items():
            acc_count += self.classes[sc].size * vec
        quorum = (acc_count >= t + 1) & ~rc_bad
        rc_bad |= quorum
        accepted_mask = (rc_support_count >= t + 1) & ~rc_bad
        low_confidence = (rc_support_count < n - t) & ~rc_bad
        rc_bad |= low_confidence
        newly = tuple(int(o) for o in np.nonzero(quorum | low_confidence)[0])
        origins = np.nonzero(accepted_mask)[0]
        if origins.size:
            core = np.sort(v_pre[origins])
            if int(core.size) > 2 * t:
                core = core[t : int(core.size) - t]
            lo = float(core[0])
            hi = float(core[-1])
            trimmed_range = hi - lo
            mean = math.fsum(core.tolist()) / int(core.size)
            values[self.classes[rc].mask] = min(max(mean, lo), hi)
            accepted = {int(o): float(v_pre[o]) for o in origins}
        else:
            trimmed_range = 0.0
            accepted = {}
        if local_term[rc] is None and trimmed_range <= epsilon:
            local_term[rc] = iteration + 1
        rc_records.append(
            ClassIterationRecord(
                iteration=iteration,
                accepted=accepted,
                newly_detected=newly,
                trimmed_range=trimmed_range,
            )
        )
