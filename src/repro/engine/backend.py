"""`BatchSynchronousEngine` — the batched drop-in for the core API.

Produces the same :class:`~repro.core.api.RealAAOutcome` /
:class:`~repro.core.api.TreeAAOutcome` objects as the reference
``backend="reference"`` path, computed by the class-collapsed array kernel
(:mod:`repro.engine.kernel`) instead of per-party message passing.  Every
observable is replicated: outputs, AA verdicts, the full
:class:`~repro.net.network.ExecutionTrace`, validation errors (message and
order), per-iteration party diagnostics, and the
:class:`~repro.core.errors.ValidityViolationError` raise points.

The executions are fully deterministic (no RNG is consumed), matching the
reference engine's determinism and therefore the seeding discipline of
:mod:`repro.analysis.parallel`: a sweep point's seed feeds the input
generator only, never the engine, so cache keys stay comparable across
backends (they differ exactly in the recorded ``backend`` field).

Parties in the returned execution are read-only *views*
(:class:`BatchRealAAView` and friends): they expose the diagnostic
attributes the reference party classes expose (``value``, ``bad``,
``history``, ``local_termination_iteration``, ``output``, …) but cannot be
driven — their round methods raise
:class:`~repro.engine.errors.UnsupportedBackendError`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.api import RealAAOutcome, TreeAAOutcome, _evaluate_tree_outputs
from ..core.closest_int import closest_int
from ..core.errors import ValidityViolationError, check_index_in_range
from ..core.path_aa import PathAAParty
from ..core.projection_aa import KnownPathAAParty
from ..core.tree_aa import TreeAAParty, projection_phase_iterations
from ..net.messages import Inbox, Outbox, PartyId
from ..net.network import ExecutionResult, TraceLevel
from ..net.protocol import ProtocolParty, ProtocolStateError
from ..observability.collector import MetricsCollector
from ..protocols.realaa import IterationRecord, RealAAParty, is_real
from ..protocols.rounds import (
    ROUNDS_PER_ITERATION,
    check_resilience,
    realaa_iterations,
)
from ..trees.euler import EulerList, list_construction
from ..trees.labeled_tree import Label, LabeledTree
from ..trees.paths import TreePath, diameter
from ..trees.projection import project_onto_path
from .dense import DenseExecution
from .errors import UnsupportedBackendError
from .kernel import BatchExecution, RealAAPhaseResult
from .metrics import BatchMetrics
from .spec import CLASS_KINDS, BatchAdversarySpec, resolve_batch_spec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from typing import Callable, Union

    from ..adversary.base import Adversary
    from ..net.faults import FaultPlan
    from ..net.trace import Observer

    AnyExecution = Union[BatchExecution, DenseExecution]


class BatchPartyView(ProtocolParty):
    """Read-only party stand-in returned inside batch execution results.

    Carries the reference party's diagnostic surface without the state
    machine; driving it is a contract violation and raises
    :class:`~repro.engine.errors.UnsupportedBackendError`.
    """

    def __init__(self, pid: PartyId, n: int, t: int, duration: int) -> None:
        super().__init__(pid, n, t)
        self._duration = duration

    @property
    def duration(self) -> int:
        return self._duration

    def messages_for_round(self, round_index: int) -> Outbox:
        raise UnsupportedBackendError(
            "batch party views cannot be driven; re-run with "
            "backend='reference' to obtain live state machines"
        )

    def receive_round(self, round_index: int, inbox: Inbox) -> None:
        raise UnsupportedBackendError(
            "batch party views cannot be driven; re-run with "
            "backend='reference' to obtain live state machines"
        )


class BatchRealAAView(BatchPartyView):
    """The diagnostic surface of :class:`~repro.protocols.realaa.RealAAParty`."""

    def __init__(
        self,
        pid: PartyId,
        n: int,
        t: int,
        duration: int,
        input_value: float,
        epsilon: float,
        iterations: int,
    ) -> None:
        super().__init__(pid, n, t, duration)
        self.input_value = input_value
        self.value = input_value
        self.epsilon = epsilon
        self.iterations = iterations
        self.bad: set = set()
        self.history: List[IterationRecord] = []
        self.local_termination_iteration: Optional[int] = None


class BatchPathsFinderView(BatchRealAAView):
    """The diagnostic surface of :class:`~repro.core.paths_finder.PathsFinderParty`."""

    def __init__(
        self,
        pid: PartyId,
        n: int,
        t: int,
        duration: int,
        input_value: float,
        iterations: int,
        tree: LabeledTree,
        euler: EulerList,
        input_vertex: Label,
    ) -> None:
        super().__init__(pid, n, t, duration, input_value, 1.0, iterations)
        self.tree = tree
        self.euler = euler
        self.input_vertex = input_vertex
        self.selected_vertex: Optional[Label] = None


class BatchProjectionView(BatchRealAAView):
    """The diagnostic surface of :class:`~repro.core.tree_aa.ProjectionPhaseParty`."""

    def __init__(
        self,
        pid: PartyId,
        n: int,
        t: int,
        duration: int,
        input_value: float,
        iterations: int,
        path: TreePath,
        projection: Label,
    ) -> None:
        super().__init__(pid, n, t, duration, input_value, 1.0, iterations)
        self.path = path
        self.projection = projection


class BatchPathAAView(BatchRealAAView):
    """The diagnostic surface of the Section-4/5 path party classes."""

    def __init__(
        self,
        pid: PartyId,
        n: int,
        t: int,
        duration: int,
        input_value: float,
        iterations: int,
        path: TreePath,
        input_vertex: Label,
        tree: Optional[LabeledTree] = None,
        projection: Optional[Label] = None,
    ) -> None:
        super().__init__(pid, n, t, duration, input_value, 1.0, iterations)
        self.path = path
        self.input_vertex = input_vertex
        if tree is not None:
            self.tree = tree
        if projection is not None:
            self.projection = projection


class BatchTreeAAView(BatchPartyView):
    """The diagnostic surface of :class:`~repro.core.tree_aa.TreeAAParty`."""

    def __init__(
        self,
        pid: PartyId,
        n: int,
        t: int,
        duration: int,
        tree: LabeledTree,
        input_vertex: Label,
        root: Label,
    ) -> None:
        super().__init__(pid, n, t, duration)
        self.tree = tree
        self.input_vertex = input_vertex
        self.root = root
        self.paths_finder: Optional[BatchPathsFinderView] = None
        self.projection_phase: Optional[BatchProjectionView] = None

    @property
    def path(self) -> Optional[TreePath]:
        """The PathsFinder output path (``None`` until phase 1 ended)."""
        if self.paths_finder is None:
            return None
        output = self.paths_finder.output
        return output if isinstance(output, TreePath) else None


def _resolve_collector(
    observer: Optional["Observer"],
) -> Optional[MetricsCollector]:
    """*observer* as a replayable collector (``None`` when absent).

    The batch engines reproduce :class:`~repro.observability.collector
    .MetricsCollector` rows from their round reductions
    (:class:`~repro.engine.metrics.BatchMetrics`); any other observer —
    transcript recorders, invariant monitors, multiplexers, collector
    *subclasses* (which may override ``on_round``) — needs the
    materialised per-message traffic only the reference engine produces.
    """
    if observer is None:
        return None
    if type(observer) is not MetricsCollector:
        raise UnsupportedBackendError(
            f"observer {type(observer).__name__} requires per-message "
            "execution (only a plain MetricsCollector can be replayed "
            "from batch reductions); use backend='reference'"
        )
    if observer._estimate_fn is not None:
        raise UnsupportedBackendError(
            "a custom estimate_fn reads live party objects every round; "
            "use backend='reference'"
        )
    return observer


def _needs_dense(
    spec: Optional[BatchAdversarySpec], fault_plan: Optional["FaultPlan"]
) -> bool:
    """Whether this configuration needs the dense per-party engine.

    Fault plans and equivocating adversary kinds break the class-collapse
    invariant (:mod:`repro.engine.dense`); everything else stays on the
    fast class kernel.
    """
    if fault_plan is not None:
        return True
    return spec is not None and spec.kind not in CLASS_KINDS


def _make_execution(
    n: int,
    t: int,
    party_t: int,
    spec: Optional[BatchAdversarySpec],
    trace_level: TraceLevel,
    fault_plan: Optional["FaultPlan"],
    party_factory: "Callable[[int], Any]",
) -> "AnyExecution":
    """The right batch engine for this configuration (see _needs_dense)."""
    if _needs_dense(spec, fault_plan):
        return DenseExecution(
            n,
            t,
            party_t,
            spec,
            trace_level,
            fault_plan=fault_plan,
            party_factory=party_factory,
        )
    return BatchExecution(n, t, party_t, spec, trace_level)


def _attach_metrics(
    execution: "AnyExecution",
    collector: Optional[MetricsCollector],
    total_rounds: int,
    track_value_spread: bool,
    honest_estimates: Optional[List[Any]] = None,
) -> None:
    """Wire a :class:`BatchMetrics` sink onto *execution* (if observed)."""
    if collector is None:
        return
    execution.metrics = BatchMetrics(
        collector,
        n=execution.n,
        corrupted=sorted(execution.corrupted),
        total_rounds=total_rounds,
        track_value_spread=track_value_spread,
        honest_estimates=honest_estimates,
    )


def _finish_metrics(
    execution: "AnyExecution",
    honest_outputs: Optional[List[Any]] = None,
) -> None:
    """Patch the final row's hull and flush pending rows (run succeeded)."""
    if execution.metrics is not None:
        execution.metrics.finalize(honest_outputs)
        execution.metrics.flush()


def _finish_dense(
    execution: "AnyExecution",
    adversary: Optional["Adversary"],
    outputs: Dict[PartyId, Any],
    parties: Dict[int, Any],
) -> None:
    """Dense-mode epilogue: puppet results + success-path bookkeeping.

    The dense engine drove *real* puppet objects; surface them (and their
    outputs) in the result exactly like the reference engine does, copy
    the fault counters onto the trace and mirror the replay clone's
    diagnostics onto the caller's adversary instance.
    """
    if not isinstance(execution, DenseExecution):
        return
    for pid in sorted(execution.corrupted):
        party = execution.party_objects.get(pid)
        if party is not None:
            outputs[pid] = party.output
            parties[pid] = party
    execution.finalize_trace()
    execution.copy_diagnostics(adversary)


def _realaa_shared_checks(
    n: int,
    t: int,
    first_input: float,
    epsilon: float,
    known_range: Optional[float],
    iterations: Optional[int],
) -> int:
    """Party-0's constructor validation, in reference order; resolved count.

    Mirrors :class:`~repro.protocols.realaa.RealAAParty` construction for
    pid 0 exactly (guard order and messages), so invalid parameters raise
    the identical exception on either backend.
    """
    if t < 0 or n < 1:
        raise ValueError("need n >= 1 and t >= 0")
    check_resilience(n, t)
    if not is_real(first_input):
        raise ValueError(f"input must be a finite real, got {first_input!r}")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if (known_range is None) == (iterations is None):
        raise ValueError("give exactly one of known_range / iterations")
    if iterations is None:
        if known_range is None:  # unreachable: the xor check above
            raise ProtocolStateError("known_range and iterations both None")
        iterations = realaa_iterations(known_range, epsilon, n, t)
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    return iterations


def _populate_realaa_views(
    views: Dict[int, BatchRealAAView], phase: RealAAPhaseResult
) -> None:
    """Copy one phase's per-class results onto the per-party views."""
    for index, outcome in phase.outcomes.items():
        cls = phase.classes[index]
        bad_ids = [int(origin) for origin in np.nonzero(outcome.bad)[0]]
        for pid in cls.ids:
            view = views[pid]
            view.value = float(phase.values[pid])
            view.bad = set(bad_ids)
            view.local_termination_iteration = (
                outcome.local_termination_iteration
            )
            view.history = [
                IterationRecord(
                    iteration=record.iteration,
                    accepted=record.accepted,
                    newly_detected=record.newly_detected,
                    trimmed_range=record.trimmed_range,
                    new_value=float(phase.snapshots[record.iteration][pid]),
                )
                for record in outcome.records
            ]


def _active_pids(phase: RealAAPhaseResult) -> List[int]:
    """All party ids whose state machines ran in *phase*, ascending."""
    pids: List[int] = []
    for index in phase.outcomes:
        pids.extend(phase.classes[index].ids)
    return sorted(pids)


class BatchSynchronousEngine:
    """Batched executor for RealAA / PathAA / TreeAA.

    Stateless facade: each ``run_*`` method validates inputs exactly like
    the reference party constructors, replays the supported adversary via
    its :class:`~repro.engine.spec.BatchAdversarySpec`, runs the kernel,
    and assembles the same outcome dataclass the reference API returns.
    """

    # -- RealAA ---------------------------------------------------------

    def run_real_aa(
        self,
        inputs: Sequence[float],
        t: int,
        epsilon: float,
        known_range: Optional[float] = None,
        iterations: Optional[int] = None,
        adversary: Optional["Adversary"] = None,
        trace_level: TraceLevel = TraceLevel.FULL,
        observer: Optional["Observer"] = None,
        fault_plan: Optional["FaultPlan"] = None,
        t_assumed: Optional[int] = None,
    ) -> RealAAOutcome:
        """Batched :func:`repro.core.api.run_real_aa` (same signature)."""
        collector = _resolve_collector(observer)
        if collector is not None and collector.tree is not None:
            raise UnsupportedBackendError(
                "MetricsCollector with a tree watches vertex estimates, "
                "which RealAA parties do not expose the same way under "
                "batch execution; use backend='reference'"
            )
        spec = resolve_batch_spec(adversary)
        n = len(inputs)
        if known_range is None and iterations is None:
            known_range = max(inputs) - min(inputs) if n else 0.0
        party_t = t if t_assumed is None else t_assumed
        its: Optional[int] = None
        if n:
            its = _realaa_shared_checks(
                n, party_t, inputs[0], epsilon, known_range, iterations
            )
            for pid in range(1, n):
                if not is_real(inputs[pid]):
                    raise ValueError(
                        f"input must be a finite real, got {inputs[pid]!r}"
                    )
        execution = _make_execution(
            n,
            t,
            party_t,
            spec,
            trace_level,
            fault_plan,
            lambda pid: RealAAParty(
                pid,
                n,
                party_t,
                inputs[pid],
                epsilon=epsilon,
                known_range=known_range,
                iterations=iterations,
            ),
        )
        duration = 0 if its is None else ROUNDS_PER_ITERATION * its
        _attach_metrics(execution, collector, duration, True)
        views: Dict[int, BatchRealAAView] = {
            pid: BatchRealAAView(
                pid,
                n,
                party_t,
                duration,
                float(inputs[pid]),
                float(epsilon),
                its if its is not None else 0,
            )
            for pid in range(n)
        }
        outputs: Dict[PartyId, Any] = {pid: None for pid in range(n)}
        if its is not None and execution.has_honest:
            phase = execution.run_realaa_phase(
                np.array([float(v) for v in inputs], dtype=np.float64),
                float(epsilon),
                its,
            )
            _populate_realaa_views(views, phase)
            for pid in _active_pids(phase):
                outputs[pid] = float(phase.values[pid])
                views[pid].output = outputs[pid]
        _finish_metrics(execution)
        parties: Dict[int, Any] = dict(views)
        _finish_dense(execution, adversary, outputs, parties)
        result = ExecutionResult(
            outputs=outputs,
            honest=execution.honest_set,
            corrupted=set(execution.corrupted),
            trace=execution.trace,
            parties=parties,
        )
        honest_inputs = {
            pid: float(inputs[pid]) for pid in sorted(execution.honest_set)
        }
        honest_outputs = result.honest_outputs
        terminated = all(
            isinstance(v, float) for v in honest_outputs.values()
        ) and bool(honest_outputs)
        lo, hi = min(honest_inputs.values()), max(honest_inputs.values())
        valid = terminated and all(
            lo <= v <= hi for v in honest_outputs.values()
        )
        outs = list(honest_outputs.values())
        spread = (max(outs) - min(outs)) if terminated else float("inf")
        measured: Optional[int] = None
        locals_: List[int] = []
        for pid in sorted(execution.honest_set):
            local = views[pid].local_termination_iteration
            if local is None:
                locals_ = []
                break
            locals_.append(local)
        if locals_:
            measured = 3 * max(locals_)
        return RealAAOutcome(
            execution=result,
            epsilon=epsilon,
            honest_inputs=honest_inputs,
            honest_outputs=honest_outputs,
            terminated=terminated,
            valid=valid,
            output_spread=spread,
            agreement=terminated and spread <= epsilon,
            rounds=result.trace.rounds_executed,
            measured_rounds=measured,
        )

    # -- PathAA / KnownPathAA -------------------------------------------

    def run_path_aa(
        self,
        tree: LabeledTree,
        path: TreePath,
        inputs: Sequence[Label],
        t: int,
        adversary: Optional["Adversary"] = None,
        project: bool = False,
        observer: Optional["Observer"] = None,
        trace_level: TraceLevel = TraceLevel.FULL,
        fault_plan: Optional["FaultPlan"] = None,
        t_assumed: Optional[int] = None,
    ) -> TreeAAOutcome:
        """Batched :func:`repro.core.api.run_path_aa` (same signature)."""
        collector = _resolve_collector(observer)
        spec = resolve_batch_spec(adversary)
        n = len(inputs)
        party_t = t if t_assumed is None else t_assumed
        canonical = path.canonical()
        positions: List[float] = []
        projections: Dict[int, Label] = {}
        its: Optional[int] = None
        for pid in range(n):
            if project:
                tree.require_vertex(inputs[pid])
                projection = project_onto_path(tree, inputs[pid], canonical)
                position = canonical.position_of(projection)
                projections[pid] = projection
            else:
                position = canonical.position_of(inputs[pid])
            if pid == 0:
                its = _realaa_shared_checks(
                    n, party_t, float(position), 1.0, float(canonical.length), None
                )
            positions.append(float(position))
        if project:
            factory = lambda pid: KnownPathAAParty(  # noqa: E731
                pid, n, party_t, tree, canonical, inputs[pid]
            )
        else:
            factory = lambda pid: PathAAParty(  # noqa: E731
                pid, n, party_t, canonical, inputs[pid]
            )
        execution = _make_execution(
            n, t, party_t, spec, trace_level, fault_plan, factory
        )
        duration = 0 if its is None else ROUNDS_PER_ITERATION * its
        honest_sorted = sorted(execution.honest_set)
        _attach_metrics(
            execution,
            collector,
            duration,
            True,
            honest_estimates=[inputs[pid] for pid in honest_sorted],
        )
        views: Dict[int, BatchRealAAView] = {
            pid: BatchPathAAView(
                pid,
                n,
                party_t,
                duration,
                positions[pid],
                its if its is not None else 0,
                canonical,
                inputs[pid],
                tree=tree if project else None,
                projection=projections.get(pid),
            )
            for pid in range(n)
        }
        outputs: Dict[PartyId, Any] = {pid: None for pid in range(n)}
        if its is not None and execution.has_honest:
            phase = execution.run_realaa_phase(
                np.array(positions, dtype=np.float64), 1.0, its
            )
            _populate_realaa_views(views, phase)
            active = _active_pids(phase)
            honest = execution.honest_set
            for pid in [p for p in active if p in honest] + [
                p for p in active if p not in honest
            ]:
                value = float(phase.values[pid])
                index = closest_int(value)
                if pid in honest:
                    check_index_in_range(index, len(canonical), "the path", value)
                elif not 0 <= index < len(canonical):
                    continue  # the puppet died of the validity guard
                vertex = canonical[index]
                outputs[pid] = vertex
                views[pid].output = vertex
        _finish_metrics(
            execution, [outputs[pid] for pid in honest_sorted]
        )
        parties: Dict[int, Any] = dict(views)
        _finish_dense(execution, adversary, outputs, parties)
        result = ExecutionResult(
            outputs=outputs,
            honest=execution.honest_set,
            corrupted=set(execution.corrupted),
            trace=execution.trace,
            parties=parties,
        )
        honest_inputs = {
            pid: inputs[pid] for pid in sorted(execution.honest_set)
        }
        honest_outputs = result.honest_outputs
        verdicts = _evaluate_tree_outputs(tree, honest_inputs, honest_outputs)
        return TreeAAOutcome(
            execution=result,
            tree=tree,
            honest_inputs=honest_inputs,
            honest_outputs=honest_outputs,
            rounds=result.trace.rounds_executed,
            **verdicts,
        )

    # -- TreeAA ---------------------------------------------------------

    def run_tree_aa(
        self,
        tree: LabeledTree,
        inputs: Sequence[Label],
        t: int,
        adversary: Optional["Adversary"] = None,
        root: Optional[Label] = None,
        trace_level: TraceLevel = TraceLevel.FULL,
        observer: Optional["Observer"] = None,
        fault_plan: Optional["FaultPlan"] = None,
        t_assumed: Optional[int] = None,
    ) -> TreeAAOutcome:
        """Batched :func:`repro.core.api.run_tree_aa` (same signature)."""
        collector = _resolve_collector(observer)
        spec = resolve_batch_spec(adversary)
        n = len(inputs)
        party_t = t if t_assumed is None else t_assumed
        outputs: Dict[PartyId, Any] = {pid: None for pid in range(n)}
        views: Dict[int, ProtocolParty] = {}
        duration = 0
        if n:
            # Party 0's constructor order: shared guards, own vertex, then
            # the public phase parameters (which may reject a bad root).
            if party_t < 0 or n < 1:
                raise ValueError("need n >= 1 and t >= 0")
            check_resilience(n, party_t)
            tree.require_vertex(inputs[0])
            root_resolved = tree.root_label if root is None else root
            trivial = diameter(tree) <= 1
            if not trivial:
                euler_default = list_construction(tree)
                phase1_iterations = realaa_iterations(
                    float(len(euler_default) - 1), 1.0, n, party_t
                )
                phase2_iterations = projection_phase_iterations(
                    tree, n, party_t, root_resolved
                )
                euler = list_construction(tree, root_resolved)
                duration = ROUNDS_PER_ITERATION * (
                    phase1_iterations + phase2_iterations
                )
            for pid in range(1, n):
                tree.require_vertex(inputs[pid])
        execution = _make_execution(
            n,
            t,
            party_t,
            spec,
            trace_level,
            fault_plan,
            lambda pid: TreeAAParty(
                pid, n, party_t, tree, inputs[pid], root=root
            ),
        )
        honest_sorted = sorted(execution.honest_set)
        _attach_metrics(
            execution,
            collector,
            duration,
            False,
            honest_estimates=[inputs[pid] for pid in honest_sorted],
        )
        if n and trivial:
            # Trivial input space: 0 rounds, every party outputs its input
            # (set at construction, so even silent puppets carry it).
            for pid in range(n):
                view = BatchTreeAAView(
                    pid, n, party_t, 0, tree, inputs[pid], root_resolved
                )
                view.output = inputs[pid]
                views[pid] = view
                outputs[pid] = inputs[pid]
        elif n:
            phase1_rounds = ROUNDS_PER_ITERATION * phase1_iterations
            values1 = [
                float(euler.first_occurrence(inputs[pid])) for pid in range(n)
            ]
            finder_views: Dict[int, BatchRealAAView] = {}
            tree_views: Dict[int, BatchTreeAAView] = {}
            for pid in range(n):
                tree_view = BatchTreeAAView(
                    pid, n, party_t, duration, tree, inputs[pid], root_resolved
                )
                finder = BatchPathsFinderView(
                    pid,
                    n,
                    party_t,
                    phase1_rounds,
                    values1[pid],
                    phase1_iterations,
                    tree,
                    euler,
                    inputs[pid],
                )
                tree_view.paths_finder = finder
                finder_views[pid] = finder
                tree_views[pid] = tree_view
                views[pid] = tree_view
            if execution.has_honest:
                self._run_tree_phases(
                    execution,
                    tree,
                    inputs,
                    euler,
                    values1,
                    phase1_iterations,
                    phase2_iterations,
                    tree_views,
                    finder_views,
                    outputs,
                )
        _finish_metrics(
            execution, [outputs[pid] for pid in honest_sorted]
        )
        parties: Dict[int, Any] = dict(views)
        _finish_dense(execution, adversary, outputs, parties)
        result = ExecutionResult(
            outputs=outputs,
            honest=execution.honest_set,
            corrupted=set(execution.corrupted),
            trace=execution.trace,
            parties=parties,
        )
        honest_inputs = {
            pid: inputs[pid] for pid in sorted(execution.honest_set)
        }
        honest_outputs = result.honest_outputs
        verdicts = _evaluate_tree_outputs(tree, honest_inputs, honest_outputs)
        return TreeAAOutcome(
            execution=result,
            tree=tree,
            honest_inputs=honest_inputs,
            honest_outputs=honest_outputs,
            rounds=result.trace.rounds_executed,
            **verdicts,
        )

    def _run_tree_phases(
        self,
        execution: "AnyExecution",
        tree: LabeledTree,
        inputs: Sequence[Label],
        euler: EulerList,
        values1: List[float],
        phase1_iterations: int,
        phase2_iterations: int,
        tree_views: Dict[int, BatchTreeAAView],
        finder_views: Dict[int, BatchRealAAView],
        outputs: Dict[PartyId, Any],
    ) -> None:
        """Both TreeAA phases plus the boundary logic between them.

        The phase-1 → phase-2 boundary mirrors the reference execution
        order: corrupted puppets whose validity guard fires die silently
        (the adversary pops them); the first *honest* violation raises out
        of the run, in ascending pid order.
        """
        n = execution.n
        phase1 = execution.run_realaa_phase(
            np.array(values1, dtype=np.float64), 1.0, phase1_iterations
        )
        _populate_realaa_views(finder_views, phase1)
        honest = execution.honest_set
        active = _active_pids(phase1)
        paths: Dict[int, TreePath] = {}
        positions: Dict[int, float] = {}
        dead = np.zeros(n, dtype=bool)
        path_memo: Dict[int, Tuple[Label, TreePath]] = {}
        position_memo: Dict[Tuple[int, Label], Tuple[Label, int]] = {}

        def select_path(pid: int) -> None:
            value = float(phase1.values[pid])
            index = closest_int(value)
            check_index_in_range(index, len(euler), "L", value)
            pair = path_memo.get(index)
            if pair is None:
                vertex = euler[index]
                pair = (vertex, TreePath(euler.rooted.root_path(vertex)))
                path_memo[index] = pair
            selected, found = pair
            finder = finder_views[pid]
            if isinstance(finder, BatchPathsFinderView):
                finder.selected_vertex = selected
            finder.output = found
            paths[pid] = found
            key = (index, inputs[pid])
            memoised = position_memo.get(key)
            if memoised is None:
                projection = project_onto_path(tree, inputs[pid], found)
                memoised = (projection, found.position_of(projection))
                position_memo[key] = memoised
            projection, position = memoised
            positions[pid] = float(position)
            view = tree_views[pid]
            view.projection_phase = BatchProjectionView(
                pid,
                n,
                view.t,
                ROUNDS_PER_ITERATION * phase2_iterations,
                float(position),
                phase2_iterations,
                found,
                projection,
            )

        for pid in [p for p in active if p in honest]:
            select_path(pid)  # raises for the lowest violating honest pid
        for pid in [p for p in active if p not in honest]:
            try:
                select_path(pid)
            except ValidityViolationError:
                dead[pid] = True
        execution.retire_dead(dead)
        if execution.metrics is not None:
            # Phase 1's final metrics row was held back: in the reference
            # a validity violation raises during that round's receives,
            # before the observer fires.  The boundary passed — flush it.
            execution.metrics.flush()

        values2 = np.zeros(n, dtype=np.float64)
        for pid, position in positions.items():
            values2[pid] = position
        phase2 = execution.run_realaa_phase(values2, 1.0, phase2_iterations)
        projection_views: Dict[int, BatchRealAAView] = {}
        for pid in _active_pids(phase2):
            phase_view = tree_views[pid].projection_phase
            if phase_view is not None:
                projection_views[pid] = phase_view
        _populate_realaa_views(projection_views, phase2)

        def finish(pid: int, raising: bool) -> None:
            value = float(phase2.values[pid])
            index = closest_int(value)
            if index < 0:
                if raising:
                    raise ValidityViolationError(
                        f"closestInt({value}) = {index} below the path start "
                        "— RealAA validity was violated"
                    )
                return  # the puppet died of the validity guard
            own_path = paths[pid]
            vertex = own_path.end if index >= len(own_path) else own_path[index]
            phase_view = tree_views[pid].projection_phase
            if phase_view is not None:
                phase_view.output = vertex
            tree_views[pid].output = vertex
            outputs[pid] = vertex

        final_active = _active_pids(phase2)
        for pid in [p for p in final_active if p in honest]:
            finish(pid, raising=True)
        for pid in [p for p in final_active if p not in honest]:
            finish(pid, raising=False)
