"""Vectorized metrics: feeding a ``MetricsCollector`` from batch kernels.

The reference :class:`~repro.observability.collector.MetricsCollector`
watches materialised per-message traffic.  The batch engines never build
that traffic — they already hold the per-round reductions the collector
would compute (message and payload-unit counts from the trace accounting,
honest value vectors for the spread) — so :class:`BatchMetrics` turns
those reductions into reference-identical
:class:`~repro.observability.collector.RoundMetrics` rows and appends
them to the *caller's own collector*.  Downstream consumers (JSONL trace
export, sweep summaries, ``repro report``) see the exact rows a reference
run would have produced, modulo the explicitly non-deterministic
``wall_seconds`` field.

Two reference behaviours shape the design:

* ``Observer.on_round`` fires *after* the honest parties processed the
  round, so a protocol-violation raise during a round suppresses that
  round's row.  Kernel rounds cannot raise mid-phase — only the backend's
  phase-boundary checks can — so rows are appended eagerly except the
  phase-final row, which is *held* until the backend's boundary checks
  pass (:meth:`BatchMetrics.flush`).
* The hull diameter is computed from the honest parties' current
  estimates — their ``output`` once set, falling back to ``input_vertex``
  — against the **collector's** tree.  Outputs only appear in the final
  round's row, whose hull is therefore patched in :meth:`finalize` once
  the backend knows the outputs; every earlier row uses the constant
  input-estimate hull.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

import numpy as np

from ..observability.collector import MetricsCollector, RoundMetrics
from ..trees.convex import steiner_diameter


class BatchMetrics:
    """Reference-identical ``RoundMetrics`` rows from batch reductions.

    Parameters
    ----------
    collector:
        The caller's :class:`~repro.observability.collector
        .MetricsCollector`; rows land in ``collector.rounds`` and its
        clock drives ``wall_seconds``.
    n, corrupted:
        Execution shape; ``corrupted`` becomes the constant per-row
        corrupted tuple (supported adversaries never corrupt adaptively).
    total_rounds:
        The protocol duration: the row with ``round_index ==
        total_rounds - 1`` is the final row (honest outputs decided,
        output-based hull).
    track_value_spread:
        Whether honest parties expose RealAA-style ``value`` state
        (RealAA / PathAA routes).  The TreeAA route's parties do not, so
        its reference rows carry ``value_spread=None``.
    honest_estimates:
        Pid-ascending honest input estimates (vertices) for the hull,
        or ``None`` when the collector has no tree.
    """

    def __init__(
        self,
        collector: MetricsCollector,
        *,
        n: int,
        corrupted: Sequence[int],
        total_rounds: int,
        track_value_spread: bool,
        honest_estimates: Optional[Sequence[Any]] = None,
    ) -> None:
        self._collector = collector
        self._n = n
        self._corrupted = tuple(sorted(corrupted))
        corrupted_set = set(self._corrupted)
        honest = [pid for pid in range(n) if pid not in corrupted_set]
        self._honest_count = len(honest)
        self._hmask = np.zeros(n, dtype=bool)
        self._hmask[honest] = True
        self._total_rounds = total_rounds
        self._spread = track_value_spread
        self._inputs: List[Any] = list(honest_estimates or ())
        tree = collector.tree
        self._prefinal_hull: Optional[int] = None
        if tree is not None:
            estimates = [v for v in self._inputs if v in tree]
            if estimates:
                self._prefinal_hull = steiner_diameter(tree, estimates)
        self._pending: List[RoundMetrics] = []
        self._final_row: Optional[RoundMetrics] = None

    def emit(
        self,
        round_index: int,
        honest_messages: int,
        byzantine_messages: int,
        honest_units: int,
        byzantine_units: int,
        values: Optional[np.ndarray] = None,
        hold: bool = False,
    ) -> None:
        """Record one round's row (reference ``on_round`` equivalent).

        Counts are on the *sent* traffic, like the observer's view.
        ``values`` is the full ``(n,)`` value vector when the route's
        parties carry real-valued state.  ``hold=True`` keeps the row
        pending until :meth:`flush` — used for the phase-final round,
        whose reference row only exists if the honest boundary processing
        did not raise.
        """
        now = self._collector._clock()
        wall = now - self._collector._last_time
        self._collector._last_time = now
        final = round_index == self._total_rounds - 1
        spread: Optional[float] = None
        if self._spread and values is not None and self._honest_count:
            honest_values = values[self._hmask]
            spread = float(honest_values.max()) - float(honest_values.min())
        row = RoundMetrics(
            round_index=round_index,
            honest_messages=int(honest_messages),
            byzantine_messages=int(byzantine_messages),
            honest_payload_units=int(honest_units),
            byzantine_payload_units=int(byzantine_units),
            corrupted=self._corrupted,
            outputs_decided=self._honest_count if final else 0,
            hull_diameter=self._prefinal_hull,
            value_spread=spread,
            wall_seconds=wall,
        )
        if final:
            self._final_row = row
        self._pending.append(row)
        if not hold:
            self.flush()

    def finalize(self, outputs: Optional[Sequence[Any]] = None) -> None:
        """Patch the final row's hull once honest outputs are known.

        *outputs* is pid-ascending over the honest parties.  Mirrors the
        reference estimate fallback: a party contributes its ``output``
        when that is a vertex of the collector's tree, else its input
        estimate, else nothing.
        """
        tree = self._collector.tree
        row = self._final_row
        if row is None or tree is None:
            return
        estimates: List[Any] = []
        for index, inp in enumerate(self._inputs):
            out = None
            if outputs is not None and index < len(outputs):
                out = outputs[index]
            if out is not None and out in tree:
                estimates.append(out)
            elif inp is not None and inp in tree:
                estimates.append(inp)
        row.hull_diameter = (
            steiner_diameter(tree, estimates) if estimates else None
        )

    def flush(self) -> None:
        """Append all pending rows to the collector (boundary passed)."""
        if self._pending:
            self._collector.rounds.extend(self._pending)
            self._pending.clear()
