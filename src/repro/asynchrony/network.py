"""An asynchronous message-passing simulator.

The paper's prior art for trees ([33]) and the classic AA literature
([12], [1]) live in the *asynchronous* model: messages are delivered
*eventually*, in an order chosen by the adversary, with no common clock.
This module simulates that model as an event loop:

* every sent message joins a pending pool;
* a :class:`Scheduler` — the adversary's delivery half — picks which
  pending message is delivered next;
* the network enforces **eventual delivery** regardless of the scheduler:
  once a message has waited longer than the fairness window, the oldest
  pending message is delivered next (the standard "the adversary may delay
  but not drop" guarantee, made finite);
* a Byzantine adversary may inject messages from corrupted parties at any
  step (bounded by an injection budget so runs terminate).

Protocol code is written against :class:`AsyncParty`: purely reactive
state machines (``start`` → initial messages, ``on_message`` → follow-up
messages), with no notion of rounds.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..net.faults import FaultInjector, FaultPlan
from ..net.messages import PartyId
from ..net.network import ByzantineModelError, payload_units

if TYPE_CHECKING:  # runtime import would be circular (adversary imports network)
    from .adversary import AsyncAdversary

#: Outgoing traffic: a list of (recipient, payload) pairs.
AsyncOutbox = List[Tuple[PartyId, Any]]


@dataclass(frozen=True)
class AsyncMessage:
    """An in-flight message: authenticated sender, enqueued at *step*."""

    sender: PartyId
    recipient: PartyId
    payload: Any
    step: int
    seq: int  # unique, for deterministic tie-breaking


class AsyncParty(abc.ABC):
    """A reactive protocol party for the asynchronous model."""

    def __init__(self, pid: PartyId, n: int, t: int) -> None:
        if not 0 <= pid < n:
            raise ValueError(f"party id {pid} out of range for n={n}")
        self.pid = pid
        self.n = n
        self.t = t
        self.output: Any = None

    @abc.abstractmethod
    def start(self) -> AsyncOutbox:
        """Messages sent spontaneously at activation."""

    @abc.abstractmethod
    def on_message(self, sender: PartyId, payload: Any) -> AsyncOutbox:
        """React to one delivered message; return follow-up messages."""

    @property
    def finished(self) -> bool:
        """Whether the party has produced its output."""
        return self.output is not None

    def broadcast(self, payload: Any) -> AsyncOutbox:
        """Convenience: one copy to every party (including oneself)."""
        return [(recipient, payload) for recipient in range(self.n)]


class Scheduler(abc.ABC):
    """The adversary's control over delivery order."""

    @abc.abstractmethod
    def choose(self, pending: Sequence[AsyncMessage], step: int) -> int:
        """Index (into *pending*) of the message to deliver next."""


class FIFOScheduler(Scheduler):
    """Deliver messages in the order they were sent."""

    def choose(self, pending: Sequence[AsyncMessage], step: int) -> int:
        return 0


class RandomScheduler(Scheduler):
    """Uniformly random delivery order (seeded)."""

    def __init__(self, seed: int = 0) -> None:
        import random

        self._rng = random.Random(seed)

    def choose(self, pending: Sequence[AsyncMessage], step: int) -> int:
        return self._rng.randrange(len(pending))


class DelaySendersScheduler(Scheduler):
    """Starve messages *from* the chosen senders for as long as fairness
    allows — e.g. to keep a subset of honest parties out of every quorum."""

    def __init__(self, slow_senders: Sequence[PartyId]) -> None:
        self.slow = set(slow_senders)

    def choose(self, pending: Sequence[AsyncMessage], step: int) -> int:
        for index, message in enumerate(pending):
            if message.sender not in self.slow:
                return index
        return 0


class ScriptedScheduler(Scheduler):
    """Delivery order driven by an arbitrary integer script.

    Step ``i`` delivers ``pending[script[i] % len(pending)]``; past the end
    of the script it falls back to FIFO.  This is the hypothesis hook: a
    drawn integer list explores *arbitrary* delivery orders, so property
    tests can quantify over schedules rather than over a handful of named
    strategies.
    """

    def __init__(self, script: Sequence[int]) -> None:
        self.script = list(script)
        self._cursor = 0

    def choose(self, pending: Sequence[AsyncMessage], step: int) -> int:
        if self._cursor >= len(self.script):
            return 0
        index = self.script[self._cursor] % len(pending)
        self._cursor += 1
        return index


class SplitScheduler(Scheduler):
    """Starve traffic *between* two party groups (intra-group runs fast).

    The classic partition-style schedule used to stress quorum protocols.
    """

    def __init__(self, group_a: Sequence[PartyId]) -> None:
        self.group_a = set(group_a)

    def choose(self, pending: Sequence[AsyncMessage], step: int) -> int:
        for index, message in enumerate(pending):
            same_side = (message.sender in self.group_a) == (
                message.recipient in self.group_a
            )
            if same_side:
                return index
        return 0


@dataclass
class AsyncTrace:
    """Accounting for one asynchronous execution."""

    steps: int = 0
    honest_message_count: int = 0
    byzantine_message_count: int = 0
    honest_payload_units: int = 0
    forced_fair_deliveries: int = 0
    #: Honest messages altered by an attached :class:`~repro.net.faults
    #: .FaultPlan` (all stay 0 on model-clean executions).
    faults_dropped: int = 0
    faults_duplicated: int = 0
    faults_corrupted: int = 0


@dataclass
class StallDiagnosis:
    """Structured post-mortem of an execution that did not complete.

    Attached to :class:`AsyncExecutionResult` whenever some honest party
    never produced an output — whether the step budget ran out or the
    pending pool simply drained (e.g. honest traffic dropped by a fault
    plan).  ``completed=False`` alone says *that* a run stalled; this
    object says *where*: which parties are stuck and whose traffic is
    still in flight.
    """

    #: Delivery steps executed when the run gave up.
    steps: int
    #: Step budget the run was configured with.
    max_steps: int
    #: Messages still pending, total and broken down by endpoint.
    pending_total: int
    pending_by_sender: Dict[PartyId, int]
    pending_by_recipient: Dict[PartyId, int]
    #: Age (in steps) of the oldest pending message, ``None`` if none.
    oldest_pending_age: Optional[int]
    #: Per-honest-party finished flags, and the stuck subset.
    finished: Dict[PartyId, bool]
    unfinished: List[PartyId]

    @property
    def budget_exhausted(self) -> bool:
        """Whether the stall was the step limit (vs. a drained queue)."""
        return self.steps >= self.max_steps

    def summary(self) -> str:
        """One human-readable line for logs and campaign reports."""
        cause = (
            "step budget exhausted" if self.budget_exhausted
            else "pending queue drained"
        )
        return (
            f"stalled after {self.steps} steps ({cause}): "
            f"{len(self.unfinished)} honest unfinished "
            f"{self.unfinished}, {self.pending_total} pending"
        )


@dataclass
class AsyncExecutionResult:
    """Outcome of one asynchronous execution: outputs, roles, accounting."""

    outputs: Dict[PartyId, Any]
    honest: Set[PartyId]
    corrupted: Set[PartyId]
    trace: AsyncTrace
    parties: Dict[PartyId, AsyncParty]
    #: Whether every honest party finished before the step limit.
    completed: bool
    #: ``None`` when completed; otherwise a structured stall post-mortem.
    stall: Optional[StallDiagnosis] = None

    @property
    def honest_outputs(self) -> Dict[PartyId, Any]:
        return {pid: self.outputs[pid] for pid in sorted(self.honest)}


class AsynchronousNetwork:
    """Event-loop executor for asynchronous protocols.

    Parameters
    ----------
    parties:
        One :class:`AsyncParty` per id.  Corrupted ids' instances are
        handed to the adversary as puppets (it may drive or ignore them).
    adversary:
        An object implementing :class:`repro.asynchrony.adversary
        .AsyncAdversary`, or ``None``.
    scheduler:
        Delivery-order strategy; FIFO when omitted.
    fairness_window:
        Eventual delivery, made finite: a message older than this many
        steps is delivered before anything newer may jump the queue.
        ``None`` (the default) adapts the window to the load —
        ``max(64, 4 × pending)`` — so the adversary's relative delaying
        power is the same whether ten or ten thousand messages are in
        flight.
    max_steps:
        Hard safety limit; exceeding it marks the run incomplete rather
        than looping forever.
    fault_plan:
        An optional :class:`~repro.net.faults.FaultPlan` applied to
        honest traffic as it is *enqueued* (the plan's round window is
        interpreted over delivery steps at send time).  Dropping honest
        messages breaks eventual delivery — the reason the plan requires
        ``allow_model_violations=True`` — and typically surfaces as a
        stall, which the returned :class:`StallDiagnosis` explains.
    """

    def __init__(
        self,
        parties: Dict[PartyId, AsyncParty],
        t: int,
        adversary: Optional[AsyncAdversary] = None,
        scheduler: Optional[Scheduler] = None,
        fairness_window: Optional[int] = None,
        max_steps: int = 200_000,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        n = len(parties)
        if sorted(parties) != list(range(n)):
            raise ValueError("parties must be keyed 0..n-1")
        if fairness_window is not None and fairness_window < 1:
            raise ValueError("fairness_window must be positive")
        self.n = n
        self.t = t
        self.parties = parties
        self.adversary = adversary
        self.scheduler = scheduler or FIFOScheduler()
        self.fairness_window = fairness_window
        self.max_steps = max_steps
        self.pending: List[AsyncMessage] = []
        self.trace = AsyncTrace()
        self.corrupted: Set[PartyId] = set()
        self._seq = 0
        self.fault_injector: Optional[FaultInjector] = (
            FaultInjector(fault_plan) if fault_plan is not None else None
        )
        if adversary is not None:
            self.corrupted = set(adversary.initial_corruptions(n, t))
            if len(self.corrupted) > t:
                raise ByzantineModelError(
                    f"adversary corrupted {len(self.corrupted)} parties "
                    f"but the budget is t={t}"
                )
            for pid in self.corrupted:
                if not 0 <= pid < n:
                    raise ByzantineModelError(f"unknown party {pid}")
            adversary.on_corrupted(
                {pid: parties[pid] for pid in self.corrupted}
            )

    # ------------------------------------------------------------------

    def _honest(self) -> Set[PartyId]:
        return set(range(self.n)) - self.corrupted

    def _enqueue(self, sender: PartyId, outbox: AsyncOutbox, honest: bool) -> None:
        for recipient, payload in outbox:
            if not 0 <= recipient < self.n:
                continue
            if honest:
                # Sent accounting happens before the fault plan: the
                # trace answers "what was emitted", the fault counters
                # answer "what the channel did to it".
                self.trace.honest_message_count += 1
                self.trace.honest_payload_units += payload_units(payload)
            else:
                self.trace.byzantine_message_count += 1
            copies = [payload]
            if honest and self.fault_injector is not None:
                copies = self.fault_injector.transmit(self.trace.steps, payload)
            for copy in copies:
                self.pending.append(
                    AsyncMessage(sender, recipient, copy, self.trace.steps, self._seq)
                )
                self._seq += 1

    def _enqueue_byzantine(self, injections) -> None:
        for sender, recipient, payload in injections:
            if sender not in self.corrupted:
                raise ByzantineModelError(
                    f"adversary tried to speak for honest party {sender}"
                )
            self._enqueue(sender, [(recipient, payload)], honest=False)

    def run(self) -> AsyncExecutionResult:
        for pid in sorted(self._honest()):
            self._enqueue(pid, self.parties[pid].start(), honest=True)
        if self.adversary is not None:
            self._enqueue_byzantine(self.adversary.on_start(self))

        while self.pending and not self._all_honest_finished():
            if self.trace.steps >= self.max_steps:
                break
            index = self._pick()
            message = self.pending.pop(index)
            self.trace.steps += 1
            if message.recipient in self.corrupted:
                if self.adversary is not None:
                    self._enqueue_byzantine(
                        self.adversary.on_deliver_to_corrupted(message, self)
                    )
            else:
                party = self.parties[message.recipient]
                replies = party.on_message(message.sender, message.payload)
                self._enqueue(message.recipient, replies, honest=True)
                if self.adversary is not None:
                    self._enqueue_byzantine(
                        self.adversary.on_step(message, self)
                    )

        if self.fault_injector is not None:
            self.trace.faults_dropped = self.fault_injector.dropped
            self.trace.faults_duplicated = self.fault_injector.duplicated
            self.trace.faults_corrupted = self.fault_injector.corrupted
        outputs = {pid: self.parties[pid].output for pid in range(self.n)}
        completed = self._all_honest_finished()
        return AsyncExecutionResult(
            outputs=outputs,
            honest=self._honest(),
            corrupted=set(self.corrupted),
            trace=self.trace,
            parties=self.parties,
            completed=completed,
            stall=None if completed else self._diagnose_stall(),
        )

    def _diagnose_stall(self) -> StallDiagnosis:
        """Explain an incomplete run: who is stuck, what is still in flight."""
        by_sender: Dict[PartyId, int] = {}
        by_recipient: Dict[PartyId, int] = {}
        oldest: Optional[int] = None
        for message in self.pending:
            by_sender[message.sender] = by_sender.get(message.sender, 0) + 1
            by_recipient[message.recipient] = (
                by_recipient.get(message.recipient, 0) + 1
            )
            age = self.trace.steps - message.step
            if oldest is None or age > oldest:
                oldest = age
        finished = {
            pid: self.parties[pid].finished for pid in sorted(self._honest())
        }
        return StallDiagnosis(
            steps=self.trace.steps,
            max_steps=self.max_steps,
            pending_total=len(self.pending),
            pending_by_sender=by_sender,
            pending_by_recipient=by_recipient,
            oldest_pending_age=oldest,
            finished=finished,
            unfinished=[pid for pid, done in finished.items() if not done],
        )

    def _all_honest_finished(self) -> bool:
        return all(self.parties[pid].finished for pid in self._honest())

    def _pick(self) -> int:
        # Eventual delivery: if anything has waited past the fairness
        # window, the oldest message goes first, whatever the scheduler
        # prefers.
        oldest_index = min(
            range(len(self.pending)),
            key=lambda i: (self.pending[i].step, self.pending[i].seq),
        )
        oldest = self.pending[oldest_index]
        window = (
            self.fairness_window
            if self.fairness_window is not None
            else max(64, 4 * len(self.pending))
        )
        if self.trace.steps - oldest.step >= window:
            self.trace.forced_fair_deliveries += 1
            return oldest_index
        index = self.scheduler.choose(self.pending, self.trace.steps)
        if not 0 <= index < len(self.pending):
            raise ValueError(
                f"scheduler chose index {index} among {len(self.pending)}"
            )
        return index


def run_async_protocol(
    n: int,
    t: int,
    party_factory: Callable[[PartyId], AsyncParty],
    adversary: Optional[AsyncAdversary] = None,
    scheduler: Optional[Scheduler] = None,
    fairness_window: Optional[int] = None,
    max_steps: int = 200_000,
    fault_plan: Optional[FaultPlan] = None,
) -> AsyncExecutionResult:
    """Build parties, wire the adversary and scheduler, run to completion."""
    parties = {pid: party_factory(pid) for pid in range(n)}
    network = AsynchronousNetwork(
        parties,
        t,
        adversary=adversary,
        scheduler=scheduler,
        fairness_window=fairness_window,
        max_steps=max_steps,
        fault_plan=fault_plan,
    )
    return network.run()
