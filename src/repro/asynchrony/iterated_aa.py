"""Asynchronous iterated AA — the model of [1], [12], and, on trees, [33].

The asynchronous counterpart of the iteration-based outline: in every
iteration a party reliably broadcasts its current value, collects values
from ``n − t`` parties, and applies a safe-area update.  Asynchrony adds
one famous wrinkle: two honest parties may collect *different* ``n − t``
subsets, so without care their safe areas need not overlap enough.  The
classic **witness technique** repairs this:

1. after delivering ``n − t`` values for iteration ``r``, a party reports
   the *set of senders* it has seen (a plain authenticated message);
2. a reporter ``j`` becomes my *witness* once every sender in ``j``'s
   report has also been delivered to me (reliable-broadcast totality
   guarantees this eventually happens for honest ``j``);
3. only after accumulating ``n − t`` witnesses does the party update.

Any two honest parties then share ``≥ n − 2t ≥ t + 1`` witnesses — hence
at least one *honest* common witness, whose ``n − t`` reported values both
parties used.  With the trimmed-midpoint (reals) or safe-area-midpoint
(trees) update this overlap yields the classic per-iteration halving, so
``O(log(D/ε))`` iterations suffice — exactly the ``O(log D)`` bound of
[33] that TreeAA improves on in the synchronous model.

Byzantine origins are harmless: reliable broadcast makes their values
*consistent* across honest parties, the update rules trim/trim-robustly
against up to ``t`` of them, and malformed values are rejected at
delivery.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Set

from ..net.messages import PartyId
from ..protocols.realaa import is_real
from ..trees.labeled_tree import Label, LabeledTree
from ..trees.paths import diameter
from ..trees.safe_area import safe_area_midpoint
from .network import AsyncOutbox, AsyncParty
from .rbc import BrachaBroadcast


@dataclass
class AsyncIterationRecord:
    """Diagnostics for one completed asynchronous iteration."""

    iteration: int
    value_count: int
    witness_count: int
    new_value: Any


class IteratedAsyncAAParty(AsyncParty):
    """Shared skeleton: RBC value distribution + witnesses + safe update.

    Subclasses provide the value validator, the update rule, and the final
    output mapping.
    """

    def __init__(
        self,
        pid: PartyId,
        n: int,
        t: int,
        input_value: Any,
        iterations: int,
    ) -> None:
        super().__init__(pid, n, t)
        if n <= 3 * t:
            raise ValueError(f"need n > 3t (got n={n}, t={t})")
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.iterations = iterations
        self.input_value = input_value
        self.value: Any = input_value
        self.iteration = 0
        self.history: List[AsyncIterationRecord] = []
        #: iteration -> origin -> delivered value
        self._delivered: Dict[int, Dict[PartyId, Any]] = {}
        #: iteration -> reporter -> reported sender set
        self._reports: Dict[int, Dict[PartyId, FrozenSet[PartyId]]] = {}
        self._reported: Set[int] = set()
        self.rbc = BrachaBroadcast(
            pid, n, t, self._on_rbc_deliver, validate=self._validate_value
        )

    # -- protocol hooks --------------------------------------------------

    @abc.abstractmethod
    def _validate_value(self, value: Any) -> bool:
        """Whether *value* is a legal protocol value."""

    @abc.abstractmethod
    def _update(self, values: List[Any]) -> Any:
        """The safe-area update over the collected values."""

    def _final_output(self) -> Any:
        return self.value

    # -- async machinery ---------------------------------------------------

    def start(self) -> AsyncOutbox:
        return self.rbc.broadcast(("val", 0), self.value) + self._progress()

    def on_message(self, sender: PartyId, payload: Any) -> AsyncOutbox:
        out: AsyncOutbox = []
        if (
            isinstance(payload, tuple)
            and len(payload) == 3
            and payload[0] == "report"
        ):
            self._on_report(sender, payload[1], payload[2])
        else:
            out.extend(self.rbc.handle(sender, payload))
        out.extend(self._progress())
        return out

    def _on_rbc_deliver(self, origin: PartyId, tag: Any, value: Any) -> None:
        if (
            isinstance(tag, tuple)
            and len(tag) == 2
            and tag[0] == "val"
            and isinstance(tag[1], int)
            and 0 <= tag[1] < self.iterations
        ):
            self._delivered.setdefault(tag[1], {})[origin] = value

    def _on_report(self, reporter: PartyId, iteration: Any, senders: Any) -> None:
        if not isinstance(iteration, int) or not 0 <= iteration < self.iterations:
            return
        if not isinstance(senders, tuple) or len(senders) > self.n:
            return
        if not all(isinstance(s, int) and 0 <= s < self.n for s in senders):
            return
        # First report per reporter counts; honest parties report once.
        self._reports.setdefault(iteration, {}).setdefault(
            reporter, frozenset(senders)
        )

    def _progress(self) -> AsyncOutbox:
        """Drive the iteration state machine as far as possible."""
        out: AsyncOutbox = []
        while self.iteration < self.iterations:
            r = self.iteration
            delivered = self._delivered.setdefault(r, {})
            if r not in self._reported:
                if len(delivered) < self.n - self.t:
                    break
                self._reported.add(r)
                out.extend(
                    self.broadcast(
                        ("report", r, tuple(sorted(delivered)))
                    )
                )
            witnesses = {
                reporter
                for reporter, senders in self._reports.get(r, {}).items()
                if senders <= set(delivered)
            }
            if len(witnesses) < self.n - self.t:
                break
            values = [delivered[origin] for origin in sorted(delivered)]
            self.value = self._update(values)
            self.history.append(
                AsyncIterationRecord(
                    iteration=r,
                    value_count=len(values),
                    witness_count=len(witnesses),
                    new_value=self.value,
                )
            )
            self.iteration += 1
            if self.iteration == self.iterations:
                self.output = self._final_output()
                break
            out.extend(
                self.rbc.broadcast(("val", self.iteration), self.value)
            )
        return out


class AsyncRealAAParty(IteratedAsyncAAParty):
    """Asynchronous AA on ℝ: trimmed-midpoint updates, halving per
    iteration — the structure of [12]/[1] at resilience ``t < n/3``."""

    def __init__(
        self,
        pid: PartyId,
        n: int,
        t: int,
        input_value: float,
        epsilon: float = 1.0,
        known_range: Optional[float] = None,
        iterations: Optional[int] = None,
    ) -> None:
        if not is_real(input_value):
            raise ValueError(f"input must be a finite real, got {input_value!r}")
        if iterations is None:
            if known_range is None:
                raise ValueError("give known_range or iterations")
            if epsilon <= 0:
                raise ValueError("epsilon must be positive")
            if known_range <= epsilon:
                iterations = 1
            else:
                iterations = max(1, math.ceil(math.log2(known_range / epsilon)))
        super().__init__(pid, n, t, float(input_value), iterations)
        self.epsilon = epsilon

    def _validate_value(self, value: Any) -> bool:
        return is_real(value)

    def _update(self, values: List[Any]) -> float:
        ordered = sorted(float(v) for v in values)
        if len(ordered) > 2 * self.t:
            ordered = ordered[self.t : len(ordered) - self.t]
        return (ordered[0] + ordered[-1]) / 2.0


class AsyncTreeAAParty(IteratedAsyncAAParty):
    """Asynchronous AA on trees: the [33]-style protocol TreeAA improves on.

    Values are vertices of the public input space tree; the update is the
    midpoint of the tree safe area; ``O(log D(T))`` iterations reach
    1-agreement.
    """

    def __init__(
        self,
        pid: PartyId,
        n: int,
        t: int,
        tree: LabeledTree,
        input_vertex: Label,
        iterations: Optional[int] = None,
    ) -> None:
        tree.require_vertex(input_vertex)
        if iterations is None:
            from ..baselines.iterative_tree import tree_halving_iterations

            iterations = tree_halving_iterations(diameter(tree))
        self.tree = tree
        super().__init__(pid, n, t, input_vertex, iterations)

    def _validate_value(self, value: Any) -> bool:
        try:
            return value in self.tree
        except TypeError:
            return False

    def _update(self, values: List[Any]) -> Label:
        return safe_area_midpoint(self.tree, values, self.t)
