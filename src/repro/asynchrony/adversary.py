"""Byzantine adversaries for the asynchronous model.

The async adversary has two halves: delivery scheduling (a
:class:`~repro.asynchrony.network.Scheduler`) and corrupted-party
behaviour (this module).  Injection hooks fire on every delivery step, so
the adversary is fully reactive; an injection budget keeps executions
finite (a real adversary gains nothing from unbounded spam — honest
parties simply ignore it — but a simulator must not loop forever).
"""

from __future__ import annotations

import abc
import random
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..net.messages import PartyId
from .network import AsyncMessage, AsyncParty, AsynchronousNetwork

#: (sender, recipient, payload) triples the adversary wants enqueued.
Injections = List[Tuple[PartyId, PartyId, Any]]


class AsyncAdversary(abc.ABC):
    """Base class: static corruption of an explicit (or default) set."""

    def __init__(self, corrupt: Optional[Iterable[PartyId]] = None) -> None:
        self._requested = set(corrupt) if corrupt is not None else None
        self.puppets: Dict[PartyId, AsyncParty] = {}

    def initial_corruptions(self, n: int, t: int) -> Set[PartyId]:
        if self._requested is not None:
            return set(self._requested)
        return set(range(n - t, n))

    def on_corrupted(self, puppets: Dict[PartyId, AsyncParty]) -> None:
        self.puppets.update(puppets)

    def on_start(self, network: AsynchronousNetwork) -> Injections:
        """Messages injected before any delivery happens."""
        return []

    def on_step(
        self, delivered: AsyncMessage, network: AsynchronousNetwork
    ) -> Injections:
        """React to an honest delivery (full information, rushing-like)."""
        return []

    def on_deliver_to_corrupted(
        self, message: AsyncMessage, network: AsynchronousNetwork
    ) -> Injections:
        """React to a message arriving at a corrupted party."""
        return []


class AsyncSilentAdversary(AsyncAdversary):
    """Corrupted parties never send anything."""


class AsyncPassiveAdversary(AsyncAdversary):
    """Corrupted parties run their faithful state machines.

    The async analogue of honest-but-controlled: puppets are started on the
    first delivery step and react to every message addressed to them.
    """

    def __init__(self, corrupt: Optional[Iterable[PartyId]] = None) -> None:
        super().__init__(corrupt)
        self._started = False

    def on_start(self, network: AsynchronousNetwork) -> Injections:
        self._started = True
        injections: Injections = []
        for pid in sorted(self.puppets):
            for recipient, payload in self.puppets[pid].start():
                injections.append((pid, recipient, payload))
        return injections

    def on_deliver_to_corrupted(
        self, message: AsyncMessage, network: AsynchronousNetwork
    ) -> Injections:
        puppet = self.puppets.get(message.recipient)
        if puppet is None:
            return []
        try:
            replies = puppet.on_message(message.sender, message.payload)
        except Exception:
            self.puppets.pop(message.recipient, None)
            return []
        return [(message.recipient, recipient, payload) for recipient, payload in replies]


class AsyncLiarAdversary(AsyncPassiveAdversary):
    """Faithful protocol execution from forged inputs."""

    def __init__(
        self,
        liar_factory,
        corrupt: Optional[Iterable[PartyId]] = None,
    ) -> None:
        super().__init__(corrupt)
        self._liar_factory = liar_factory

    def on_corrupted(self, puppets: Dict[PartyId, AsyncParty]) -> None:
        forged = {pid: self._liar_factory(pid) for pid in puppets}
        super().on_corrupted(forged)


class AsyncNoiseAdversary(AsyncAdversary):
    """Inject structurally random garbage, up to a total budget."""

    _JUNK: Sequence[Any] = (
        None,
        0,
        -1.5,
        "junk",
        ("init",),
        ("init", ("val", 0), "x", "extra"),
        ("echo", None, None, None),
        ("ready", ("val", 1), 7, [1, 2]),
        ("report", 3, "not-a-tuple"),
        {"dict": "payload"},
    )

    def __init__(
        self,
        seed: int = 0,
        budget: int = 500,
        corrupt: Optional[Iterable[PartyId]] = None,
    ) -> None:
        super().__init__(corrupt)
        self._rng = random.Random(seed)
        self._budget = budget

    def _spray(self, network: AsynchronousNetwork) -> Injections:
        injections: Injections = []
        corrupted = sorted(network.corrupted)
        while self._budget > 0 and self._rng.random() < 0.5 and corrupted:
            sender = self._rng.choice(corrupted)
            recipient = self._rng.randrange(network.n)
            injections.append((sender, recipient, self._rng.choice(self._JUNK)))
            self._budget -= 1
        return injections

    def on_start(self, network: AsynchronousNetwork) -> Injections:
        return self._spray(network)

    def on_step(
        self, delivered: AsyncMessage, network: AsynchronousNetwork
    ) -> Injections:
        return self._spray(network)


class EquivocatingSenderAdversary(AsyncAdversary):
    """Corrupted parties send *conflicting* protocol values to the two
    halves of the network — the attack reliable broadcast exists to stop.

    ``make_payload(pid, variant)`` builds the two conflicting payloads;
    variant 0 goes to the lower party ids, variant 1 to the upper ids.
    """

    def __init__(
        self,
        make_payload,
        corrupt: Optional[Iterable[PartyId]] = None,
    ) -> None:
        super().__init__(corrupt)
        self._make_payload = make_payload

    def on_start(self, network: AsynchronousNetwork) -> Injections:
        injections: Injections = []
        half = network.n // 2
        for pid in sorted(network.corrupted):
            low = self._make_payload(pid, 0)
            high = self._make_payload(pid, 1)
            for recipient in range(network.n):
                payload = low if recipient < half else high
                injections.append((pid, recipient, payload))
        return injections
