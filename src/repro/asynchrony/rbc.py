"""Bracha reliable broadcast — the asynchronous trust substrate.

Asynchronous AA with optimal resilience ``t < n/3`` ([1], and the tree
protocol of [33]) is built on *reliable broadcast*: without it, an
equivocating sender could feed different values to different honest
parties and no quorum intersection argument would hold.

Bracha's classic protocol (``n > 3t``), per broadcast instance:

* the origin sends ``init(v)`` to everyone;
* on the first ``init`` from the origin, a party echoes ``echo(v)``;
* on ``n − t`` echoes for the same ``v`` (or ``t + 1`` readies), a party
  sends ``ready(v)`` — once per instance;
* on ``2t + 1`` readies for ``v``, the party *delivers* ``v``.

Guarantees (all proved by quorum intersection, all covered by tests):

* **validity** — an honest origin's value is eventually delivered by all;
* **consistency** — no two honest parties deliver different values for the
  same instance;
* **totality** — if any honest party delivers, every honest party
  eventually delivers.

:class:`BrachaBroadcast` multiplexes any number of instances, keyed by
``(origin, tag)``, inside one party — the form the iterated AA protocols
consume.  :class:`RBCParty` wraps a single instance for direct testing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Set, Tuple

from ..net.messages import PartyId
from .network import AsyncOutbox, AsyncParty

#: Called as ``deliver(origin, tag, value)`` when an instance delivers.
DeliverCallback = Callable[[PartyId, Any, Any], None]


@dataclass
class _InstanceState:
    """Per-(origin, tag) bookkeeping."""

    echoes: Dict[Any, Set[PartyId]] = field(default_factory=dict)
    readies: Dict[Any, Set[PartyId]] = field(default_factory=dict)
    sent_echo: bool = False
    sent_ready: bool = False
    delivered: bool = False


def _hashable(value: Any) -> bool:
    try:
        hash(value)
    except TypeError:
        return False
    return True


class BrachaBroadcast:
    """Multiplexed Bracha instances for one party.

    Parameters
    ----------
    deliver:
        Callback invoked exactly once per delivered instance.
    validate:
        Optional value predicate; invalid values are treated as absent
        (they can then never gather an honest echo quorum).
    """

    def __init__(
        self,
        pid: PartyId,
        n: int,
        t: int,
        deliver: DeliverCallback,
        validate: Optional[Callable[[Any], bool]] = None,
    ) -> None:
        if n <= 3 * t:
            raise ValueError(
                f"Bracha reliable broadcast requires n > 3t (got n={n}, t={t})"
            )
        self.pid = pid
        self.n = n
        self.t = t
        self._deliver = deliver
        self._validate = validate
        self._instances: Dict[Tuple[PartyId, Any], _InstanceState] = {}

    def _state(self, origin: PartyId, tag: Any) -> _InstanceState:
        return self._instances.setdefault((origin, tag), _InstanceState())

    def _ok(self, value: Any) -> bool:
        if not _hashable(value):
            return False
        if self._validate is not None and not self._validate(value):
            return False
        return True

    def _all(self, payload: Any) -> AsyncOutbox:
        return [(recipient, payload) for recipient in range(self.n)]

    # ------------------------------------------------------------------

    def broadcast(self, tag: Any, value: Any) -> AsyncOutbox:
        """Start an instance as its origin."""
        if not _hashable(tag):
            raise ValueError("tags must be hashable")
        if not self._ok(value):
            raise ValueError(f"cannot reliably broadcast value {value!r}")
        return self._all(("init", tag, value))

    def handle(self, sender: PartyId, payload: Any) -> AsyncOutbox:
        """Process one protocol message; returns follow-up messages.

        Non-RBC or malformed payloads are ignored (empty outbox), so
        callers can feed every incoming message through this method first.
        """
        if not isinstance(payload, tuple) or not payload:
            return []
        kind = payload[0]
        if kind == "init" and len(payload) == 3:
            return self._on_init(sender, payload[1], payload[2])
        if kind == "echo" and len(payload) == 4:
            return self._on_echo(sender, payload[1], payload[2], payload[3])
        if kind == "ready" and len(payload) == 4:
            return self._on_ready(sender, payload[1], payload[2], payload[3])
        return []

    # ------------------------------------------------------------------

    def _on_init(self, sender: PartyId, tag: Any, value: Any) -> AsyncOutbox:
        # Authenticated channels: the init's origin IS its sender.
        if not _hashable(tag) or not self._ok(value):
            return []
        state = self._state(sender, tag)
        if state.sent_echo:
            return []
        state.sent_echo = True
        return self._all(("echo", tag, sender, value))

    def _on_echo(
        self, sender: PartyId, tag: Any, origin: Any, value: Any
    ) -> AsyncOutbox:
        if not isinstance(origin, int) or not 0 <= origin < self.n:
            return []
        if not _hashable(tag) or not self._ok(value):
            return []
        state = self._state(origin, tag)
        voters = state.echoes.setdefault(value, set())
        voters.add(sender)
        if len(voters) >= self.n - self.t and not state.sent_ready:
            state.sent_ready = True
            return self._all(("ready", tag, origin, value))
        return []

    def _on_ready(
        self, sender: PartyId, tag: Any, origin: Any, value: Any
    ) -> AsyncOutbox:
        if not isinstance(origin, int) or not 0 <= origin < self.n:
            return []
        if not _hashable(tag) or not self._ok(value):
            return []
        state = self._state(origin, tag)
        voters = state.readies.setdefault(value, set())
        voters.add(sender)
        out: AsyncOutbox = []
        if len(voters) >= self.t + 1 and not state.sent_ready:
            # Ready amplification: t + 1 readies contain an honest one.
            state.sent_ready = True
            out.extend(self._all(("ready", tag, origin, value)))
        if len(voters) >= 2 * self.t + 1 and not state.delivered:
            state.delivered = True
            self._deliver(origin, tag, value)
        return out


class RBCParty(AsyncParty):
    """A single reliable-broadcast instance as a standalone protocol.

    Party *origin* broadcasts *value* under tag ``"test"``; every party's
    output is the delivered value.
    """

    def __init__(
        self,
        pid: PartyId,
        n: int,
        t: int,
        origin: PartyId,
        value: Any = None,
    ) -> None:
        super().__init__(pid, n, t)
        self.origin = origin
        self.value = value
        self.rbc = BrachaBroadcast(pid, n, t, self._deliver)

    def _deliver(self, origin: PartyId, tag: Any, value: Any) -> None:
        # "test" is this harness's RBC *session* label (the BrachaBroadcast
        # multiplexing key), not a wire message type.
        if origin == self.origin and tag == "test":  # protolint: disable=PL003
            self.output = value

    def start(self) -> AsyncOutbox:
        if self.pid == self.origin:
            return self.rbc.broadcast("test", self.value)
        return []

    def on_message(self, sender: PartyId, payload: Any) -> AsyncOutbox:
        return self.rbc.handle(sender, payload)
