"""Asynchronous substrate: the model of the paper's prior art ([1], [33]).

Event-loop network with adversarial delivery scheduling and eventual
delivery, Bracha reliable broadcast, and the witness-based iterated AA
protocols on ℝ and on trees — the ``O(log D)`` asynchronous state of the
art that TreeAA's synchronous ``O(log V / log log V)`` improves on.
"""

from .adversary import (
    AsyncAdversary,
    AsyncLiarAdversary,
    AsyncNoiseAdversary,
    AsyncPassiveAdversary,
    AsyncSilentAdversary,
    EquivocatingSenderAdversary,
)
from .iterated_aa import (
    AsyncIterationRecord,
    AsyncRealAAParty,
    AsyncTreeAAParty,
    IteratedAsyncAAParty,
)
from .network import (
    AsyncExecutionResult,
    AsyncMessage,
    AsyncParty,
    AsyncTrace,
    AsynchronousNetwork,
    DelaySendersScheduler,
    FIFOScheduler,
    RandomScheduler,
    Scheduler,
    ScriptedScheduler,
    SplitScheduler,
    StallDiagnosis,
    run_async_protocol,
)
from .rbc import BrachaBroadcast, RBCParty

__all__ = [
    "AsyncParty",
    "AsyncMessage",
    "AsynchronousNetwork",
    "AsyncExecutionResult",
    "AsyncTrace",
    "StallDiagnosis",
    "run_async_protocol",
    "Scheduler",
    "FIFOScheduler",
    "RandomScheduler",
    "DelaySendersScheduler",
    "ScriptedScheduler",
    "SplitScheduler",
    "AsyncAdversary",
    "AsyncSilentAdversary",
    "AsyncPassiveAdversary",
    "AsyncLiarAdversary",
    "AsyncNoiseAdversary",
    "EquivocatingSenderAdversary",
    "BrachaBroadcast",
    "RBCParty",
    "IteratedAsyncAAParty",
    "AsyncRealAAParty",
    "AsyncTreeAAParty",
    "AsyncIterationRecord",
]
