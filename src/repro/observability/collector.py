"""Structured per-round metrics for protocol executions.

:class:`MetricsCollector` is an :class:`~repro.net.trace.Observer` that
turns one synchronous execution into machine-readable numbers: message and
payload-unit counts split by sender class, the convex-hull diameter of the
honest parties' current estimates on the input tree (the quantity whose
shrinkage Theorem 4 is about), the spread of honest real values (the
RealAA convergence measure of Theorem 3), and wall-clock time per round.

The collector is *pull-free*: it never calls into the network, it only
consumes what every observer is handed after delivery.  Attaching it
therefore forces the simulator onto the observer slow path (``Message``
objects are materialised), exactly like any other observer — when no
collector is attached, the :attr:`~repro.net.network.TraceLevel.AGGREGATE`
fast path is untouched.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..net.messages import Message, Outbox, PartyId
from ..net.network import payload_units
from ..net.protocol import ProtocolStateError
from ..net.trace import Observer
from ..trees.convex import steiner_diameter
from ..trees.labeled_tree import Label, LabeledTree

#: Extracts a party's current vertex estimate (or ``None`` when it has none).
EstimateFn = Callable[[Any], Optional[Label]]


@dataclass
class RoundMetrics:
    """The structured record of one observed round.

    ``hull_diameter`` and ``value_spread`` are convergence measures and are
    ``None`` when they do not apply (no tree was supplied / the parties
    carry no real-valued state).  ``wall_seconds`` is the only
    non-deterministic field; comparisons (tests, :func:`~repro
    .observability.events.diff_runs`) ignore it.
    """

    round_index: int
    #: Honest / Byzantine messages delivered this round.
    honest_messages: int
    byzantine_messages: int
    #: Payload sizes in atomic value units (see :func:`repro.net.network
    #: .payload_units`).
    honest_payload_units: int
    byzantine_payload_units: int
    #: Parties corrupted so far (cumulative, sorted).
    corrupted: Tuple[PartyId, ...]
    #: Honest parties whose ``output`` is already set.
    outputs_decided: int
    #: Diameter of the convex hull of honest estimates on the tree.
    hull_diameter: Optional[int]
    #: ``max - min`` of honest parties' real values (RealAA-style state).
    value_spread: Optional[float]
    #: Wall-clock seconds since the previous observation.
    wall_seconds: float

    @property
    def message_count(self) -> int:
        return self.honest_messages + self.byzantine_messages

    @property
    def payload_unit_count(self) -> int:
        return self.honest_payload_units + self.byzantine_payload_units


class MetricsCollector(Observer):
    """Compute :class:`RoundMetrics` for every round of an execution.

    Parameters
    ----------
    tree:
        The public input-space tree.  When given, each round records the
        Steiner (convex-hull) diameter of the honest parties' current
        vertex estimates — the tree-AA convergence measure.
    estimate_fn:
        How to read a party's current vertex estimate.  The default uses
        the party's ``output`` once set and falls back to its
        ``input_vertex`` attribute (the estimate before any output exists);
        parties exposing neither contribute nothing to the hull.
    clock:
        The monotonic clock used for ``wall_seconds`` (injectable so tests
        can make timing deterministic).
    """

    def __init__(
        self,
        tree: Optional[LabeledTree] = None,
        estimate_fn: Optional[EstimateFn] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.tree = tree
        self._estimate_fn = estimate_fn
        self._clock = clock
        self._last_time = clock()
        self.rounds: List[RoundMetrics] = []

    # -- estimate extraction ------------------------------------------------

    def _estimate(self, party: Any) -> Optional[Label]:
        if self._estimate_fn is not None:
            return self._estimate_fn(party)
        if self.tree is None:  # only reachable when a tree was supplied
            raise ProtocolStateError("estimate requested without tree/estimate_fn")
        output = getattr(party, "output", None)
        if output is not None and output in self.tree:
            return output
        vertex = getattr(party, "input_vertex", None)
        if vertex is not None and vertex in self.tree:
            return vertex
        return None

    # -- Observer interface -------------------------------------------------

    def on_round(
        self,
        round_index: int,
        honest_messages: Dict[PartyId, Outbox],
        byzantine_messages: Sequence[Message],
        parties: Mapping[PartyId, Any],
        corrupted: Sequence[PartyId],
    ) -> None:
        now = self._clock()
        wall = now - self._last_time
        self._last_time = now

        corrupted_set = set(corrupted)
        honest_parties = [
            parties[pid] for pid in sorted(parties) if pid not in corrupted_set
        ]

        hull_diameter: Optional[int] = None
        if self.tree is not None:
            estimates = [
                estimate
                for estimate in (self._estimate(p) for p in honest_parties)
                if estimate is not None
            ]
            if estimates:
                hull_diameter = steiner_diameter(self.tree, estimates)

        values = [
            value
            for value in (getattr(p, "value", None) for p in honest_parties)
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        ]
        value_spread = (max(values) - min(values)) if values else None

        self.rounds.append(
            RoundMetrics(
                round_index=round_index,
                honest_messages=sum(
                    len(outbox) for outbox in honest_messages.values()
                ),
                byzantine_messages=len(byzantine_messages),
                honest_payload_units=sum(
                    payload_units(payload)
                    for outbox in honest_messages.values()
                    for payload in outbox.values()
                ),
                byzantine_payload_units=sum(
                    payload_units(message.payload)
                    for message in byzantine_messages
                ),
                corrupted=tuple(sorted(corrupted_set)),
                outputs_decided=sum(
                    1
                    for p in honest_parties
                    if getattr(p, "output", None) is not None
                ),
                hull_diameter=hull_diameter,
                value_spread=value_spread,
                wall_seconds=wall,
            )
        )

    # -- aggregates ---------------------------------------------------------

    @property
    def rounds_observed(self) -> int:
        return len(self.rounds)

    @property
    def honest_message_total(self) -> int:
        return sum(r.honest_messages for r in self.rounds)

    @property
    def byzantine_message_total(self) -> int:
        return sum(r.byzantine_messages for r in self.rounds)

    @property
    def message_total(self) -> int:
        return self.honest_message_total + self.byzantine_message_total

    @property
    def payload_unit_total(self) -> int:
        return sum(r.payload_unit_count for r in self.rounds)

    @property
    def final_hull_diameter(self) -> Optional[int]:
        """The last round's hull diameter (``None`` without a tree)."""
        for record in reversed(self.rounds):
            if record.hull_diameter is not None:
                return record.hull_diameter
        return None

    def summary(self) -> Dict[str, Any]:
        """Aggregate totals as a JSON-serialisable dict (sweep rows embed
        this when per-point metrics are requested)."""
        return {
            "rounds": self.rounds_observed,
            "honest_messages": self.honest_message_total,
            "byzantine_messages": self.byzantine_message_total,
            "messages": self.message_total,
            "payload_units": self.payload_unit_total,
            "per_round_messages": [r.message_count for r in self.rounds],
            "final_hull_diameter": self.final_hull_diameter,
        }
