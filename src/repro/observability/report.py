"""Offline reporting over recorded JSONL traces.

``python -m repro report run.jsonl`` renders what :func:`render_report`
produces: the run's identity, its aggregate totals, and the per-round
convergence/communication series — everything needed to check a recorded
execution against the paper's round and message bounds without re-running
it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..analysis.tables import format_table
from .events import RunTrace


def summarize_run(run: RunTrace) -> Dict[str, Any]:
    """The headline numbers of a recorded run, as a flat dict.

    Keys: ``protocol``, ``n``, ``t``, ``rounds``, ``honest_messages``,
    ``byzantine_messages``, ``messages``, ``payload_units``,
    ``final_hull_diameter``, ``final_value_spread``, ``corrupted``,
    ``verdicts``.
    """
    return {
        "protocol": run.protocol,
        "n": run.header.get("n"),
        "t": run.header.get("t"),
        "rounds": run.rounds_executed,
        "honest_messages": run.footer.get("honest_messages"),
        "byzantine_messages": run.footer.get("byzantine_messages"),
        "messages": run.message_total,
        "payload_units": run.footer.get("payload_units"),
        "final_hull_diameter": run.final_hull_diameter,
        "final_value_spread": run.footer.get("final_value_spread"),
        "corrupted": run.footer.get("corrupted", []),
        "verdicts": run.footer.get("verdicts", {}),
    }


def _fmt(value: Any) -> Any:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:g}"
    return value


def render_report(run: RunTrace, max_rounds: Optional[int] = None) -> str:
    """A text report of one recorded run (summary + per-round table).

    ``max_rounds`` truncates the per-round table (totals always cover the
    whole run).  Wall-clock is reported only as a run total — per-round
    wall times are in the JSONL for profiling but are too noisy to table.
    """
    summary = summarize_run(run)
    wall_total = sum(
        record.get("wall_seconds") or 0.0 for record in run.rounds
    )
    rows: List[List[Any]] = [
        ["protocol", summary["protocol"]],
        ["n / t", f"{_fmt(summary['n'])} / {_fmt(summary['t'])}"],
        ["rounds", summary["rounds"]],
        ["honest messages", summary["honest_messages"]],
        ["byzantine messages", summary["byzantine_messages"]],
        ["messages total", summary["messages"]],
        ["payload units", summary["payload_units"]],
        ["final hull diameter", _fmt(summary["final_hull_diameter"])],
        ["final value spread", _fmt(summary["final_value_spread"])],
        ["corrupted", summary["corrupted"] or "none"],
        ["wall clock (s)", f"{wall_total:.3f}"],
    ]
    for name, verdict in sorted(summary["verdicts"].items()):
        rows.append([name, verdict])
    parts = [format_table(["property", "value"], rows, title="recorded run")]

    shown = run.rounds[: max_rounds if max_rounds is not None else len(run.rounds)]
    if shown:
        parts.append("")
        parts.append(
            format_table(
                [
                    "round",
                    "honest msgs",
                    "byz msgs",
                    "payload units",
                    "hull diam",
                    "spread",
                    "decided",
                ],
                [
                    [
                        record["round"],
                        record["honest_messages"],
                        record["byzantine_messages"],
                        record["honest_payload_units"]
                        + record["byzantine_payload_units"],
                        _fmt(record.get("hull_diameter")),
                        _fmt(record.get("value_spread")),
                        record.get("outputs_decided", 0),
                    ]
                    for record in shown
                ],
                title="per-round metrics",
            )
        )
        if len(shown) < len(run.rounds):
            parts.append(f"... {len(run.rounds) - len(shown)} more rounds")
    return "\n".join(parts)
