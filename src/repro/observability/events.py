"""The versioned JSONL trace format: export, load, and diff executions.

One recorded run is a JSON-Lines file with exactly three record types, in
order:

``run_header``
    One per file, first line.  Carries ``schema_version``, the protocol
    name, the network parameters, and (when known) the canonical input
    tree and the input vector — everything needed to *re-run* the
    execution.
``round``
    One per observed round, ascending ``round`` indices.  The serialised
    form of :class:`~repro.observability.collector.RoundMetrics`.
``run_footer``
    One per file, last line.  Totals, the honest outputs, the final
    convergence measures, and the AA verdicts when the caller evaluated
    them.

The format is append-only text so recorded runs can be diffed, grepped,
and version-controlled; :func:`load_run` validates structure and rejects
files written by a different (incompatible) schema version with
:class:`SchemaVersionError`, so readers never silently misinterpret old
recordings.
"""

from __future__ import annotations

import io
import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, IO, Iterable, Iterator, List, Optional, Sequence, Union

from ..net.network import ExecutionResult
from ..trees.labeled_tree import LabeledTree
from ..trees.serialization import tree_from_dict, tree_to_dict
from .collector import MetricsCollector, RoundMetrics

#: Version of the JSONL trace schema.  Bump on any incompatible change;
#: :func:`load_run` rejects every other version.
SCHEMA_VERSION = 1


class TraceFormatError(ValueError):
    """A trace file is structurally invalid (bad JSON, records missing or
    out of order)."""


class SchemaVersionError(TraceFormatError):
    """A trace file was written by an incompatible schema version."""

    def __init__(self, found: Any) -> None:
        super().__init__(
            f"trace schema version {found!r} is not supported "
            f"(this reader understands version {SCHEMA_VERSION})"
        )
        self.found = found


@dataclass
class RunTrace:
    """A loaded trace: header dict, round dicts, footer dict."""

    header: Dict[str, Any]
    rounds: List[Dict[str, Any]]
    footer: Dict[str, Any]

    @property
    def protocol(self) -> str:
        return self.header.get("protocol", "?")

    @property
    def rounds_executed(self) -> int:
        return self.footer["rounds"]

    @property
    def message_total(self) -> int:
        return self.footer["messages"]

    @property
    def final_hull_diameter(self) -> Optional[int]:
        return self.footer.get("final_hull_diameter")

    @property
    def honest_outputs(self) -> Dict[int, Any]:
        return {pid: output for pid, output in self.footer["honest_outputs"]}

    def tree(self) -> Optional[LabeledTree]:
        """Rebuild the recorded input tree (``None`` when not recorded)."""
        data = self.header.get("tree")
        return None if data is None else tree_from_dict(data)

    def round_series(self, field: str) -> List[Any]:
        """The per-round values of one metric field, in round order."""
        return [record.get(field) for record in self.rounds]


# ----------------------------------------------------------------------
# Export
# ----------------------------------------------------------------------


def _header_record(
    collector: MetricsCollector,
    result: ExecutionResult,
    protocol: str,
    params: Optional[Dict[str, Any]],
    tree: Optional[LabeledTree],
    inputs: Optional[Sequence[Any]],
    t: Optional[int],
) -> Dict[str, Any]:
    return {
        "type": "run_header",
        "schema_version": SCHEMA_VERSION,
        "protocol": protocol,
        "n": len(result.honest) + len(result.corrupted),
        "t": t,
        "params": dict(params or {}),
        "tree": None if tree is None else tree_to_dict(tree),
        "inputs": None if inputs is None else list(inputs),
    }


def _round_record(metrics: RoundMetrics) -> Dict[str, Any]:
    record = asdict(metrics)
    record["corrupted"] = list(record["corrupted"])
    record["round"] = record.pop("round_index")
    record["type"] = "round"
    return record


def _footer_record(
    collector: MetricsCollector,
    result: ExecutionResult,
    verdicts: Optional[Dict[str, Any]],
) -> Dict[str, Any]:
    outputs = result.honest_outputs
    spreads: List[float] = [
        v for v in outputs.values() if isinstance(v, (int, float))
    ]
    return {
        "type": "run_footer",
        "rounds": collector.rounds_observed,
        "honest_messages": collector.honest_message_total,
        "byzantine_messages": collector.byzantine_message_total,
        "messages": collector.message_total,
        "payload_units": collector.payload_unit_total,
        "corrupted": sorted(result.corrupted),
        "honest_outputs": [[pid, outputs[pid]] for pid in sorted(outputs)],
        "final_hull_diameter": collector.final_hull_diameter,
        "final_value_spread": (
            max(spreads) - min(spreads)
            if spreads and len(spreads) == len(outputs)
            else None
        ),
        "verdicts": dict(verdicts or {}),
    }


def export_run(
    destination: Union[str, IO[str]],
    collector: MetricsCollector,
    result: ExecutionResult,
    *,
    protocol: str,
    params: Optional[Dict[str, Any]] = None,
    tree: Optional[LabeledTree] = None,
    inputs: Optional[Sequence[Any]] = None,
    verdicts: Optional[Dict[str, Any]] = None,
    t: Optional[int] = None,
) -> int:
    """Write one recorded execution as JSONL; returns the record count.

    ``destination`` is a path or an open text handle.  The collector must
    have observed the *whole* execution (attach it before ``run()``).
    """
    tree = tree if tree is not None else collector.tree
    records: List[Dict[str, Any]] = [
        _header_record(collector, result, protocol, params, tree, inputs, t)
    ]
    records.extend(_round_record(metrics) for metrics in collector.rounds)
    records.append(_footer_record(collector, result, verdicts))

    if isinstance(destination, str):
        with open(destination, "w") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
    else:
        for record in records:
            destination.write(json.dumps(record, sort_keys=True) + "\n")
    return len(records)


# ----------------------------------------------------------------------
# Load
# ----------------------------------------------------------------------

#: Fields every ``round`` record must carry — the report renderer and the
#: differ index them unconditionally, so a hand-edited or truncated file
#: must fail here, at load time, with one clear line.
_ROUND_FIELDS = (
    "honest_messages",
    "byzantine_messages",
    "honest_payload_units",
    "byzantine_payload_units",
)

#: Fields every ``run_footer`` record must carry (same contract).
_FOOTER_FIELDS = (
    "rounds",
    "messages",
    "honest_messages",
    "byzantine_messages",
    "honest_outputs",
)


def _parse_lines(lines: Iterable[str]) -> Iterator[Dict[str, Any]]:
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise TraceFormatError(f"line {number}: invalid JSON: {exc}") from None
        if not isinstance(record, dict) or "type" not in record:
            raise TraceFormatError(f"line {number}: not a typed trace record")
        yield record


def load_run(source: Union[str, IO[str]]) -> RunTrace:
    """Load and validate one JSONL trace (path or open text handle).

    Raises :class:`SchemaVersionError` for traces written by another
    schema version and :class:`TraceFormatError` for structurally invalid
    files (missing header/footer, out-of-order rounds, trailing records).
    """
    if isinstance(source, str):
        with open(source) as handle:
            records = list(_parse_lines(handle))
    else:
        records = list(_parse_lines(source))

    if not records:
        raise TraceFormatError(
            "empty trace file (no records at all — truncated or never "
            "written?)"
        )
    header = records[0]
    if header["type"] != "run_header":
        raise TraceFormatError(
            f"first record must be run_header, got {header['type']!r}"
        )
    version = header.get("schema_version")
    if version != SCHEMA_VERSION:
        raise SchemaVersionError(version)
    if len(records) < 2 or records[-1]["type"] != "run_footer":
        raise TraceFormatError(
            "last record must be run_footer (file truncated mid-run?)"
        )
    footer = records[-1]
    rounds = records[1:-1]
    expected = 0
    for record in rounds:
        if record["type"] != "round":
            raise TraceFormatError(
                f"unexpected {record['type']!r} record between header and footer"
            )
        if record.get("round") != expected:
            raise TraceFormatError(
                f"round records out of order: expected {expected}, "
                f"got {record.get('round')!r}"
            )
        for field in _ROUND_FIELDS:
            if field not in record:
                raise TraceFormatError(
                    f"round {expected} record is missing {field!r}"
                )
        expected += 1
    if footer.get("rounds") != len(rounds):
        raise TraceFormatError(
            f"footer claims {footer.get('rounds')!r} rounds but the file "
            f"holds {len(rounds)}"
        )
    for field in _FOOTER_FIELDS:
        if field not in footer:
            raise TraceFormatError(f"run_footer is missing {field!r}")
    outputs = footer["honest_outputs"]
    if not isinstance(outputs, list) or not all(
        isinstance(pair, list) and len(pair) == 2 for pair in outputs
    ):
        raise TraceFormatError(
            "run_footer honest_outputs must be a list of [pid, output] pairs"
        )
    return RunTrace(header=header, rounds=rounds, footer=footer)


def load_run_text(text: str) -> RunTrace:
    """Load a trace from an in-memory JSONL string (same validation as
    :func:`load_run`).

    This is how consumers that carry traces as *data* — the scenario
    service's embedded ``trace_jsonl`` rows, test fixtures — reuse the
    trace loader without touching the filesystem.
    """
    return load_run(io.StringIO(text))


# ----------------------------------------------------------------------
# Diff
# ----------------------------------------------------------------------

#: Fields excluded from :func:`diff_runs` — wall-clock is the only
#: non-deterministic per-round field.
NONDETERMINISTIC_FIELDS = frozenset({"wall_seconds"})


def diff_runs(a: RunTrace, b: RunTrace) -> List[str]:
    """Human-readable differences between two recorded runs.

    Compares headers (parameters), every round's deterministic fields, and
    the footers; returns one line per difference (empty = equivalent
    executions).  Used to answer "did this adversary/config change what
    the protocol *did*?" without eyeballing transcripts.
    """
    differences: List[str] = []

    def compare(label: str, left: Dict[str, Any], right: Dict[str, Any]) -> None:
        keys = sorted(
            (set(left) | set(right)) - NONDETERMINISTIC_FIELDS - {"type"}
        )
        for key in keys:
            lv, rv = left.get(key), right.get(key)
            if lv != rv:
                differences.append(f"{label}.{key}: {lv!r} != {rv!r}")

    compare("header", a.header, b.header)
    if len(a.rounds) != len(b.rounds):
        differences.append(
            f"rounds: {len(a.rounds)} != {len(b.rounds)}"
        )
    for left, right in zip(a.rounds, b.rounds):
        compare(f"round[{left.get('round')}]", left, right)
    compare("footer", a.footer, b.footer)
    return differences
