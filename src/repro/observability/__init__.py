"""Execution observability: structured metrics, JSONL traces, reporting.

Three layers, each usable on its own:

* :class:`MetricsCollector` — an :class:`~repro.net.trace.Observer` that
  turns a live execution into per-round :class:`RoundMetrics` (messages,
  payload units, convex-hull diameter of the honest estimates, value
  spread, wall clock);
* :mod:`repro.observability.events` — the versioned JSONL trace format
  (``run_header`` / ``round`` / ``run_footer``): :func:`export_run`
  records, :func:`load_run` validates and loads, :func:`diff_runs`
  compares two recordings field by field;
* :mod:`repro.observability.report` — :func:`render_report` /
  :func:`summarize_run` turn a loaded trace into the summary that
  ``python -m repro report`` prints.

See ``docs/OBSERVABILITY.md`` for the metrics glossary and the recorded-run
walkthrough.
"""

from .collector import MetricsCollector, RoundMetrics
from .events import (
    NONDETERMINISTIC_FIELDS,
    RunTrace,
    SCHEMA_VERSION,
    SchemaVersionError,
    TraceFormatError,
    diff_runs,
    export_run,
    load_run,
    load_run_text,
)
from .report import render_report, summarize_run

__all__ = [
    "MetricsCollector",
    "RoundMetrics",
    "SCHEMA_VERSION",
    "NONDETERMINISTIC_FIELDS",
    "RunTrace",
    "TraceFormatError",
    "SchemaVersionError",
    "export_run",
    "load_run",
    "load_run_text",
    "diff_runs",
    "render_report",
    "summarize_run",
]
