"""Plain-text table rendering for experiment output.

The benchmarks print the rows a paper table would contain; this module
keeps the formatting consistent (aligned columns, a rule under the header)
without any third-party dependency.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence


def format_cell(value: Any) -> str:
    """One table cell: yes/no booleans, sensible float precision."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[Any]], title: str = ""
) -> str:
    """Render an aligned plain-text table."""
    text_rows: List[List[str]] = [[format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def print_table(
    headers: Sequence[str], rows: Iterable[Sequence[Any]], title: str = ""
) -> None:
    """:func:`format_table`, straight to stdout (with a leading blank line)."""
    print()
    print(format_table(headers, rows, title=title))
