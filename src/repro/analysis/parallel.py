"""Parallel sweep engine with deterministic result caching.

Every experiment in this repository is a grid of *independent* protocol
executions — the embarrassingly-parallel shape of the paper's own tables
(EXPERIMENTS.md T1–T10).  This module runs such grids through a process
pool and memoises finished grid points on disk, so that

* ``jobs=1`` is a plain in-process loop, bit-identical to the historical
  serial sweeps;
* ``jobs=N`` farms points out to ``N`` worker processes with chunking and
  *ordered* result collection (row ``i`` always corresponds to grid point
  ``i``, whatever order the workers finish in);
* re-running a sweep recomputes only the points missing from the cache,
  which is keyed by ``(sweep name, runner, params, seed, package
  version)`` — a version bump invalidates every cached row.

Grid points are *data*, not closures: a point is a JSON-serialisable
``params`` dict handed to a **registered runner** (a module-level function
``runner(params, seed) -> row``), which keeps every point picklable for
the pool and hashable for the cache.  The built-in runners live in
:mod:`repro.analysis.sweep`.
"""

from __future__ import annotations

import hashlib
import importlib
import itertools
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: A point runner: ``(params, seed) -> row`` where both ``params`` and the
#: returned row are JSON-serialisable dicts.
PointRunner = Callable[[Dict[str, Any], int], Dict[str, Any]]

_RUNNERS: Dict[str, PointRunner] = {}


def register_runner(name: str) -> Callable[[PointRunner], PointRunner]:
    """Register a module-level function as a named point runner.

    The function must be importable in a fresh interpreter (worker
    processes resolve it by name), take ``(params, seed)``, and return a
    JSON-serialisable row dict.
    """

    def decorate(func: PointRunner) -> PointRunner:
        _RUNNERS[name] = func
        return func

    return decorate


def get_runner(name: str) -> PointRunner:
    """Resolve a runner by registry name or ``module:function`` path."""
    if name not in _RUNNERS:
        # The built-in runners are registered as a side effect of
        # importing their defining modules — make sure that happened
        # (worker processes import this module first).
        importlib.import_module("repro.analysis.spec")
        importlib.import_module("repro.analysis.sweep")
        importlib.import_module("repro.resilience.campaign")
    if name in _RUNNERS:
        return _RUNNERS[name]
    if ":" in name:
        module_name, _, func_name = name.partition(":")
        module = importlib.import_module(module_name)
        func = getattr(module, func_name, None)
        if callable(func):
            return func
    raise KeyError(f"unknown sweep runner {name!r}")


def canonical_json(obj: Any) -> str:
    """Deterministic JSON used for seeds and cache keys."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def point_seed(sweep_name: str, params: Dict[str, Any], base_seed: int = 0) -> int:
    """The deterministic seed of one grid point.

    An explicit ``params["seed"]`` wins (sweeps that historically seeded
    by grid coordinate stay bit-identical); otherwise the seed is derived
    from a SHA-256 of ``(sweep name, params, base_seed)`` — stable across
    processes, runs, and machines.
    """
    if "seed" in params:
        return int(params["seed"])
    payload = canonical_json([sweep_name, params, base_seed]).encode()
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")


def grid_from_axes(**axes: Sequence[Any]) -> List[Dict[str, Any]]:
    """The cartesian product of named axes, in deterministic order."""
    keys = list(axes)
    return [
        dict(zip(keys, values))
        for values in itertools.product(*(axes[key] for key in keys))
    ]


def default_cache_dir() -> str:
    """``$REPRO_SWEEP_CACHE`` or ``~/.cache/repro-sweeps``."""
    env = os.environ.get("REPRO_SWEEP_CACHE")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-sweeps")


class SweepCache:
    """On-disk JSON memo of finished grid points.

    One file per point, named by the SHA-256 of the canonical key; the
    file stores both the key (for auditability — ``repro sweep`` users can
    inspect what produced a row) and the row itself.  Corrupt or
    unreadable entries are treated as misses.
    """

    def __init__(self, cache_dir: str) -> None:
        self.cache_dir = cache_dir
        os.makedirs(cache_dir, exist_ok=True)

    @staticmethod
    def key(
        sweep_name: str,
        runner: str,
        params: Dict[str, Any],
        seed: int,
        version: Optional[str] = None,
        backend: str = "reference",
    ) -> Dict[str, Any]:
        if version is None:
            from .. import __version__ as version
        return {
            "sweep": sweep_name,
            "runner": runner,
            "params": params,
            "seed": seed,
            "version": version,
            # The execution backend is part of a row's identity: a cached
            # reference-engine row must never be served to a batch-engine
            # sweep (or vice versa), even though both are expected to agree.
            "backend": backend,
        }

    def _path(self, key: Dict[str, Any]) -> str:
        digest = hashlib.sha256(canonical_json(key).encode()).hexdigest()
        return os.path.join(self.cache_dir, f"{digest}.json")

    def get(self, key: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        path = self._path(key)
        try:
            with open(path) as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        row = entry.get("row")
        return row if isinstance(row, dict) else None

    def put(self, key: Dict[str, Any], row: Dict[str, Any]) -> None:
        path = self._path(key)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as handle:
            json.dump({"key": key, "row": row}, handle, sort_keys=True)
        os.replace(tmp, path)  # atomic: concurrent sweeps never see partial files

    def __len__(self) -> int:
        return sum(
            1 for name in os.listdir(self.cache_dir) if name.endswith(".json")
        )


#: Schema version of the sweep JSONL files written by
#: :func:`write_sweep_jsonl` (``sweep_header`` / ``point`` /
#: ``sweep_footer`` records).
SWEEP_SCHEMA_VERSION = 1


def write_sweep_jsonl(
    path: str,
    report: "SweepReport",
    *,
    runner: str,
    grid: Sequence[Dict[str, Any]],
    seeds: Sequence[int],
) -> int:
    """Persist a sweep's rows as machine-readable JSONL; returns the record
    count.

    One ``sweep_header`` record, one ``point`` record per grid point
    (params + derived seed + result row — the full provenance of a table
    row), and one ``sweep_footer`` with the engine summary.  Benchmarks
    write these next to their text tables (``benchmarks/results/*.jsonl``)
    so downstream analyses never re-parse rendered tables.
    """
    records: List[Dict[str, Any]] = [
        {
            "type": "sweep_header",
            "schema_version": SWEEP_SCHEMA_VERSION,
            "sweep": report.name,
            "runner": runner,
            "points": len(report.rows),
        }
    ]
    for index, (params, seed, row) in enumerate(zip(grid, seeds, report.rows)):
        records.append(
            {
                "type": "point",
                "index": index,
                "params": params,
                "seed": seed,
                "row": row,
            }
        )
    records.append(
        {
            "type": "sweep_footer",
            "points": len(report.rows),
            "cache_hits": report.cache_hits,
            "cache_misses": report.cache_misses,
            "jobs": report.jobs,
        }
    )
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    os.replace(tmp, path)
    return len(records)


def read_sweep_points(path: str) -> List[Dict[str, Any]]:
    """The ``point`` records of a sweep JSONL file, torn-tail tolerant.

    The inverse of :func:`write_sweep_jsonl` for consumers that only
    need rows back — the scenario service's query layer and its crash
    recovery both read with this.  Lines that fail to parse (a file cut
    short by a crash) are skipped, not raised: readers of
    crash-survivor files must accept exactly what a crash leaves
    behind.
    """
    points: List[Dict[str, Any]] = []
    try:
        handle = open(path)
    except OSError:
        return points
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict) and record.get("type") == "point":
                points.append(record)
    return points


@dataclass
class SweepReport:
    """Rows plus provenance of one engine invocation."""

    name: str
    rows: List[Dict[str, Any]]
    cache_hits: int = 0
    cache_misses: int = 0
    jobs: int = 1
    elapsed_seconds: float = 0.0

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def summary(self) -> str:
        return (
            f"sweep {self.name!r}: {len(self.rows)} points, "
            f"{self.cache_hits} cached / {self.cache_misses} computed, "
            f"jobs={self.jobs}, {self.elapsed_seconds:.2f}s"
        )


def _execute_point(task: Tuple[str, Dict[str, Any], int]) -> Dict[str, Any]:
    """Worker entry point (top-level so it pickles under every start method)."""
    runner_name, params, seed = task
    return get_runner(runner_name)(params, seed)


def run_grid(
    name: str,
    runner: str,
    grid: Sequence[Dict[str, Any]],
    *,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    no_cache: bool = False,
    base_seed: int = 0,
    chunksize: Optional[int] = None,
    version: Optional[str] = None,
    jsonl_path: Optional[str] = None,
    backend: str = "reference",
) -> SweepReport:
    """Run every grid point through *runner*, in parallel, with caching.

    Parameters
    ----------
    name:
        The sweep's cache namespace (and display name).
    runner:
        A runner name registered via :func:`register_runner` (or a
        ``module:function`` path).
    grid:
        JSON-serialisable ``params`` dicts, one per point.  Rows come back
        in grid order.
    jobs:
        ``1`` (default) executes in-process — the serial path, bit-identical
        to calling the runner in a loop.  ``N > 1`` uses a process pool of
        ``N`` workers.  ``0`` means ``os.cpu_count()``.
    cache_dir / no_cache:
        Where finished points are memoised (:func:`default_cache_dir` when
        ``None``); ``no_cache=True`` disables reads *and* writes.
    base_seed:
        Folded into every derived point seed (ignored for points carrying
        an explicit ``"seed"`` param).
    chunksize:
        Points handed to a worker per dispatch; defaults to
        ``max(1, n_points // (4 * jobs))``.
    version:
        Cache-key version; defaults to ``repro.__version__`` so releases
        invalidate stale rows.
    jsonl_path:
        When given, the finished sweep (params + seeds + rows) is also
        persisted as machine-readable JSONL at this path via
        :func:`write_sweep_jsonl` — the per-point record next to whatever
        table the caller renders.
    backend:
        Execution engine selector, forwarded to runners that execute
        protocols (``"reference"`` or ``"batch"``).  Seeds are derived
        from the *original* params either way — the seeding discipline is
        backend-independent — but the cache key records the backend, so
        rows computed by one engine are never served to the other.
    """
    if jobs == 0:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1 (or 0 for cpu_count), got {jobs}")
    started = time.perf_counter()
    grid = [dict(params) for params in grid]
    seeds = [point_seed(name, params, base_seed) for params in grid]

    cache: Optional[SweepCache] = None
    keys: List[Optional[Dict[str, Any]]] = [None] * len(grid)
    rows: List[Optional[Dict[str, Any]]] = [None] * len(grid)
    hits = 0
    if not no_cache:
        cache = SweepCache(cache_dir or default_cache_dir())
        for index, params in enumerate(grid):
            keys[index] = cache.key(
                name, runner, params, seeds[index], version, backend=backend
            )
            cached = cache.get(keys[index])
            if cached is not None:
                rows[index] = cached
                hits += 1

    missing = [index for index in range(len(grid)) if rows[index] is None]
    # Runners learn the backend through their params; the injection happens
    # after seeding and cache keying so reference sweeps stay bit-identical
    # to the historical ones (their params are passed through untouched).
    if backend == "reference":
        tasks = [(runner, grid[index], seeds[index]) for index in missing]
    else:
        tasks = [
            (runner, {**grid[index], "backend": backend}, seeds[index])
            for index in missing
        ]
    if tasks:
        if jobs == 1 or len(tasks) == 1:
            computed = [_execute_point(task) for task in tasks]
        else:
            if chunksize is None:
                chunksize = max(1, len(tasks) // (4 * jobs))
            with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
                computed = list(
                    pool.map(_execute_point, tasks, chunksize=chunksize)
                )
        for index, row in zip(missing, computed):
            rows[index] = row
            if cache is not None and keys[index] is not None:
                cache.put(keys[index], row)

    report = SweepReport(
        name=name,
        rows=[row for row in rows if row is not None],
        cache_hits=hits,
        cache_misses=len(missing),
        jobs=jobs,
        elapsed_seconds=time.perf_counter() - started,
    )
    if jsonl_path is not None:
        write_sweep_jsonl(
            jsonl_path, report, runner=runner, grid=grid, seeds=seeds
        )
    return report
