"""Seeded scenario generators shared by the test suite and the flywheel.

This module is the promoted home of what used to be ``tests/strategies.py``
(a test-side shim still re-exports every name, so test imports are
unchanged).  It holds two generator families over the same scenario
space:

* **Hypothesis strategies** (``small_trees``, ``scenario_specs``, …) —
  the property-test drivers, available whenever Hypothesis is importable
  (it always is in the test environment; the guard only protects bare
  production installs).
* **RNG point streams** (:func:`draw_flywheel_spec`,
  :func:`spec_stream`) — plain ``random.Random``-driven generation of
  :class:`~repro.analysis.spec.ScenarioSpec` points for the
  :mod:`repro.flywheel` mega-campaigns.  Unlike Hypothesis draws these
  are *position-addressable*: point ``i`` of stream ``seed`` is the same
  spec in every process on every machine, which is what makes a killed
  campaign resumable from its ledger without re-executing finished
  points.

Both families draw from one shared vocabulary (tree families, adversary
spec strings, the batch-supported matrix) so the flywheel exercises
exactly the space the conformance suite quantifies over — just a few
orders of magnitude more of it.
"""

from __future__ import annotations

import random
from typing import Any, Iterator, List, Optional, Set, Tuple

from ..trees import LabeledTree, tree_from_pruefer

try:  # Hypothesis is a test/dev dependency, not a runtime requirement.
    from hypothesis import strategies as st
except ImportError:  # pragma: no cover - exercised only on bare installs
    st = None  # type: ignore[assignment]

#: The execution backends every differential property test compares.
BACKENDS: Tuple[str, ...] = ("reference", "batch")

#: Small tree specs (``repro.cli.parse_tree_spec`` grammar) that keep
#: spec-driven property tests fast.
SPEC_TREES: Tuple[str, ...] = ("path:4", "path:6", "star:5", "caterpillar:3x2")

#: Adversary spec strings the batch backend can replay.
BATCH_SPEC_ADVERSARIES: Tuple[str, ...] = (
    "none",
    "silent",
    "passive",
    "crash",
    "crash:2:3",
    "chaos",
    "chaos:9",
)

#: Adversary spec strings only the reference backend accepts.
REFERENCE_ONLY_SPEC_ADVERSARIES: Tuple[str, ...] = ("noise", "noise:7", "asym")


# ----------------------------------------------------------------------
# RNG point streams (the flywheel's generators)
# ----------------------------------------------------------------------

#: Inclusive bounds of the flywheel regime.  Kept deliberately small:
#: a flywheel point must cost milliseconds, because its value is in the
#: millions of (shape × n × t × adversary × backend) combinations, not
#: in any single large instance (benchmarks S1/S2 cover scale).
FLYWHEEL_MAX_T = 2
FLYWHEEL_MAX_N = 8


def _draw_tree_spec(rng: random.Random) -> str:
    """A small CLI tree spec, over every family the shrinker can reduce."""
    family = rng.choice(("path", "star", "caterpillar", "random"))
    if family == "path":
        return f"path:{rng.randint(3, 10)}"
    if family == "star":
        return f"star:{rng.randint(3, 9)}"
    if family == "caterpillar":
        return f"caterpillar:{rng.randint(2, 4)}x{rng.randint(1, 3)}"
    return f"random:{rng.randint(4, 12)}:{rng.randint(0, 999)}"


def _draw_adversary_spec(rng: random.Random, t: int) -> str:
    """An adversary spec string; mostly batch-replayable, occasionally not.

    Reference-only adversaries (``noise``/``asym``) appear with ~1/8
    probability so the stream keeps exercising the refusal path and the
    reference-side oracles without starving the differential ones.
    """
    if rng.random() < 0.125:
        kind = rng.choice(("noise", "asym"))
        if kind == "noise":
            return f"noise:{rng.randint(0, 9999)}"
        return "asym"
    menu = ["none", "silent", "passive", "crash", "chaos"]
    if t >= 1:
        menu += ["burn", "burn-down"]
    kind = rng.choice(menu)
    if kind == "crash":
        return f"crash:{rng.randint(0, 4)}:{rng.randint(0, 4)}"
    if kind == "chaos":
        return f"chaos:{rng.randint(0, 9999)}"
    return kind


def draw_flywheel_spec(rng: random.Random) -> Any:
    """One flywheel point: a valid, runnable ``ScenarioSpec``.

    The draw covers tree shape × ``n`` × ``t`` × adversary × trace level
    × (sometimes) an explicit corrupted set, with ``backend`` always
    ``"reference"`` — the flywheel's differential oracles run the batch
    counterpart themselves, so a point describes the *instance*, not the
    engine.  ``record=True`` appears on ~1/8 of points to feed the
    metrics-row parity oracle.
    """
    from .spec import ScenarioSpec

    protocol = rng.choice(("real-aa", "path-aa", "tree-aa", "tree-aa"))
    t = rng.randint(0, FLYWHEEL_MAX_T)
    n = rng.randint(3 * t + 2, max(FLYWHEEL_MAX_N, 3 * t + 2))
    adversary = _draw_adversary_spec(rng, t)
    corrupt: Tuple[int, ...] = ()
    if t and rng.random() < 0.5:
        corrupt = tuple(sorted(rng.sample(range(n), rng.randint(1, t))))
    return ScenarioSpec(
        protocol=protocol,
        n=n,
        t=t,
        tree=None if protocol == "real-aa" else _draw_tree_spec(rng),
        adversary=adversary,
        corrupt=corrupt,
        backend="reference",
        trace_level=rng.choice(("full", "aggregate")),
        seed=rng.randint(0, 2**31 - 1),
        known_range=8.0 if protocol == "real-aa" else None,
        project=(protocol == "path-aa" and rng.random() < 0.5),
        record=(rng.random() < 0.125),
    )


def spec_stream(seed: int, count: int) -> Iterator[Any]:
    """The first *count* points of flywheel stream *seed*, in order.

    A pure function of ``(seed, count)``: the stream is driven by a
    single ``random.Random(seed)``, so point ``i`` is identical across
    processes, machines, and resumed runs — the property the flywheel
    ledger's exactly-once accounting rests on (and that
    ``tests/analysis/test_strategies_meta.py`` pins across a real
    process boundary).
    """
    rng = random.Random(seed)
    for _ in range(count):
        yield draw_flywheel_spec(rng)


def stream_digest(seed: int, count: int) -> str:
    """A SHA-256 over the canonical JSON of stream ``(seed, count)``.

    Cheap cross-process identity check: two processes agree on the
    entire stream iff they agree on this digest.
    """
    import hashlib

    from .parallel import canonical_json

    digest = hashlib.sha256()
    for spec in spec_stream(seed, count):
        digest.update(canonical_json(spec.to_dict()).encode())
        digest.update(b"\n")
    return digest.hexdigest()


# ----------------------------------------------------------------------
# Hypothesis strategies (the property-test drivers)
# ----------------------------------------------------------------------

if st is not None:

    @st.composite
    def small_trees(draw, min_vertices: int = 1, max_vertices: int = 12):
        """Uniform-ish random labeled trees via Prüfer sequences."""
        n = draw(st.integers(min_value=min_vertices, max_value=max_vertices))
        if n == 1:
            return LabeledTree(vertices=["v00"])
        if n == 2:
            return LabeledTree(edges=[("v00", "v01")])
        sequence = draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=n - 2,
                max_size=n - 2,
            )
        )
        return tree_from_pruefer(sequence)

    @st.composite
    def trees_with_vertex_choices(draw, n_choices: int, min_vertices: int = 2):
        """A random tree plus *n_choices* (not necessarily distinct) vertices."""
        tree = draw(small_trees(min_vertices=min_vertices))
        indices = draw(
            st.lists(
                st.integers(min_value=0, max_value=tree.n_vertices - 1),
                min_size=n_choices,
                max_size=n_choices,
            )
        )
        return tree, [tree.vertices[i] for i in indices]

    @st.composite
    def corruption_sets(
        draw, n: int, max_size: Optional[int] = None
    ) -> Optional[Set[int]]:
        """``None`` (the adversary's default choice) or an explicit corrupt set.

        Explicit sets are drawn from ``0..n-1`` with at most *max_size*
        members (default ``n``); the empty set is a legal, meaningful draw
        (an adversary holding no parties at all).
        """
        if draw(st.booleans()):
            return None
        bound = n if max_size is None else min(max_size, n)
        return draw(
            st.sets(
                st.integers(min_value=0, max_value=max(0, n - 1)), max_size=bound
            )
            if n
            else st.just(set())
        )

    @st.composite
    def batch_supported_adversaries(draw, n: int, t: int):
        """An adversary instance the batch backend can replay (or ``None``).

        Covers the full supported matrix: fault-free, :class:`NoAdversary`,
        silent, passive, partial-broadcast crashes at varying rounds, seeded
        chaos streams, and burn schedules — each over both default and
        explicit corruption sets.
        """
        from ..adversary.base import NoAdversary, PassiveAdversary
        from ..adversary.chaos import ChaosAdversary
        from ..adversary.realaa_attacks import BurnScheduleAdversary
        from ..adversary.strategies import CrashAdversary, SilentAdversary

        kind = draw(
            st.sampled_from(
                ["none", "no-adversary", "silent", "passive", "crash", "chaos", "burn"]
            )
        )
        if kind == "none":
            return None
        corrupt = draw(corruption_sets(n, max_size=max(t, 1)))
        if kind == "no-adversary":
            return NoAdversary(corrupt)
        if kind == "silent":
            return SilentAdversary(corrupt)
        if kind == "passive":
            return PassiveAdversary(corrupt)
        if kind == "chaos":
            seed = draw(st.integers(min_value=0, max_value=2**16))
            weights = None
            if draw(st.booleans()):
                weights = {
                    name: draw(st.floats(min_value=0.1, max_value=4.0))
                    for name in ChaosAdversary.BEHAVIOURS
                }
            return ChaosAdversary(seed=seed, weights=weights, corrupt=corrupt)
        if kind == "burn":
            schedule = draw(
                st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=4)
            )
            direction = draw(st.sampled_from(["up", "down", "alternate"]))
            reuse = draw(st.booleans())
            return BurnScheduleAdversary(
                schedule, direction=direction, reuse_burners=reuse, corrupt=corrupt
            )
        crash_round = draw(st.integers(min_value=0, max_value=30))
        partial_to = draw(st.integers(min_value=0, max_value=n))
        return CrashAdversary(crash_round, partial_to=partial_to, corrupt=corrupt)

    @st.composite
    def fault_plans(draw):
        """``None`` (the common case) or a seeded honest-channel fault plan.

        Faulty plans set ``allow_model_violations=True`` — the same explicit
        gate the resilience lab requires — with moderate per-message rates so
        that most runs still complete and exercise the recovery paths rather
        than degenerating into all-drop noise.
        """
        from ..net.faults import FaultPlan

        if draw(st.booleans()):
            return None
        return FaultPlan(
            drop=draw(st.sampled_from([0.0, 0.1, 0.25])),
            duplicate=draw(st.sampled_from([0.0, 0.1, 0.2])),
            corrupt=draw(st.sampled_from([0.0, 0.1, 0.2])),
            seed=draw(st.integers(min_value=0, max_value=2**16)),
            allow_model_violations=True,
        )

    def backends() -> "st.SearchStrategy[str]":
        """One of the two execution backends (:data:`BACKENDS`)."""
        return st.sampled_from(BACKENDS)

    @st.composite
    def scenario_specs(draw, runnable: bool = True):
        """A valid :class:`repro.analysis.spec.ScenarioSpec`.

        With ``runnable=True`` (the default) the draw is restricted so that
        ``spec.run()`` succeeds on the spec's own backend: adversaries the
        batch engine cannot replay only appear with ``backend="reference"``,
        burn schedules require ``t >= 1``, and sizes stay small enough for
        property-test budgets.
        """
        from .spec import ScenarioSpec

        protocol = draw(st.sampled_from(["real-aa", "path-aa", "tree-aa"]))
        backend = draw(backends())
        t = draw(st.integers(min_value=0, max_value=1))
        n = draw(st.integers(min_value=3 * t + 2, max_value=6))
        adversaries = list(BATCH_SPEC_ADVERSARIES)
        if backend == "reference" or not runnable:
            adversaries += list(REFERENCE_ONLY_SPEC_ADVERSARIES)
        if t >= 1 or not runnable:
            adversaries += ["burn", "burn-down"]
        adversary = draw(st.sampled_from(adversaries))
        corrupt: Tuple[int, ...] = ()
        if t and draw(st.booleans()):
            corrupt = (draw(st.integers(min_value=0, max_value=n - 1)),)
        return ScenarioSpec(
            protocol=protocol,
            n=n,
            t=t,
            tree=None if protocol == "real-aa" else draw(st.sampled_from(SPEC_TREES)),
            adversary=adversary,
            corrupt=corrupt,
            backend=backend,
            trace_level=draw(st.sampled_from(["full", "aggregate"])),
            t_assumed=draw(st.sampled_from([None, t])),
            seed=draw(st.integers(min_value=0, max_value=2**16)),
            known_range=8.0 if protocol == "real-aa" else None,
            project=(protocol == "path-aa" and draw(st.booleans())),
            record=draw(st.booleans()),
        )

    @st.composite
    def real_inputs(draw, n: int, magnitude: float = 16.0) -> List[float]:
        """``n`` finite real inputs bounded by *magnitude* in absolute value."""
        return draw(
            st.lists(
                st.floats(
                    min_value=-magnitude,
                    max_value=magnitude,
                    allow_nan=False,
                    allow_infinity=False,
                    width=32,
                ),
                min_size=n,
                max_size=n,
            )
        )
