"""Property checkers and convergence statistics for executions.

AA's three properties (Definition 1 on ℝ, Definition 2 on trees) become
executable predicates here, along with the per-iteration convergence series
that the T3 benchmark compares against Lemma 5.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..net.network import ExecutionResult
from ..trees.convex import in_convex_hull
from ..trees.labeled_tree import Label, LabeledTree
from ..trees.paths import distance


def real_validity(
    honest_inputs: Iterable[float], honest_outputs: Iterable[float]
) -> bool:
    """Definition 1's Validity: outputs within the range of honest inputs."""
    inputs = list(honest_inputs)
    lo, hi = min(inputs), max(inputs)
    return all(lo <= v <= hi for v in honest_outputs)


def real_agreement(honest_outputs: Iterable[float], epsilon: float) -> bool:
    """Definition 1's ε-Agreement."""
    outputs = list(honest_outputs)
    return max(outputs) - min(outputs) <= epsilon


def tree_validity(
    tree: LabeledTree,
    honest_inputs: Iterable[Label],
    honest_outputs: Iterable[Label],
) -> bool:
    """Definition 2's Validity: outputs in the honest inputs' convex hull."""
    anchors = list(honest_inputs)
    return all(in_convex_hull(tree, v, anchors) for v in honest_outputs)


def tree_output_diameter(
    tree: LabeledTree, honest_outputs: Iterable[Label]
) -> int:
    """The largest pairwise distance among honest outputs."""
    outputs = list(honest_outputs)
    worst = 0
    for i in range(len(outputs)):
        for j in range(i + 1, len(outputs)):
            if outputs[i] != outputs[j]:
                worst = max(worst, distance(tree, outputs[i], outputs[j]))
    return worst


def tree_agreement(tree: LabeledTree, honest_outputs: Iterable[Label]) -> bool:
    """Definition 2's 1-Agreement."""
    return tree_output_diameter(tree, honest_outputs) <= 1


def honest_value_ranges(execution: ExecutionResult) -> List[float]:
    """Per-iteration honest value spread for RealAA-style executions.

    Entry ``i`` is the spread of honest values *after* iteration ``i``; the
    list is prefixed with the spread of the honest inputs, so consecutive
    ratios are the per-iteration convergence factors of Lemma 5.
    """
    histories = []
    inputs = []
    for pid in sorted(execution.honest):
        party = execution.parties[pid]
        history = getattr(party, "history", None)
        start = getattr(party, "input_value", None)
        if history is None or start is None:
            raise ValueError(f"party {pid} records no value history")
        histories.append(history)
        inputs.append(float(start))
    iterations = min(len(h) for h in histories)
    ranges = [max(inputs) - min(inputs)]
    for i in range(iterations):
        values = [h[i].new_value for h in histories]
        ranges.append(max(values) - min(values))
    return ranges


def convergence_factors(ranges: Sequence[float]) -> List[float]:
    """Consecutive ratios ``range_{i+1} / range_i`` (0 once converged)."""
    factors: List[float] = []
    for before, after in zip(ranges, ranges[1:]):
        factors.append(after / before if before > 0 else 0.0)
    return factors


def overall_factor(ranges: Sequence[float]) -> float:
    """Total shrink ``range_final / range_initial`` (Lemma 5's left side)."""
    if not ranges or ranges[0] <= 0:
        return 0.0
    return ranges[-1] / ranges[0]
