"""Multi-seed aggregation for randomized experiments.

Single executions answer "does it work"; sweeps over seeds answer "how
reliably, and with what spread".  :func:`aggregate` runs a seeded
experiment many times and summarises each numeric metric; benchmarks use
it for the columns that vary run-to-run (measured rounds, convergence
factors, split frequencies).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Sequence


@dataclass(frozen=True)
class Summary:
    """Five-number summary of one metric across seeds."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.std:.2g} [{self.minimum:.4g}, {self.maximum:.4g}]"


def summarize(values: Sequence[float]) -> Summary:
    """Mean / sample std / min / max of a non-empty numeric sequence."""
    data = [float(v) for v in values]
    if not data:
        raise ValueError("cannot summarize an empty sequence")
    count = len(data)
    # The division can round the exact mean just outside [min, max] (e.g.
    # three identical tiny values); clamp so the summary invariant
    # ``minimum <= mean <= maximum`` holds exactly.
    mean = min(max(math.fsum(data) / count, min(data)), max(data))
    if count > 1:
        variance = math.fsum((x - mean) ** 2 for x in data) / (count - 1)
    else:
        variance = 0.0
    return Summary(
        count=count,
        mean=mean,
        std=math.sqrt(variance),
        minimum=min(data),
        maximum=max(data),
    )


def aggregate(
    experiment: Callable[[int], Mapping[str, float]],
    seeds: Sequence[int],
) -> Dict[str, Summary]:
    """Run ``experiment(seed)`` per seed; summarise each returned metric.

    Every run must return the same metric keys; boolean metrics are
    treated as 0/1 (so the mean is a success rate).
    """
    if not seeds:
        raise ValueError("need at least one seed")
    collected: Dict[str, List[float]] = {}
    expected = None
    for seed in seeds:
        metrics = experiment(seed)
        keys = set(metrics)
        if expected is None:
            expected = keys
        elif keys != expected:
            raise ValueError(
                f"seed {seed} returned metrics {sorted(keys)} but earlier "
                f"seeds returned {sorted(expected)}"
            )
        for key, value in metrics.items():
            collected.setdefault(key, []).append(float(value))
    return {key: summarize(values) for key, values in sorted(collected.items())}


def success_rate(results: Sequence[bool]) -> float:
    """Fraction of ``True`` among boolean outcomes."""
    outcomes = list(results)
    if not outcomes:
        raise ValueError("need at least one outcome")
    return sum(1 for r in outcomes if r) / len(outcomes)
