"""Execution analysis: AA property checkers, convergence stats, sweeps."""

from .metrics import (
    convergence_factors,
    honest_value_ranges,
    overall_factor,
    real_agreement,
    real_validity,
    tree_agreement,
    tree_output_diameter,
    tree_validity,
)
from .parallel import (
    SWEEP_SCHEMA_VERSION,
    SweepCache,
    SweepReport,
    default_cache_dir,
    get_runner,
    grid_from_axes,
    point_seed,
    register_runner,
    run_grid,
    write_sweep_jsonl,
)
from .stats import Summary, aggregate, success_rate, summarize
from .sweep import (
    TreeSweepPoint,
    measured_realaa_rounds,
    run_tree_point,
    spread_inputs,
    tree_spec_for,
)
from .tables import format_table, print_table

__all__ = [
    "real_validity",
    "real_agreement",
    "tree_validity",
    "tree_agreement",
    "tree_output_diameter",
    "honest_value_ranges",
    "convergence_factors",
    "overall_factor",
    "TreeSweepPoint",
    "run_tree_point",
    "spread_inputs",
    "tree_spec_for",
    "measured_realaa_rounds",
    "SweepCache",
    "SweepReport",
    "default_cache_dir",
    "get_runner",
    "grid_from_axes",
    "point_seed",
    "register_runner",
    "run_grid",
    "write_sweep_jsonl",
    "SWEEP_SCHEMA_VERSION",
    "format_table",
    "print_table",
    "Summary",
    "summarize",
    "aggregate",
    "success_rate",
]
