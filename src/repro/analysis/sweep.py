"""Parameter-sweep harness shared by the benchmarks.

Each sweep runs full protocol executions over a grid and returns rows ready
for :func:`repro.analysis.tables.format_table`.  Imports of the protocol
layers are local to the functions to keep the package import graph acyclic.

The ``*_runner`` functions at the bottom are the *data-driven* forms of
the same sweeps, registered with :mod:`repro.analysis.parallel` so that
grids of them can execute through the process-pool engine (every argument
a JSON-serialisable scalar, trees and adversaries described by the CLI's
spec strings).
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..net.network import TraceLevel
from ..trees.labeled_tree import Label, LabeledTree
from ..trees.paths import diameter
from .parallel import register_runner


@dataclass
class TreeSweepPoint:
    """One grid point of a TreeAA-vs-baseline sweep."""

    family: str
    n_vertices: int
    tree_diameter: int
    tree_rounds: int
    baseline_rounds: int
    tree_ok: bool
    baseline_ok: bool


def spread_inputs(
    tree: LabeledTree, n: int, rng: random.Random
) -> List[Label]:
    """Inputs stretching across the tree: both diameter endpoints plus
    random vertices — the worst case for convergence distance.

    Always returns exactly ``n`` inputs: for ``n < 2`` the endpoint seeds
    are truncated (a 1-party sweep gets one diameter endpoint, an empty
    sweep gets no inputs) rather than handing back more inputs than
    parties.
    """
    if n < 0:
        raise ValueError(f"need n >= 0 parties, got {n}")
    from ..trees.paths import diameter_path

    longest = diameter_path(tree)
    picks: List[Label] = [longest.start, longest.end][:n]
    while len(picks) < n:
        picks.append(rng.choice(tree.vertices))
    rng.shuffle(picks)
    return picks


def run_tree_point(
    family: str,
    tree: LabeledTree,
    n: int,
    t: int,
    seed: int = 0,
    adversary_factory: Optional[Callable[[], Any]] = None,
    trace_level: TraceLevel = TraceLevel.FULL,
    observer: Optional[Any] = None,
    backend: str = "reference",
) -> TreeSweepPoint:
    """Run TreeAA and the iterated-safe-area baseline on the same instance.

    ``observer`` (e.g. a :class:`~repro.observability.MetricsCollector`)
    watches the TreeAA execution only; attaching one forces the simulator
    off the ``AGGREGATE`` fast path for that execution.

    ``backend`` selects the engine for the *TreeAA* execution (see
    :func:`repro.core.api.run_tree_aa`); the iterated-safe-area baseline
    has no batch implementation and always runs on the reference engine.
    """
    from ..core.api import run_tree_aa
    from ..baselines.iterative_tree import IterativeTreeAAParty
    from ..net.runner import run_protocol
    from .metrics import tree_agreement, tree_validity

    rng = random.Random(seed)
    inputs = spread_inputs(tree, n, rng)

    adversary = adversary_factory() if adversary_factory is not None else None
    outcome = run_tree_aa(
        tree,
        inputs,
        t,
        adversary=adversary,
        trace_level=trace_level,
        observer=observer,
        backend=backend,
    )

    adversary2 = adversary_factory() if adversary_factory is not None else None
    baseline_exec = run_protocol(
        n,
        t,
        lambda pid: IterativeTreeAAParty(pid, n, t, tree, inputs[pid]),
        adversary=adversary2,
        trace_level=trace_level,
    )
    honest_inputs = [inputs[pid] for pid in sorted(baseline_exec.honest)]
    honest_outputs = list(baseline_exec.honest_outputs.values())
    baseline_ok = tree_validity(
        tree, honest_inputs, honest_outputs
    ) and tree_agreement(tree, honest_outputs)

    return TreeSweepPoint(
        family=family,
        n_vertices=tree.n_vertices,
        tree_diameter=diameter(tree),
        tree_rounds=outcome.rounds,
        baseline_rounds=baseline_exec.trace.rounds_executed,
        tree_ok=outcome.achieved_aa,
        baseline_ok=baseline_ok,
    )


def measured_realaa_rounds(
    spread: float,
    epsilon: float,
    n: int,
    t: int,
    adversary_factory: Optional[Callable[[], Any]] = None,
    seed: int = 0,
    trace_level: TraceLevel = TraceLevel.FULL,
    backend: str = "reference",
) -> Tuple[int, Optional[int], bool]:
    """(budgeted rounds, measured rounds, AA achieved) for one RealAA run.

    Inputs are the worst case: half the honest parties at 0, half at
    ``spread``, with corrupted parties' puppets mixed between.
    """
    from ..core.api import run_real_aa

    rng = random.Random(seed)
    inputs = [0.0 if i % 2 == 0 else float(spread) for i in range(n)]
    rng.shuffle(inputs)
    adversary = adversary_factory() if adversary_factory is not None else None
    outcome = run_real_aa(
        inputs,
        t,
        epsilon=epsilon,
        known_range=float(spread),
        adversary=adversary,
        trace_level=trace_level,
        backend=backend,
    )
    return outcome.rounds, outcome.measured_rounds, outcome.achieved_aa


# ----------------------------------------------------------------------
# Data-driven runners for the parallel engine
# ----------------------------------------------------------------------


def tree_spec_for(family: str, size: int) -> str:
    """The CLI tree spec matching the T1 benchmark's tree families."""
    if family == "path":
        return f"path:{size}"
    if family == "caterpillar":
        return f"caterpillar:{max(1, size // 2)}x1"
    if family == "random":
        return f"random:{size}:42"
    if family == "star":
        return f"star:{size - 1}"
    raise ValueError(f"unknown sweep tree family {family!r}")


def _adversary_factory(spec: Optional[str], t: int) -> Optional[Callable[[], Any]]:
    """A fresh-adversary factory from a CLI adversary spec (``None``/"none"
    mean fault-free)."""
    if spec is None or spec == "none":
        return None
    from ..cli import make_adversary

    return lambda: make_adversary(spec, t)


@register_runner("tree-point")
def tree_point_runner(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One TreeAA-vs-baseline grid point, described entirely by data.

    ``params``: ``tree`` (CLI tree spec), ``n``, ``t``, optional
    ``family`` (display name), ``adversary`` (CLI adversary spec), and
    ``metrics`` (truthy to attach a
    :class:`~repro.observability.MetricsCollector` to the TreeAA execution
    and embed its :meth:`~repro.observability.MetricsCollector.summary`
    under the row's ``"metrics"`` key).  Without ``metrics`` the collector
    stays detached and payload accounting is skipped
    (``TraceLevel.AGGREGATE``) — the fast path, byte-identical to the
    historical rows, which only carry rounds and AA verdicts.
    """
    from ..cli import parse_tree_spec

    tree = parse_tree_spec(params["tree"])
    n, t = int(params["n"]), int(params["t"])
    collector = None
    if params.get("metrics"):
        from ..observability import MetricsCollector

        collector = MetricsCollector(tree=tree)
    point = run_tree_point(
        str(params.get("family", "tree")),
        tree,
        n,
        t,
        seed=seed,
        adversary_factory=_adversary_factory(params.get("adversary"), t),
        trace_level=TraceLevel.AGGREGATE,
        observer=collector,
        backend=str(params.get("backend", "reference")),
    )
    row = asdict(point)
    if collector is not None:
        row["metrics"] = collector.summary()
    return row


@register_runner("realaa-point")
def realaa_point_runner(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One RealAA grid point: ``spread``, ``epsilon``, ``n``, ``t``,
    optional ``adversary`` — a CLI spec or ``"even-burn"`` (the T2
    schedule: the budget spread evenly over the iteration count)."""
    n, t = int(params["n"]), int(params["t"])
    spread, epsilon = float(params["spread"]), float(params["epsilon"])
    spec = params.get("adversary")
    if spec == "even-burn":
        from ..adversary.realaa_attacks import (
            BurnScheduleAdversary,
            even_burn_schedule,
        )
        from ..protocols.rounds import realaa_iterations

        iterations = realaa_iterations(spread, epsilon, n, t)
        factory: Optional[Callable[[], Any]] = lambda: BurnScheduleAdversary(
            even_burn_schedule(min(t, iterations), iterations)
        )
    else:
        factory = _adversary_factory(spec, t)
    budget, measured, ok = measured_realaa_rounds(
        spread,
        epsilon,
        n,
        t,
        adversary_factory=factory,
        seed=seed,
        trace_level=TraceLevel.AGGREGATE,
        backend=str(params.get("backend", "reference")),
    )
    return {
        "n": n,
        "t": t,
        "spread": spread,
        "epsilon": epsilon,
        "budget": budget,
        "measured": measured,
        "ok": ok,
    }
