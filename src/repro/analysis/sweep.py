"""Parameter-sweep harness shared by the benchmarks.

Each sweep runs full protocol executions over a grid and returns rows ready
for :func:`repro.analysis.tables.format_table`.  Imports of the protocol
layers are local to the functions to keep the package import graph acyclic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..trees.labeled_tree import Label, LabeledTree
from ..trees.paths import diameter


@dataclass
class TreeSweepPoint:
    """One grid point of a TreeAA-vs-baseline sweep."""

    family: str
    n_vertices: int
    tree_diameter: int
    tree_rounds: int
    baseline_rounds: int
    tree_ok: bool
    baseline_ok: bool


def spread_inputs(
    tree: LabeledTree, n: int, rng: random.Random
) -> List[Label]:
    """Inputs stretching across the tree: both diameter endpoints plus
    random vertices — the worst case for convergence distance."""
    from ..trees.paths import diameter_path

    longest = diameter_path(tree)
    picks: List[Label] = [longest.start, longest.end]
    while len(picks) < n:
        picks.append(rng.choice(tree.vertices))
    rng.shuffle(picks)
    return picks


def run_tree_point(
    family: str,
    tree: LabeledTree,
    n: int,
    t: int,
    seed: int = 0,
    adversary_factory: Optional[Callable[[], Any]] = None,
) -> TreeSweepPoint:
    """Run TreeAA and the iterated-safe-area baseline on the same instance."""
    from ..core.api import run_tree_aa
    from ..baselines.iterative_tree import IterativeTreeAAParty
    from ..net.runner import run_protocol
    from .metrics import tree_agreement, tree_validity

    rng = random.Random(seed)
    inputs = spread_inputs(tree, n, rng)

    adversary = adversary_factory() if adversary_factory is not None else None
    outcome = run_tree_aa(tree, inputs, t, adversary=adversary)

    adversary2 = adversary_factory() if adversary_factory is not None else None
    baseline_exec = run_protocol(
        n,
        t,
        lambda pid: IterativeTreeAAParty(pid, n, t, tree, inputs[pid]),
        adversary=adversary2,
    )
    honest_inputs = [inputs[pid] for pid in sorted(baseline_exec.honest)]
    honest_outputs = list(baseline_exec.honest_outputs.values())
    baseline_ok = tree_validity(
        tree, honest_inputs, honest_outputs
    ) and tree_agreement(tree, honest_outputs)

    return TreeSweepPoint(
        family=family,
        n_vertices=tree.n_vertices,
        tree_diameter=diameter(tree),
        tree_rounds=outcome.rounds,
        baseline_rounds=baseline_exec.trace.rounds_executed,
        tree_ok=outcome.achieved_aa,
        baseline_ok=baseline_ok,
    )


def measured_realaa_rounds(
    spread: float,
    epsilon: float,
    n: int,
    t: int,
    adversary_factory: Optional[Callable[[], Any]] = None,
    seed: int = 0,
) -> Tuple[int, Optional[int], bool]:
    """(budgeted rounds, measured rounds, AA achieved) for one RealAA run.

    Inputs are the worst case: half the honest parties at 0, half at
    ``spread``, with corrupted parties' puppets mixed between.
    """
    from ..core.api import run_real_aa

    rng = random.Random(seed)
    inputs = [0.0 if i % 2 == 0 else float(spread) for i in range(n)]
    rng.shuffle(inputs)
    adversary = adversary_factory() if adversary_factory is not None else None
    outcome = run_real_aa(
        inputs,
        t,
        epsilon=epsilon,
        known_range=float(spread),
        adversary=adversary,
    )
    return outcome.rounds, outcome.measured_rounds, outcome.achieved_aa
