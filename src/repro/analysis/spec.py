"""ScenarioSpec: one declarative, versioned description of an execution.

Before this module every layer described "a protocol run" in its own
dialect: the ``run_*`` APIs took Python objects, ``repro sweep`` built
ad-hoc params dicts, the resilience lab had :class:`repro.resilience
.scenario.Scenario`, and the CLI had spec *strings* for trees and
adversaries.  :class:`ScenarioSpec` is the one shared, JSON-serialisable
form: protocol, tree, ``n``/``t``, adversary, backend, fault plan, trace
level, and seed — everything that determines an execution, as data.

That single form is what makes "sweep as a service" possible:

* ``spec.run()`` drives the same :func:`repro.core.api.run_tree_aa` /
  ``run_path_aa`` / ``run_real_aa`` entry points callers use directly;
* the registered ``spec-point`` runner executes a spec dict as a grid
  point of :func:`repro.analysis.parallel.run_grid` — specs ride the
  process pool and the version/backend-keyed result cache for free;
* :mod:`repro.service` ships specs over HTTP and shards them across
  workers, deduping against the *same* cache entries a local
  ``repro sweep --spec`` run produces (:func:`spec_cache_key`);
* :class:`repro.resilience.scenario.Scenario` converts to and from
  specs, so campaigns accept them too.

The serialised form carries ``spec_version`` (currently
:data:`SPEC_VERSION`); :meth:`ScenarioSpec.from_dict` rejects specs
written by a *newer* major version with :class:`SpecVersionError` and
ignores unknown keys, so version-1 readers tolerate forward-compatible
additions.
"""

from __future__ import annotations

import io
import random
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..net.faults import FaultPlan
from ..net.network import TraceLevel
from .parallel import SweepCache, register_runner

#: Version of the ScenarioSpec JSON schema.  Bump on any incompatible
#: change; :meth:`ScenarioSpec.from_dict` rejects newer versions.
SPEC_VERSION = 1

#: Protocols a spec can describe (the three ``run_*`` entry points).
SPEC_PROTOCOLS = ("real-aa", "path-aa", "tree-aa")

#: Execution backends a spec can select.
SPEC_BACKENDS = ("reference", "batch")

#: ``trace_level`` spellings and the simulator levels they map to.
TRACE_LEVELS = {
    "full": TraceLevel.FULL,
    "aggregate": TraceLevel.AGGREGATE,
}

#: The shared sweep/cache namespace for spec execution.  Every consumer —
#: ``repro sweep --spec``, the scenario service, ad-hoc ``run_grid``
#: calls — must use this name (and the :data:`SPEC_RUNNER` runner) so
#: their cached rows are interchangeable.
SPEC_SWEEP_NAME = "scenario-spec"

#: The registered runner name executing one spec dict as a grid point.
SPEC_RUNNER = "spec-point"

#: Adversary kinds :func:`build_adversary` understands (the superset of
#: the CLI grammar and the resilience lab's synchronous menu).
ADVERSARY_KINDS = (
    "none",
    "silent",
    "passive",
    "noise",
    "crash",
    "chaos",
    "burn",
    "burn-down",
    "asym",
)


class SpecError(ValueError):
    """A ScenarioSpec is malformed (as data, before any execution)."""


class SpecVersionError(SpecError):
    """A spec was serialised by an incompatible (newer) schema version."""

    def __init__(self, found: Any) -> None:
        super().__init__(
            f"spec_version {found!r} is not supported "
            f"(this reader understands versions <= {SPEC_VERSION})"
        )
        self.found = found


def build_adversary(
    spec: str,
    *,
    t: int = 0,
    corrupt: Optional[Sequence[int]] = None,
    seed: int = 0,
    chaos_script: Optional[Sequence[Tuple[int, int, str]]] = None,
) -> Optional[Any]:
    """Instantiate a synchronous adversary from its spec string.

    This is the one shared builder behind ``repro.cli.make_adversary``,
    :func:`repro.resilience.scenario.build_adversary` (sync branch), and
    :meth:`ScenarioSpec.run`.  Grammar: ``none``, ``silent``, ``passive``,
    ``noise[:SEED]``, ``crash[:ROUND[:PARTIAL_TO]]``, ``chaos[:SEED]``,
    ``burn``, ``burn-down``, ``asym``.  ``corrupt`` pins the corrupted
    set (``None`` lets the strategy choose), ``seed`` is the fallback for
    seeded kinds without an explicit argument, ``t`` sizes the burn
    schedules, and ``chaos_script`` replays a recorded chaos log.

    Returns ``None`` for ``"none"`` — a genuinely adversary-free run.
    """
    parts = spec.split(":")
    kind = parts[0]
    try:
        args = [int(part) for part in parts[1:]]
    except ValueError as exc:
        raise SpecError(f"malformed adversary spec {spec!r}: {exc}") from None
    if kind == "none":
        return None
    from ..adversary import (
        ChaosAdversary,
        CrashAdversary,
        PassiveAdversary,
        RandomNoiseAdversary,
        SilentAdversary,
    )
    from ..adversary.realaa_attacks import (
        AsymmetricTrustAdversary,
        BurnScheduleAdversary,
    )

    if kind == "silent":
        return SilentAdversary(corrupt=corrupt)
    if kind == "passive":
        return PassiveAdversary(corrupt=corrupt)
    if kind == "noise":
        return RandomNoiseAdversary(seed=args[0] if args else seed, corrupt=corrupt)
    if kind == "crash":
        crash_round = args[0] if args else 1
        partial_to = args[1] if len(args) > 1 else 0
        return CrashAdversary(
            crash_round=crash_round, partial_to=partial_to, corrupt=corrupt
        )
    if kind == "chaos":
        return ChaosAdversary(
            seed=args[0] if args else seed,
            corrupt=corrupt,
            script=chaos_script,
        )
    if kind == "burn":
        return BurnScheduleAdversary([1] * t if t else [], corrupt=corrupt)
    if kind == "burn-down":
        return BurnScheduleAdversary(
            [1] * t if t else [], corrupt=corrupt, direction="down"
        )
    if kind == "asym":
        return AsymmetricTrustAdversary(corrupt=corrupt)
    raise SpecError(f"unknown adversary {spec!r}")


@dataclass(frozen=True)
class ScenarioSpec:
    """One protocol execution, fully described by JSON-friendly data.

    ``t`` is the *network's* corruption budget (what the adversary may
    control); ``t_assumed`` optionally runs the honest parties at a
    smaller tolerance — the resilience lab's degradation knob.  With
    ``inputs=None`` the inputs are derived deterministically from
    ``seed`` (the sweep engine's worst-case spread pattern), so a spec
    stays a few short fields even for large ``n``.
    """

    #: One of :data:`SPEC_PROTOCOLS`.
    protocol: str
    #: Party count.
    n: int
    #: The network's corruption budget.
    t: int
    #: CLI tree spec (``repro.cli.parse_tree_spec`` grammar); required
    #: for the tree protocols, ignored by ``real-aa``.
    tree: Optional[str] = None
    #: Explicit per-party inputs (labels / floats), or ``None`` to derive
    #: a worst-case spread deterministically from ``seed``.
    inputs: Optional[Tuple[Any, ...]] = None
    #: Adversary spec string (:func:`build_adversary` grammar).
    adversary: str = "none"
    #: Explicit corrupted set (empty = the adversary's own choice).
    corrupt: Tuple[int, ...] = ()
    #: Execution engine: ``"reference"`` or ``"batch"``.
    backend: str = "reference"
    #: Optional :meth:`repro.net.faults.FaultPlan.to_dict` payload.
    fault_plan: Optional[Dict[str, Any]] = None
    #: ``"full"`` or ``"aggregate"`` (:data:`TRACE_LEVELS`).
    trace_level: str = "full"
    #: Tolerance the honest parties assume (``None`` = ``t``).
    t_assumed: Optional[int] = None
    #: Deterministic seed for derived inputs and seeded adversaries.
    seed: int = 0
    #: ε for ``real-aa``.
    epsilon: float = 0.5
    #: Public input-range bound for ``real-aa`` (``None`` = derived).
    known_range: Optional[float] = None
    #: ``path-aa`` only: run the Section-5 projection variant.
    project: bool = False
    #: Optional chaos replay script (``(round, pid, behaviour)`` triples).
    chaos_script: Optional[Tuple[Tuple[int, int, str], ...]] = None
    #: Record the execution as an embedded JSONL trace (the service's
    #: report/diff endpoints read it back with ``load_run``).
    record: bool = False

    def __post_init__(self) -> None:
        """Validate the spec as *data* (no execution, no tree parsing)."""
        if self.protocol not in SPEC_PROTOCOLS:
            raise SpecError(f"unknown protocol {self.protocol!r}")
        if self.n < 1:
            raise SpecError(f"need n >= 1, got {self.n}")
        if self.t < 0:
            raise SpecError(f"need t >= 0, got {self.t}")
        if self.backend not in SPEC_BACKENDS:
            raise SpecError(f"unknown backend {self.backend!r}")
        if self.trace_level not in TRACE_LEVELS:
            raise SpecError(f"unknown trace_level {self.trace_level!r}")
        if self.protocol != "real-aa" and not self.tree:
            raise SpecError(f"{self.protocol} specs need a tree spec")
        if self.inputs is not None and len(self.inputs) != self.n:
            raise SpecError(
                f"need exactly n={self.n} inputs, got {len(self.inputs)}"
            )
        if not all(0 <= pid < self.n for pid in self.corrupt):
            raise SpecError(f"corrupt ids {self.corrupt} out of range")
        if len(set(self.corrupt)) != len(self.corrupt):
            raise SpecError(f"duplicate corrupt ids {self.corrupt}")
        if self.adversary.split(":")[0] not in ADVERSARY_KINDS:
            raise SpecError(f"unknown adversary {self.adversary!r}")

    # -- serialisation -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The canonical JSON form (round-trips through :meth:`from_dict`).

        Every field is always present, so two equal specs serialise to
        identical dicts — the property the sweep cache keys rely on.
        """
        return {
            "spec_version": SPEC_VERSION,
            "protocol": self.protocol,
            "n": self.n,
            "t": self.t,
            "tree": self.tree,
            "inputs": None if self.inputs is None else list(self.inputs),
            "adversary": self.adversary,
            "corrupt": list(self.corrupt),
            "backend": self.backend,
            "fault_plan": (
                None if self.fault_plan is None else dict(self.fault_plan)
            ),
            "trace_level": self.trace_level,
            "t_assumed": self.t_assumed,
            "seed": self.seed,
            "epsilon": self.epsilon,
            "known_range": self.known_range,
            "project": self.project,
            "chaos_script": (
                None
                if self.chaos_script is None
                else [list(entry) for entry in self.chaos_script]
            ),
            "record": self.record,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from its :meth:`to_dict` form.

        Forward-compatible by construction: unknown keys are ignored, a
        missing ``spec_version`` means version 1, and only a *newer*
        version than :data:`SPEC_VERSION` is rejected
        (:class:`SpecVersionError`) — so adding optional fields in a
        future minor revision never breaks version-1 readers.
        """
        version = payload.get("spec_version", 1)
        if not isinstance(version, int) or version < 1 or version > SPEC_VERSION:
            raise SpecVersionError(version)
        inputs = payload.get("inputs")
        script = payload.get("chaos_script")
        return cls(
            protocol=str(payload["protocol"]),
            n=int(payload["n"]),
            t=int(payload["t"]),
            tree=payload.get("tree"),
            inputs=None if inputs is None else tuple(inputs),
            adversary=str(payload.get("adversary", "none")),
            corrupt=tuple(int(pid) for pid in payload.get("corrupt", ())),
            backend=str(payload.get("backend", "reference")),
            fault_plan=payload.get("fault_plan"),
            trace_level=str(payload.get("trace_level", "full")),
            t_assumed=payload.get("t_assumed"),
            seed=int(payload.get("seed", 0)),
            epsilon=float(payload.get("epsilon", 0.5)),
            known_range=payload.get("known_range"),
            project=bool(payload.get("project", False)),
            chaos_script=(
                tuple((int(r), int(p), str(b)) for r, p, b in script)
                if script is not None
                else None
            ),
            record=bool(payload.get("record", False)),
        )

    def with_seed(self, seed: int) -> "ScenarioSpec":
        """The same spec under a different deterministic seed."""
        return replace(self, seed=seed)

    # -- execution -----------------------------------------------------

    def build_tree(self) -> Any:
        """Parse the spec's tree (``repro.cli.parse_tree_spec`` grammar)."""
        from ..cli import parse_tree_spec

        if not self.tree:
            raise SpecError(f"{self.protocol} specs need a tree spec")
        return parse_tree_spec(self.tree)

    def make_inputs(self, tree: Optional[Any] = None) -> List[Any]:
        """The concrete input vector: explicit inputs, or the seeded
        worst-case spread pattern the sweep engine uses."""
        if self.inputs is not None:
            return list(self.inputs)
        rng = random.Random(self.seed)
        if self.protocol == "real-aa":
            spread = self.known_range if self.known_range is not None else 8.0
            values = [0.0 if i % 2 == 0 else float(spread) for i in range(self.n)]
            rng.shuffle(values)
            return values
        if tree is None:
            tree = self.build_tree()
        if self.protocol == "path-aa" and not self.project:
            # Section-4 inputs must lie on the commonly known path.
            from ..trees.paths import diameter_path

            vertices = diameter_path(tree).canonical().vertices
            picks: List[Any] = [vertices[0], vertices[-1]][: self.n]
            while len(picks) < self.n:
                picks.append(rng.choice(vertices))
            rng.shuffle(picks)
            return picks
        from .sweep import spread_inputs

        return spread_inputs(tree, self.n, rng)

    def make_adversary(self) -> Optional[Any]:
        """Instantiate the spec's adversary (:func:`build_adversary`)."""
        return build_adversary(
            self.adversary,
            t=self.t,
            corrupt=self.corrupt or None,
            seed=self.seed,
            chaos_script=self.chaos_script,
        )

    def make_fault_plan(self) -> Optional[FaultPlan]:
        """Deserialise the spec's fault plan, if any."""
        if self.fault_plan is None:
            return None
        return FaultPlan.from_dict(self.fault_plan)

    def run(self, observer: Optional[Any] = None) -> Any:
        """Execute the spec through the shared ``run_*`` entry points.

        Returns the protocol's outcome object
        (:class:`~repro.core.api.TreeAAOutcome` or
        :class:`~repro.core.api.RealAAOutcome`).  ``observer`` is
        forwarded verbatim; attaching one forces ``TraceLevel.FULL``
        semantics exactly as it does for direct API calls.
        """
        from ..core.api import run_path_aa, run_real_aa, run_tree_aa

        adversary = self.make_adversary()
        fault_plan = self.make_fault_plan()
        trace_level = TRACE_LEVELS[self.trace_level]
        if self.protocol == "real-aa":
            return run_real_aa(
                [float(v) for v in self.make_inputs()],
                self.t,
                epsilon=self.epsilon,
                known_range=self.known_range,
                adversary=adversary,
                trace_level=trace_level,
                observer=observer,
                fault_plan=fault_plan,
                t_assumed=self.t_assumed,
                backend=self.backend,
            )
        tree = self.build_tree()
        inputs = self.make_inputs(tree)
        if self.protocol == "path-aa":
            from ..trees.paths import diameter_path

            return run_path_aa(
                tree,
                diameter_path(tree),
                inputs,
                self.t,
                adversary=adversary,
                project=self.project,
                trace_level=trace_level,
                observer=observer,
                fault_plan=fault_plan,
                t_assumed=self.t_assumed,
                backend=self.backend,
            )
        return run_tree_aa(
            tree,
            inputs,
            self.t,
            adversary=adversary,
            trace_level=trace_level,
            observer=observer,
            fault_plan=fault_plan,
            t_assumed=self.t_assumed,
            backend=self.backend,
        )


def run_spec(spec: ScenarioSpec) -> Any:
    """Execute a spec (function form of :meth:`ScenarioSpec.run`)."""
    return spec.run()


def spec_cache_key(spec: ScenarioSpec) -> Dict[str, Any]:
    """The sweep-cache key of one spec execution.

    Identical to the key :func:`repro.analysis.parallel.run_grid` builds
    for a ``spec-point`` grid point under :data:`SPEC_SWEEP_NAME` — the
    spec's backend travels *inside* the params, so the key-level backend
    field stays at its default and local sweeps, the scenario service,
    and direct ``run_grid`` calls all dedupe against the same entries.
    """
    return SweepCache.key(SPEC_SWEEP_NAME, SPEC_RUNNER, spec.to_dict(), spec.seed)


def _record_trace(spec: ScenarioSpec, tree: Optional[Any]) -> Any:
    """The observer used for ``record=True`` executions."""
    from ..observability import MetricsCollector

    if spec.protocol == "real-aa":
        return MetricsCollector()
    return MetricsCollector(tree=tree)


def _spec_row(spec: ScenarioSpec, outcome: Any) -> Dict[str, Any]:
    """The JSON result row of one executed spec (sans trace)."""
    row: Dict[str, Any] = {
        "spec": spec.to_dict(),
        "protocol": spec.protocol,
        "n": spec.n,
        "t": spec.t,
        "backend": spec.backend,
        "adversary": spec.adversary.split(":")[0],
        "rounds": outcome.rounds,
        "ok": outcome.achieved_aa,
        "verdicts": {
            "terminated": outcome.terminated,
            "valid": outcome.valid,
            "agreement": outcome.agreement,
        },
    }
    if spec.protocol == "real-aa":
        row["verdicts"]["output_spread"] = outcome.output_spread
    else:
        row["verdicts"]["output_diameter"] = outcome.output_diameter
    return row


def execute_spec_point(spec: ScenarioSpec) -> Dict[str, Any]:
    """Execute one spec and return its JSON result row.

    With ``record=True`` the row additionally embeds the run's JSONL
    trace under ``"trace_jsonl"`` (written by
    :func:`repro.observability.export_run`), so cached rows carry
    everything the service's report/diff endpoints serve.
    """
    from ..observability import export_run

    if not spec.record:
        return _spec_row(spec, spec.run())
    tree = None if spec.protocol == "real-aa" else spec.build_tree()
    collector = _record_trace(spec, tree)
    outcome = spec.run(observer=collector)
    row = _spec_row(spec, outcome)
    buffer = io.StringIO()
    export_run(
        buffer,
        collector,
        outcome.execution,
        protocol=spec.protocol,
        params={"spec": spec.to_dict()},
        tree=tree,
        inputs=spec.make_inputs(tree),
        verdicts=row["verdicts"],
        t=spec.t,
    )
    row["trace_jsonl"] = buffer.getvalue()
    return row


@register_runner(SPEC_RUNNER)
def spec_point_runner(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One ScenarioSpec grid point: the params dict *is* the spec.

    The engine-derived ``seed`` equals the spec's own ``seed`` field
    (specs always carry one), so a row replays bit-identically from its
    JSON alone — the engine's ``base_seed`` never perturbs spec points.
    """
    return execute_spec_point(ScenarioSpec.from_dict(params))
