"""repro — round-optimal Byzantine Approximate Agreement on trees.

A from-scratch reproduction of *“Brief Announcement: Towards Round-Optimal
Approximate Agreement on Trees”* (Fuchs, Ghinea, Parsaeian; PODC 2025),
including every substrate the paper relies on:

* :mod:`repro.trees` — labeled trees, convex hulls, projections, and the
  Euler-tour ``ListConstruction`` of Section 6;
* :mod:`repro.net` — the synchronous authenticated message-passing model of
  Section 2, as a deterministic lockstep simulator;
* :mod:`repro.adversary` — Byzantine strategies, from crash faults to the
  budget-splitting equivocation attack matching Fekete's lower bound;
* :mod:`repro.protocols` — gradecast and the RealAA protocol of Ben-Or,
  Dolev, and Hoch ([6]) that TreeAA uses as its building block;
* :mod:`repro.core` — the paper's contribution: the path reduction
  (Section 4), projection (Section 5), PathsFinder (Section 6), and TreeAA
  (Section 7);
* :mod:`repro.baselines` — the prior iteration-outline protocols on ℝ and
  on trees the paper improves upon;
* :mod:`repro.lowerbound` — Fekete's ``K(R, D)`` bound and Theorem 2's
  round lower bound, plus executable chain-of-views constructions;
* :mod:`repro.analysis` — AA property checkers and experiment harnesses;
* :mod:`repro.observability` — structured per-round metrics, the JSONL
  trace format, and offline run reports (see docs/OBSERVABILITY.md).

Quickstart::

    from repro import LabeledTree, run_tree_aa
    from repro.adversary import SilentAdversary

    tree = LabeledTree(edges=[("a", "b"), ("b", "c"), ("b", "d")])
    outcome = run_tree_aa(
        tree,
        inputs=["a", "c", "d", "a", "c", "d", "a"],  # one per party
        t=2,
        adversary=SilentAdversary(),
    )
    assert outcome.achieved_aa
"""

from .analysis.spec import ScenarioSpec, run_spec
from .core import (
    KnownPathAAParty,
    PathAAParty,
    PathsFinderParty,
    RealAAOutcome,
    TreeAAOutcome,
    TreeAAParty,
    closest_int,
    run_path_aa,
    run_real_aa,
    run_tree_aa,
)
from .net import run_fault_free, run_protocol
from .observability import MetricsCollector, export_run, load_run
from .protocols import RealAAParty
from .trees import LabeledTree, TreePath, list_construction

__version__ = "1.0.0"

__all__ = [
    "LabeledTree",
    "TreePath",
    "list_construction",
    "closest_int",
    "RealAAParty",
    "PathAAParty",
    "KnownPathAAParty",
    "PathsFinderParty",
    "TreeAAParty",
    "run_tree_aa",
    "run_path_aa",
    "run_real_aa",
    "run_protocol",
    "run_fault_free",
    "TreeAAOutcome",
    "RealAAOutcome",
    "ScenarioSpec",
    "run_spec",
    "MetricsCollector",
    "export_run",
    "load_run",
    "__version__",
]
