"""Counterexample shrinking: delta-debug a violating scenario to a minimum.

Given a scenario that trips at least one invariant oracle, :func:`shrink`
greedily applies size-reducing edits — fewer corrupted parties, fewer
parties overall, a smaller tree, a weaker fault plan, a shorter chaos
script — re-executing after each edit and keeping it only while the
failure *persists* (the candidate must still violate at least one oracle
the original violated).  Passes repeat to a fixpoint, ddmin-style: every
accepted edit strictly decreases :meth:`~repro.resilience.scenario
.Scenario.cost`, so termination is structural, with ``max_checks`` as a
belt-and-braces budget on top.

Chaos scenarios get one extra trick: the first violating execution's
behaviour log is captured into an explicit replay script, after which
shrinking operates on the *script* — the scenario stops depending on the
free-running RNG stream and becomes a line-by-line minimal reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterator, Optional, Tuple

from .oracles import evaluate, violated_oracles
from .scenario import Scenario, execute_scenario

#: A failure predicate for :func:`shrink`: execute a scenario however the
#: caller defines execution and return the *sorted* names of whatever it
#: violates (empty = healthy).  The default is :func:`check_violations`
#: (the resilience lab's invariant oracles); the flywheel plugs in its
#: differential oracles here, which is how backend-parity and
#: cross-protocol divergences ride the same ddmin passes as invariant
#: violations.
ViolationCheck = Callable[[Scenario], Tuple[str, ...]]


@dataclass
class ShrinkResult:
    """The outcome of one shrink run."""

    original: Scenario
    minimal: Scenario
    #: Oracle names the original scenario violated.
    original_violations: Tuple[str, ...]
    #: Oracle names the minimal scenario violates.
    minimal_violations: Tuple[str, ...]
    #: Accepted reductions.
    steps: int
    #: Scenario executions spent (including rejected candidates).
    checks: int

    @property
    def reduced(self) -> bool:
        """Whether any reduction was accepted."""
        return self.steps > 0


class NotViolatingError(ValueError):
    """:func:`shrink` was handed a scenario that violates nothing."""


def check_violations(scenario: Scenario) -> Tuple[str, ...]:
    """Execute a scenario and return the violated oracle names (sorted)."""
    return tuple(violated_oracles(evaluate(execute_scenario(scenario))))


def _remap_inputs(scenario: Scenario, n: int) -> Tuple[object, ...]:
    """Truncate the input vector to the first ``n`` parties."""
    return tuple(scenario.inputs[:n])


def _corrupt_candidates(scenario: Scenario) -> Iterator[Scenario]:
    """Drop one corrupted id at a time (ddmin over the corrupted set)."""
    for victim in scenario.corrupt:
        yield replace(
            scenario,
            corrupt=tuple(pid for pid in scenario.corrupt if pid != victim),
        )


def _party_candidates(scenario: Scenario) -> Iterator[Scenario]:
    """Drop the highest-id party (inputs truncated, corrupt set filtered)."""
    n = scenario.n - 1
    if n < 2:
        return
    yield replace(
        scenario,
        n=n,
        inputs=_remap_inputs(scenario, n),
        corrupt=tuple(pid for pid in scenario.corrupt if pid < n),
        t=min(scenario.t, max(0, (n - 1) // 3)),
    )


def _shrink_tree_spec(spec: str) -> Optional[str]:
    """A strictly smaller tree spec of the same family, or ``None``."""
    parts = spec.split(":")
    family = parts[0]
    if family in ("path", "star") and len(parts) >= 2:
        size = int(parts[1])
        if size > 2:
            return f"{family}:{max(2, size // 2)}"
        return None
    if family == "random" and len(parts) >= 2:
        size = int(parts[1])
        seed = parts[2] if len(parts) > 2 else "0"
        if size > 2:
            return f"random:{max(2, size // 2)}:{seed}"
        return None
    if family == "caterpillar" and len(parts) >= 2 and "x" in parts[1]:
        spine, legs = (int(x) for x in parts[1].split("x"))
        if legs > 1:
            return f"caterpillar:{spine}x{legs - 1}"
        if spine > 2:
            return f"caterpillar:{max(2, spine // 2)}x{legs}"
        return None
    return None


def _tree_candidates(scenario: Scenario) -> Iterator[Scenario]:
    """Shrink the tree spec (inputs are indices — they remap via modulo)."""
    if scenario.tree is None:
        return
    smaller = _shrink_tree_spec(scenario.tree)
    if smaller is not None:
        yield replace(scenario, tree=smaller)


def _fault_plan_candidates(scenario: Scenario) -> Iterator[Scenario]:
    """Weaken the fault plan: drop it, zero a channel, shorten its window."""
    plan = scenario.fault_plan
    if plan is None:
        return
    yield replace(scenario, fault_plan=None)
    for key in ("drop", "duplicate", "corrupt"):
        if float(plan.get(key, 0.0)) > 0.0:
            weakened = dict(plan)
            weakened[key] = 0.0
            yield replace(scenario, fault_plan=weakened)
    last = plan.get("last_round")
    if last is None:
        bounded = dict(plan)
        bounded["last_round"] = 8
        yield replace(scenario, fault_plan=bounded)
    elif int(last) > 0:
        bounded = dict(plan)
        bounded["last_round"] = int(last) // 2
        yield replace(scenario, fault_plan=bounded)


def _script_candidates(scenario: Scenario) -> Iterator[Scenario]:
    """ddmin over the chaos script: halves first, then single entries."""
    script = scenario.chaos_script
    if not script:
        return
    half = len(script) // 2
    if half:
        yield replace(scenario, chaos_script=script[:half])
        yield replace(scenario, chaos_script=script[half:])
    for index in range(len(script)):
        yield replace(
            scenario,
            chaos_script=script[:index] + script[index + 1 :],
        )


_PASSES = (
    _corrupt_candidates,
    _party_candidates,
    _tree_candidates,
    _fault_plan_candidates,
    _script_candidates,
)


def _capture_chaos_script(scenario: Scenario) -> Optional[Scenario]:
    """Pin a free-running chaos adversary to its recorded behaviour log.

    Returns the scripted scenario if it still reproduces a violation,
    else ``None`` (an adaptive failure the replay cannot capture).
    """
    if not scenario.adversary.startswith("chaos"):
        return None
    if scenario.chaos_script is not None:
        return None
    result = execute_scenario(scenario)
    if not evaluate(result):
        return None
    scripted = replace(
        scenario,
        chaos_script=tuple(
            (int(r), int(p), str(b)) for r, p, b in result.chaos_log
        ),
    )
    return scripted


def shrink(
    scenario: Scenario,
    max_checks: int = 400,
    check: ViolationCheck = check_violations,
) -> ShrinkResult:
    """Minimise a violating scenario while preserving its failure.

    Raises :class:`NotViolatingError` if the input scenario passes every
    oracle (there is nothing to shrink).  The preserved property is a
    non-empty intersection with the original's violated oracle set — the
    minimal scenario fails *in the same way*, not merely somehow.

    ``check`` swaps the failure definition (see :data:`ViolationCheck`):
    anything that maps a scenario to violation names can drive the same
    reduction passes.  The chaos-script capture trick stays specific to
    the default check — a custom oracle already defines its own notion of
    reproduction, and scripting under it could change what is being
    preserved.
    """
    checks = 0

    def violating(candidate: Scenario, against: Tuple[str, ...]) -> Optional[Tuple[str, ...]]:
        nonlocal checks
        checks += 1
        try:
            found = check(candidate)
        except Exception:  # noqa: BLE001 - a crashing candidate is a dead end
            return None
        if set(found) & set(against):
            return found
        return None

    original_violations = check(scenario)
    checks += 1
    if not original_violations:
        raise NotViolatingError(
            "scenario violates no oracle; nothing to shrink"
        )

    current = scenario
    current_violations = original_violations
    steps = 0

    scripted = (
        _capture_chaos_script(current) if check is check_violations else None
    )
    if scripted is not None:
        found = violating(scripted, original_violations)
        if found is not None:
            current, current_violations = scripted, found
            # Scripting adds entries, so it is not a "reduction" — but it
            # unlocks the script-truncation pass below.

    improved = True
    while improved and checks < max_checks:
        improved = False
        for make_candidates in _PASSES:
            for candidate in make_candidates(current):
                if checks >= max_checks:
                    break
                if candidate.cost() >= current.cost():
                    continue
                found = violating(candidate, original_violations)
                if found is not None:
                    current, current_violations = candidate, found
                    steps += 1
                    improved = True
                    break  # restart this pass from the smaller scenario
            if improved:
                break  # restart the pass cascade from the top

    return ShrinkResult(
        original=scenario,
        minimal=current,
        original_violations=original_violations,
        minimal_violations=current_violations,
        steps=steps,
        checks=checks,
    )


def shrink_report(result: ShrinkResult) -> str:
    """A human-readable before/after digest of one shrink run."""
    before, after = result.original, result.minimal
    lines = [
        f"shrunk in {result.steps} reductions ({result.checks} executions):",
        f"  parties: {before.n} -> {after.n}",
        f"  corrupted: {len(before.corrupt)} -> {len(after.corrupt)}",
    ]
    if before.tree is not None:
        lines.append(f"  tree: {before.tree} -> {after.tree}")
    if after.chaos_script is not None:
        lines.append(
            f"  chaos script: {len(after.chaos_script)} scripted actions"
        )
    if before.fault_plan is not None:
        lines.append(
            f"  fault plan: {before.fault_plan} -> {after.fault_plan}"
        )
    lines.append(
        f"  violations: {list(result.original_violations)} -> "
        f"{list(result.minimal_violations)}"
    )
    return "\n".join(lines)
