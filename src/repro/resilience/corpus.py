"""Regression corpus: minimal reproductions saved as JSON, replayed in CI.

Every scenario the shrinker minimises (and every interesting hand-written
case) can be frozen as a :class:`ReproCase` file under ``tests/corpus/``.
A corpus case records the scenario *and* the violations it is expected to
produce — including the empty set, for regression cases that must stay
clean.  The tier-1 test suite replays every case and asserts the recorded
verdict reproduces exactly, so a behaviour change in any layer the
scenario touches (protocols, network, adversaries, fault injection)
surfaces as a corpus diff.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Tuple

from .oracles import evaluate, violated_oracles
from .scenario import Scenario, ScenarioResult, execute_scenario

#: Corpus file schema version (bump on incompatible format changes).
CORPUS_SCHEMA_VERSION = 1

#: Top-level corpus-file keys this reader interprets itself.  Everything
#: else is a forward-compatible *extra* (e.g. the flywheel's oracle
#: metadata) — preserved verbatim through a load/save round trip so an
#: older reader never strips what a newer writer recorded.
_KNOWN_KEYS = frozenset(
    {"schema_version", "name", "description", "scenario", "expected_violations"}
)


@dataclass(frozen=True)
class ReproCase:
    """One corpus entry: a scenario plus its expected oracle verdict."""

    #: Unique, filename-friendly identifier.
    name: str
    #: Why this case exists (what regression it guards against).
    description: str
    scenario: Scenario
    #: Sorted oracle names the replay must produce (empty = must be clean).
    expected_violations: Tuple[str, ...] = ()
    #: Unrecognised top-level keys of the on-disk file (forward compat):
    #: carried as data, ignored by replay, round-tripped by :meth:`to_dict`.
    extras: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """The JSON form stored on disk (extras included, known keys win)."""
        payload: Dict[str, Any] = dict(self.extras)
        payload.update(
            {
                "schema_version": CORPUS_SCHEMA_VERSION,
                "name": self.name,
                "description": self.description,
                "scenario": self.scenario.to_dict(),
                "expected_violations": list(self.expected_violations),
            }
        )
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ReproCase":
        """Rebuild a case from its :meth:`to_dict` form.

        Forward-compatible: unknown top-level keys (a newer writer's
        metadata, e.g. ``"flywheel"``) land in :attr:`extras` instead of
        being dropped or rejected, so flywheel-filed cases replay on
        readers that predate the flywheel.
        """
        return cls(
            name=str(payload["name"]),
            description=str(payload.get("description", "")),
            scenario=Scenario.from_dict(payload["scenario"]),
            expected_violations=tuple(
                sorted(payload.get("expected_violations", ()))
            ),
            extras={
                key: value
                for key, value in payload.items()
                if key not in _KNOWN_KEYS
            },
        )


def save_case(case: ReproCase, directory: str) -> str:
    """Write one case as ``<directory>/<name>.json``; returns the path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{case.name}.json")
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as handle:
        json.dump(case.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return path


def load_case(path: str) -> ReproCase:
    """Read one corpus file."""
    with open(path) as handle:
        return ReproCase.from_dict(json.load(handle))


def iter_corpus(directory: str) -> List[ReproCase]:
    """Every ``*.json`` case in a corpus directory, sorted by filename."""
    if not os.path.isdir(directory):
        return []
    cases: List[ReproCase] = []
    for filename in sorted(os.listdir(directory)):
        if filename.endswith(".json"):
            cases.append(load_case(os.path.join(directory, filename)))
    return cases


def replay(case: ReproCase) -> Tuple[Tuple[str, ...], ScenarioResult]:
    """Execute a case; return (violated oracle names, full result)."""
    result = execute_scenario(case.scenario)
    return tuple(violated_oracles(evaluate(result))), result


def verify(case: ReproCase) -> bool:
    """Whether the replayed verdict matches the recorded one exactly."""
    found, _ = replay(case)
    return tuple(sorted(found)) == tuple(sorted(case.expected_violations))


def case_from_scenario(
    name: str,
    description: str,
    scenario: Scenario,
) -> ReproCase:
    """Freeze a scenario with its *current* verdict as the expectation."""
    result = execute_scenario(scenario)
    return ReproCase(
        name=name,
        description=description,
        scenario=scenario,
        expected_violations=tuple(violated_oracles(evaluate(result))),
    )


def verify_corpus(directory: str) -> List[str]:
    """Names of corpus cases whose replay no longer matches (empty = good)."""
    failures: List[str] = []
    for case in iter_corpus(directory):
        if not verify(case):
            failures.append(case.name)
    return failures


def save_cases(cases: Iterable[ReproCase], directory: str) -> List[str]:
    """Save several cases; returns the written paths."""
    return [save_case(case, directory) for case in cases]
