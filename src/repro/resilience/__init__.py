"""Resilience lab: fault-injection campaigns, oracles, and shrinking.

The robustness layer over the simulator: describe an execution as a JSON
:class:`Scenario` (tree × adversary × corruption set × scheduler × fault
plan), run seeded campaigns of them through the parallel sweep engine,
judge every run with the invariant oracles, delta-debug any violation to
a minimal reproduction, and freeze reproductions as a regression corpus.

Entry points: :func:`run_campaign` (``repro campaign``), :func:`shrink`
(``repro shrink``), and :mod:`repro.resilience.corpus` for the
``tests/corpus/`` replay format.
"""

from .campaign import (
    CampaignConfig,
    CampaignReport,
    generate_scenarios,
    resilience_point_runner,
    run_campaign,
)
from .corpus import (
    CORPUS_SCHEMA_VERSION,
    ReproCase,
    case_from_scenario,
    iter_corpus,
    load_case,
    replay,
    save_case,
    save_cases,
    verify,
    verify_corpus,
)
from .oracles import ORACLE_NAMES, Violation, evaluate, violated_oracles
from .scenario import (
    PROTOCOLS,
    Scenario,
    ScenarioError,
    ScenarioResult,
    build_adversary,
    build_scheduler,
    execute_scenario,
)
from .shrink import (
    NotViolatingError,
    ShrinkResult,
    check_violations,
    shrink,
    shrink_report,
)

__all__ = [
    "Scenario",
    "ScenarioError",
    "ScenarioResult",
    "PROTOCOLS",
    "execute_scenario",
    "build_adversary",
    "build_scheduler",
    "Violation",
    "ORACLE_NAMES",
    "evaluate",
    "violated_oracles",
    "CampaignConfig",
    "CampaignReport",
    "generate_scenarios",
    "run_campaign",
    "resilience_point_runner",
    "shrink",
    "ShrinkResult",
    "shrink_report",
    "check_violations",
    "NotViolatingError",
    "ReproCase",
    "CORPUS_SCHEMA_VERSION",
    "case_from_scenario",
    "save_case",
    "save_cases",
    "load_case",
    "iter_corpus",
    "replay",
    "verify",
    "verify_corpus",
]
