"""Campaign engine: seeded scenario generation, parallel execution, oracles.

A campaign is a deterministic function of its config: ``CampaignConfig``'s
seed drives a single :class:`random.Random` through scenario generation
(tree shape × adversary × corruption set × scheduler × fault plan), and
every generated scenario carries its own derived seed — so a campaign
re-runs bit-identically, and any single failing scenario replays outside
the campaign.

Execution goes through :func:`repro.analysis.parallel.run_grid` with the
registered ``resilience-point`` runner: scenarios are JSON grid points,
workers execute and judge them, and finished points are memoised in the
sweep cache like every other experiment in this repository.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..analysis.parallel import SweepReport, register_runner, run_grid
from .oracles import Violation, evaluate, violated_oracles
from .scenario import (
    ASYNC_ADVERSARIES,
    SYNC_ADVERSARIES,
    Scenario,
    execute_scenario,
)


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that determines a campaign (and nothing else).

    With the defaults — legal tolerances, no fault plan — a campaign is a
    *regression* run: every scenario must satisfy every oracle.  Setting
    ``corruption_ratio`` past ``1/3`` or ``max_fault_probability`` past 0
    turns it into a *degradation* run, where violations are the data.
    """

    #: How many scenarios to generate.
    count: int = 200
    #: Master seed; every scenario's own seed derives from it.
    seed: int = 0
    #: Protocols to sample from.
    protocols: Tuple[str, ...] = ("real-aa", "tree-aa", "async-real-aa")
    #: Adversary kinds to sample from (filtered per protocol).
    adversaries: Tuple[str, ...] = SYNC_ADVERSARIES
    #: Scheduler kinds for async scenarios.
    schedulers: Tuple[str, ...] = ("fifo", "random", "split", "delay")
    #: Tree families for tree-aa scenarios.
    tree_families: Tuple[str, ...] = ("path", "star", "caterpillar", "random")
    #: Party counts are drawn from this inclusive range.
    min_n: int = 4
    max_n: int = 10
    #: ``None`` keeps every corrupted set legal (``|F| = t < n/3``);
    #: otherwise ``|F| = round(ratio · n)`` (the parties' assumed ``t``
    #: stays legal) — the knob that crosses the impossibility threshold.
    corruption_ratio: Optional[float] = None
    #: Upper bound for each sampled fault probability (0 = no fault plans).
    max_fault_probability: float = 0.0
    #: Required (and forwarded) when ``max_fault_probability > 0``.
    allow_model_violations: bool = False
    #: ε for real-valued scenarios.
    epsilon: float = 0.5
    #: Async step budget.
    max_steps: int = 20_000

    def __post_init__(self) -> None:
        """Reject configs that could not produce a single scenario."""
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if self.min_n < 2 or self.max_n < self.min_n:
            raise ValueError(
                f"need 2 <= min_n <= max_n, got {self.min_n}..{self.max_n}"
            )
        if not self.protocols:
            raise ValueError("at least one protocol required")
        if self.max_fault_probability > 0 and not self.allow_model_violations:
            raise ValueError(
                "fault plans require allow_model_violations=True "
                "(they break the Byzantine model on purpose)"
            )


def _sample_tree(rng: random.Random, family: str) -> str:
    """A CLI tree spec of the given family, sized by the campaign RNG."""
    if family == "path":
        return f"path:{rng.randint(3, 20)}"
    if family == "star":
        return f"star:{rng.randint(3, 12)}"
    if family == "caterpillar":
        return f"caterpillar:{rng.randint(2, 8)}x{rng.randint(1, 3)}"
    if family == "random":
        return f"random:{rng.randint(4, 20)}:{rng.randint(0, 999)}"
    raise ValueError(f"unknown tree family {family!r}")


def _sample_adversary(
    rng: random.Random, kinds: Sequence[str], is_async: bool
) -> str:
    """An adversary spec string, with seeded parameters where relevant."""
    menu = [
        kind
        for kind in kinds
        if kind in (ASYNC_ADVERSARIES if is_async else SYNC_ADVERSARIES)
    ]
    if not menu:
        return "none"
    kind = rng.choice(menu)
    if kind == "noise":
        return f"noise:{rng.randint(0, 9999)}"
    if kind == "chaos":
        return f"chaos:{rng.randint(0, 9999)}"
    if kind == "crash":
        crash_round = rng.randint(0, 4)
        partial_to = rng.randint(0, 4)
        return f"crash:{crash_round}:{partial_to}"
    return kind


def _sample_fault_plan(
    rng: random.Random, config: CampaignConfig
) -> Optional[Dict[str, Any]]:
    """A fault-plan dict within the config's probability cap, or ``None``."""
    cap = config.max_fault_probability
    if cap <= 0:
        return None
    plan = {
        "drop": round(rng.uniform(0, cap), 4),
        "duplicate": round(rng.uniform(0, cap), 4),
        "corrupt": round(rng.uniform(0, cap), 4),
        "seed": rng.randint(0, 9999),
        "allow_model_violations": True,
    }
    if all(plan[key] == 0.0 for key in ("drop", "duplicate", "corrupt")):
        return None
    return plan


def generate_scenarios(config: CampaignConfig) -> List[Scenario]:
    """The campaign's scenarios — a pure function of the config."""
    rng = random.Random(config.seed)
    scenarios: List[Scenario] = []
    for index in range(config.count):
        protocol = rng.choice(list(config.protocols))
        is_async = protocol.startswith("async")
        n = rng.randint(config.min_n, config.max_n)
        legal_t = (n - 1) // 3
        t = rng.randint(0, legal_t) if legal_t else 0
        if config.corruption_ratio is None:
            n_corrupt = t
        else:
            n_corrupt = min(n - 1, round(config.corruption_ratio * n))
        corrupt = tuple(sorted(rng.sample(range(n), n_corrupt)))
        adversary = _sample_adversary(rng, config.adversaries, is_async)
        if adversary == "none":
            corrupt = ()
        tree: Optional[str] = None
        inputs: Tuple[Any, ...]
        if protocol == "tree-aa":
            tree = _sample_tree(rng, rng.choice(list(config.tree_families)))
            inputs = tuple(rng.randint(0, 10_000) for _ in range(n))
        else:
            spread = rng.choice([1.0, 5.0, 20.0])
            inputs = tuple(
                round(rng.uniform(0, spread), 4) for _ in range(n)
            )
        scenarios.append(
            Scenario(
                protocol=protocol,
                n=n,
                t=t,
                inputs=inputs,
                adversary=adversary,
                corrupt=corrupt,
                tree=tree,
                epsilon=config.epsilon,
                scheduler=(
                    _sample_scheduler(rng, config.schedulers, n)
                    if is_async
                    else None
                ),
                fault_plan=(
                    _sample_fault_plan(rng, config) if not is_async else None
                ),
                max_steps=config.max_steps,
                seed=rng.randint(0, 2**31 - 1),
            )
        )
    return scenarios


def _sample_scheduler(
    rng: random.Random, kinds: Sequence[str], n: int
) -> str:
    """A scheduler spec for an async scenario."""
    kind = rng.choice(list(kinds)) if kinds else "fifo"
    if kind == "random":
        return f"random:{rng.randint(0, 9999)}"
    if kind == "split":
        return f"split:{rng.randint(1, max(1, n - 1))}"
    if kind == "delay":
        return f"delay:{rng.randint(1, max(1, n // 2))}"
    return "fifo"


@register_runner("resilience-point")
def resilience_point_runner(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One campaign grid point: execute the scenario, judge it, report.

    ``params["scenario"]`` is a :meth:`~repro.resilience.scenario.Scenario
    .to_dict` payload; the engine-derived ``seed`` is ignored because the
    scenario carries its own (a campaign row must replay bit-identically
    from its JSON alone).
    """
    scenario = Scenario.from_dict(params["scenario"])
    result = execute_scenario(scenario)
    violations = evaluate(result)
    row: Dict[str, Any] = {
        "scenario": scenario.to_dict(),
        "protocol": scenario.protocol,
        "adversary": scenario.adversary.split(":")[0],
        "n": scenario.n,
        "t": scenario.t,
        "n_corrupt": len(scenario.corrupt),
        "rounds": result.rounds,
        "completed": result.completed,
        "violations": [violation.to_dict() for violation in violations],
        "violated": violated_oracles(violations),
        "ok": not violations,
        "fault_counts": dict(result.fault_counts),
    }
    if result.stall is not None:
        row["stall"] = result.stall
    if result.error is not None:
        row["error"] = result.error
    return row


@dataclass
class CampaignReport:
    """A finished campaign: config, per-scenario rows, violation digest."""

    config: CampaignConfig
    rows: List[Dict[str, Any]] = field(default_factory=list)
    #: Provenance of the underlying sweep (cache hits, jobs, wall time).
    sweep: Optional[SweepReport] = None

    @property
    def violating_rows(self) -> List[Dict[str, Any]]:
        """Rows with at least one violation."""
        return [row for row in self.rows if not row["ok"]]

    @property
    def ok(self) -> bool:
        """Whether every scenario satisfied every oracle."""
        return not self.violating_rows

    def violations_by_oracle(self) -> Dict[str, int]:
        """How many scenarios tripped each oracle."""
        counts: Dict[str, int] = {}
        for row in self.rows:
            for oracle in row["violated"]:
                counts[oracle] = counts.get(oracle, 0) + 1
        return dict(sorted(counts.items()))

    def violations_by_adversary(self) -> Dict[str, int]:
        """How many scenarios per adversary kind had violations."""
        counts: Dict[str, int] = {}
        for row in self.violating_rows:
            counts[row["adversary"]] = counts.get(row["adversary"], 0) + 1
        return dict(sorted(counts.items()))

    def violating_scenarios(self) -> List[Tuple[Scenario, List[Violation]]]:
        """The violating scenarios, deserialised and paired with findings."""
        pairs: List[Tuple[Scenario, List[Violation]]] = []
        for row in self.violating_rows:
            pairs.append(
                (
                    Scenario.from_dict(row["scenario"]),
                    [Violation.from_dict(v) for v in row["violations"]],
                )
            )
        return pairs

    def summary(self) -> str:
        """A few human-readable lines for CLI output and CI logs."""
        lines = [
            f"campaign: {len(self.rows)} scenarios, "
            f"{len(self.violating_rows)} violating "
            f"(seed={self.config.seed})"
        ]
        by_oracle = self.violations_by_oracle()
        if by_oracle:
            lines.append(
                "  by oracle: "
                + ", ".join(f"{k}={v}" for k, v in by_oracle.items())
            )
        by_adversary = self.violations_by_adversary()
        if by_adversary:
            lines.append(
                "  by adversary: "
                + ", ".join(f"{k}={v}" for k, v in by_adversary.items())
            )
        if self.sweep is not None:
            lines.append("  " + self.sweep.summary())
        return "\n".join(lines)


def run_campaign(
    config: CampaignConfig,
    *,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    no_cache: bool = False,
    jsonl_path: Optional[str] = None,
    specs: Optional[Sequence[Any]] = None,
) -> CampaignReport:
    """Generate, execute, and judge a whole campaign.

    Execution happens through the shared parallel sweep engine, so
    ``jobs``/``cache_dir``/``no_cache``/``jsonl_path`` behave exactly as
    they do for ``repro sweep`` — including the on-disk memo of finished
    scenarios and the machine-readable JSONL report.

    ``specs`` replaces the seeded generator with an explicit workload:
    each :class:`~repro.analysis.spec.ScenarioSpec` is converted through
    :meth:`Scenario.from_spec` and judged by the same oracles — how a
    scenario-service grid (or any other declarative spec source) gets a
    resilience verdict without re-describing itself in campaign terms.
    """
    if specs is not None:
        scenarios = [Scenario.from_spec(spec) for spec in specs]
    else:
        scenarios = generate_scenarios(config)
    grid = [{"scenario": scenario.to_dict()} for scenario in scenarios]
    sweep = run_grid(
        f"resilience-campaign-{config.seed}",
        "resilience-point",
        grid,
        jobs=jobs,
        cache_dir=cache_dir,
        no_cache=no_cache,
        base_seed=config.seed,
        jsonl_path=jsonl_path,
    )
    return CampaignReport(config=config, rows=list(sweep.rows), sweep=sweep)
