"""Invariant oracles: turn a scenario result into a list of violations.

Each oracle checks one clause of the AA contract (plus execution hygiene)
over a finished :class:`~repro.resilience.scenario.ScenarioResult`:

``no-exception``
    The execution must not have died on an unhandled exception — whatever
    the adversary, scheduler, or fault plan did, crashing is never an
    admissible outcome for the simulator.
``termination``
    Every honest party produced an output (for async runs: the execution
    completed within its step budget).
``validity``
    Convex-hull validity: every honest output lies within the honest
    inputs' hull — the interval ``[min, max]`` on ℝ, the metric convex
    hull on trees.
``agreement``
    ε-agreement on ℝ (output spread ≤ ε), 1-agreement on trees (pairwise
    output distance ≤ 1).
``round-bound``
    The execution finished within the theoretical bound recorded at
    execution time (Theorem 3 / Theorem 4 budgets, or the async step
    budget).

:func:`evaluate` runs them all and returns the violations — an empty list
is the campaign engine's definition of a healthy run.  Oracles are total:
they never raise on garbage outputs (``NaN``, ``None``, non-vertices);
garbage surfaces as violations instead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List

from .scenario import ScenarioResult

#: Every oracle name, in evaluation order.
ORACLE_NAMES = (
    "no-exception",
    "termination",
    "validity",
    "agreement",
    "round-bound",
)


@dataclass(frozen=True)
class Violation:
    """One broken invariant: which oracle tripped, and why."""

    oracle: str
    detail: str

    def to_dict(self) -> Dict[str, str]:
        """JSON form for campaign rows and corpus files."""
        return {"oracle": self.oracle, "detail": self.detail}

    @classmethod
    def from_dict(cls, payload: Dict[str, str]) -> "Violation":
        """Rebuild from :meth:`to_dict` output."""
        return cls(oracle=str(payload["oracle"]), detail=str(payload["detail"]))


def _is_real(value: Any) -> bool:
    """A finite real number (bools excluded — they are not outputs)."""
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(float(value))
    )


def _check_termination(result: ScenarioResult) -> List[Violation]:
    """Every honest party has an output; async runs completed."""
    violations: List[Violation] = []
    if not result.completed:
        violations.append(
            Violation(
                "termination",
                result.stall or "execution did not complete",
            )
        )
    missing = sorted(
        pid for pid, value in result.honest_outputs.items() if value is None
    )
    if missing:
        violations.append(
            Violation("termination", f"honest parties {missing} have no output")
        )
    if not result.honest_outputs:
        violations.append(Violation("termination", "no honest outputs at all"))
    return violations


def _check_real(result: ScenarioResult) -> List[Violation]:
    """Validity and ε-agreement on ℝ.

    ``None`` outputs are the termination oracle's finding, not a validity
    one, so they are excluded here.
    """
    violations: List[Violation] = []
    outputs = {
        pid: v for pid, v in result.honest_outputs.items() if v is not None
    }
    bad = sorted(pid for pid, v in outputs.items() if not _is_real(v))
    if bad:
        violations.append(
            Violation(
                "validity",
                f"honest parties {bad} output non-real values "
                f"{[outputs[pid] for pid in bad]!r}",
            )
        )
    values = {pid: float(v) for pid, v in outputs.items() if _is_real(v)}
    if not values:
        return violations
    inputs = [float(v) for v in result.honest_inputs.values()]
    lo, hi = min(inputs), max(inputs)
    outside = sorted(pid for pid, v in values.items() if not lo <= v <= hi)
    if outside:
        violations.append(
            Violation(
                "validity",
                f"outputs of {outside} outside honest input hull "
                f"[{lo:g}, {hi:g}]",
            )
        )
    spread = max(values.values()) - min(values.values())
    epsilon = result.scenario.epsilon
    if spread > epsilon:
        violations.append(
            Violation(
                "agreement",
                f"output spread {spread:g} exceeds epsilon {epsilon:g}",
            )
        )
    return violations


def _in_tree(tree: Any, value: Any) -> bool:
    """Tree membership that tolerates unhashable garbage outputs."""
    try:
        return value in tree
    except TypeError:
        return False


def _check_tree(result: ScenarioResult) -> List[Violation]:
    """Convex-hull validity and 1-agreement on the tree."""
    from ..trees.convex import in_convex_hull
    from ..trees.paths import distance

    violations: List[Violation] = []
    tree = result.tree_obj
    if tree is None:
        return [Violation("validity", "no tree attached to a tree-aa result")]
    outputs = {
        pid: v for pid, v in result.honest_outputs.items() if v is not None
    }
    bad = sorted(pid for pid, v in outputs.items() if not _in_tree(tree, v))
    if bad:
        violations.append(
            Violation(
                "validity",
                f"honest parties {bad} output non-vertices "
                f"{[outputs[pid] for pid in bad]!r}",
            )
        )
    vertices = {pid: v for pid, v in outputs.items() if _in_tree(tree, v)}
    anchors = [v for v in result.honest_inputs.values() if _in_tree(tree, v)]
    if not vertices or not anchors:
        return violations
    outside = sorted(
        pid
        for pid, v in vertices.items()
        if not in_convex_hull(tree, v, anchors)
    )
    if outside:
        violations.append(
            Violation(
                "validity",
                f"outputs of {outside} outside the honest inputs' hull",
            )
        )
    values = sorted(set(vertices.values()), key=repr)
    diameter = 0
    for i in range(len(values)):
        for j in range(i + 1, len(values)):
            diameter = max(diameter, distance(tree, values[i], values[j]))
    if diameter > 1:
        violations.append(
            Violation(
                "agreement",
                f"honest output diameter {diameter} exceeds 1",
            )
        )
    return violations


def _check_round_bound(result: ScenarioResult) -> List[Violation]:
    """The execution stayed within its recorded round/step budget."""
    if result.round_limit is None:
        return []
    if result.rounds <= result.round_limit:
        return []
    return [
        Violation(
            "round-bound",
            f"ran {result.rounds} rounds, budget was {result.round_limit}",
        )
    ]


def evaluate(result: ScenarioResult) -> List[Violation]:
    """All violations of one finished scenario execution.

    A captured exception short-circuits: a crashed run has no outputs
    worth judging, so only ``no-exception`` fires.  Likewise validity and
    agreement are only judged when at least one honest output exists —
    a fully stalled run is a termination violation, not four.
    """
    if result.error is not None:
        return [Violation("no-exception", result.error)]
    violations = _check_termination(result)
    has_outputs = any(v is not None for v in result.honest_outputs.values())
    if has_outputs:
        if result.scenario.protocol == "tree-aa":
            violations.extend(_check_tree(result))
        else:
            violations.extend(_check_real(result))
    violations.extend(_check_round_bound(result))
    return violations


def violated_oracles(violations: List[Violation]) -> List[str]:
    """The sorted, de-duplicated oracle names of a violation list."""
    return sorted({violation.oracle for violation in violations})
