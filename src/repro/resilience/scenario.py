"""Scenario: one fully-described resilience experiment, as plain data.

A :class:`Scenario` pins everything that determines an execution — the
protocol, the tree shape, the party count and assumed tolerance, the
per-party inputs, the adversary and its corrupted set, the (async)
scheduler, and an optional beyond-the-model :class:`~repro.net.faults
.FaultPlan` — as a JSON-serialisable value.  That makes scenarios:

* **generatable** — the campaign engine draws them from a seeded RNG;
* **shippable** — grid points of the parallel sweep engine are JSON;
* **shrinkable** — the delta-debugger edits the data and re-executes;
* **replayable** — a corpus file deserialises to the exact failing run.

:func:`execute_scenario` is the single interpreter: it never raises for
protocol-level failures — unhandled exceptions are captured into the
result, where the ``no-exception`` oracle turns them into violations.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..engine.errors import UnsupportedBackendError
from ..net.faults import FaultPlan
from ..net.messages import PartyId

#: Protocols a scenario can describe.
PROTOCOLS = ("real-aa", "tree-aa", "async-real-aa")

#: Adversary specs understood by :func:`build_adversary` (synchronous).
SYNC_ADVERSARIES = ("none", "passive", "silent", "noise", "crash", "chaos")

#: Adversary specs understood for ``async-real-aa`` scenarios.
ASYNC_ADVERSARIES = ("none", "passive", "silent", "noise")

#: Scheduler specs for asynchronous scenarios.
SCHEDULERS = ("fifo", "random", "split", "delay")


class ScenarioError(ValueError):
    """A scenario is malformed (as data, before any execution)."""


@dataclass(frozen=True)
class Scenario:
    """One resilience experiment, fully described by JSON-friendly data.

    ``t`` is the tolerance the *honest parties assume* (their protocol
    logic trims/waits according to it); ``corrupt`` is the set the
    adversary actually controls.  The two are deliberately independent:
    campaigns beyond the ``t < n/3`` threshold keep the parties' ``t``
    legal while handing the adversary a larger corrupted set, which is
    how the degradation experiments cross the impossibility line without
    touching protocol-layer guards.
    """

    #: One of :data:`PROTOCOLS`.
    protocol: str
    #: Party count.
    n: int
    #: Tolerance assumed by the honest parties (must keep ``n > 3t``).
    t: int
    #: Per-party inputs: floats for the real protocols, *vertex indices*
    #: into the tree's canonical vertex order for ``tree-aa`` (indices
    #: survive tree shrinking via modulo remapping).
    inputs: Tuple[Any, ...]
    #: Adversary spec: e.g. ``"chaos:7"``, ``"crash:2:1"``, ``"none"``.
    adversary: str = "none"
    #: Ids the adversary controls (may exceed ``t`` — see class docstring).
    corrupt: Tuple[int, ...] = ()
    #: CLI tree spec (``tree-aa`` only), e.g. ``"path:12"``.
    tree: Optional[str] = None
    #: ε for the real-valued protocols.
    epsilon: float = 0.5
    #: Public input-range bound; ``None`` derives it from ``inputs``.
    known_range: Optional[float] = None
    #: Scheduler spec (async only): e.g. ``"split:3"``, ``"random:5"``.
    scheduler: Optional[str] = None
    #: Optional :meth:`~repro.net.faults.FaultPlan.to_dict` payload.
    fault_plan: Optional[Dict[str, Any]] = None
    #: Optional chaos replay script (``(round, pid, behaviour)`` triples).
    chaos_script: Optional[Tuple[Tuple[int, int, str], ...]] = None
    #: Step budget for asynchronous executions.
    max_steps: int = 20_000
    #: Seed for seeded adversaries/schedulers that carry no explicit one.
    seed: int = 0

    def __post_init__(self) -> None:
        """Validate the scenario as *data* (no execution)."""
        if self.protocol not in PROTOCOLS:
            raise ScenarioError(f"unknown protocol {self.protocol!r}")
        if self.n < 1:
            raise ScenarioError(f"need n >= 1, got {self.n}")
        if len(self.inputs) != self.n:
            raise ScenarioError(
                f"need exactly n={self.n} inputs, got {len(self.inputs)}"
            )
        if not all(0 <= pid < self.n for pid in self.corrupt):
            raise ScenarioError(f"corrupt ids {self.corrupt} out of range")
        if len(set(self.corrupt)) != len(self.corrupt):
            raise ScenarioError(f"duplicate corrupt ids {self.corrupt}")
        if self.protocol == "tree-aa" and not self.tree:
            raise ScenarioError("tree-aa scenarios need a tree spec")
        kind = self.adversary.split(":")[0]
        menu = (
            ASYNC_ADVERSARIES
            if self.protocol.startswith("async")
            else SYNC_ADVERSARIES
        )
        if kind not in menu:
            raise ScenarioError(
                f"adversary {self.adversary!r} not available for "
                f"{self.protocol} scenarios"
            )
        if self.scheduler is not None:
            if self.scheduler.split(":")[0] not in SCHEDULERS:
                raise ScenarioError(f"unknown scheduler {self.scheduler!r}")

    # -- serialisation -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The JSON form (round-trips through :meth:`from_dict`)."""
        payload: Dict[str, Any] = {
            "protocol": self.protocol,
            "n": self.n,
            "t": self.t,
            "inputs": list(self.inputs),
            "adversary": self.adversary,
            "corrupt": list(self.corrupt),
            "epsilon": self.epsilon,
            "max_steps": self.max_steps,
            "seed": self.seed,
        }
        if self.tree is not None:
            payload["tree"] = self.tree
        if self.known_range is not None:
            payload["known_range"] = self.known_range
        if self.scheduler is not None:
            payload["scheduler"] = self.scheduler
        if self.fault_plan is not None:
            payload["fault_plan"] = dict(self.fault_plan)
        if self.chaos_script is not None:
            payload["chaos_script"] = [list(entry) for entry in self.chaos_script]
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Scenario":
        """Rebuild a scenario from its :meth:`to_dict` form."""
        script = payload.get("chaos_script")
        return cls(
            protocol=str(payload["protocol"]),
            n=int(payload["n"]),
            t=int(payload["t"]),
            inputs=tuple(payload["inputs"]),
            adversary=str(payload.get("adversary", "none")),
            corrupt=tuple(int(pid) for pid in payload.get("corrupt", ())),
            tree=payload.get("tree"),
            epsilon=float(payload.get("epsilon", 0.5)),
            known_range=payload.get("known_range"),
            scheduler=payload.get("scheduler"),
            fault_plan=payload.get("fault_plan"),
            chaos_script=(
                tuple((int(r), int(p), str(b)) for r, p, b in script)
                if script is not None
                else None
            ),
            max_steps=int(payload.get("max_steps", 20_000)),
            seed=int(payload.get("seed", 0)),
        )

    # -- derived quantities --------------------------------------------

    @property
    def assumed_t(self) -> int:
        """The tolerance the honest parties run with (``t``, unclamped)."""
        return self.t

    @property
    def network_budget(self) -> int:
        """The network's corruption budget: must cover the actual set."""
        return max(self.t, len(self.corrupt))

    @property
    def effective_known_range(self) -> float:
        """``known_range`` or the actual spread of the (real) inputs."""
        if self.known_range is not None:
            return float(self.known_range)
        values = [float(v) for v in self.inputs]
        return (max(values) - min(values)) if values else 0.0

    def cost(self) -> int:
        """The shrinker's size metric: strictly decreases per reduction."""
        total = 100 * self.n + 10 * len(self.corrupt)
        if self.tree is not None:
            total += _tree_spec_size(self.tree)
        if self.chaos_script is not None:
            total += len(self.chaos_script)
        if self.fault_plan is not None:
            plan = self.fault_plan
            for key in ("drop", "duplicate", "corrupt"):
                if float(plan.get(key, 0.0)) > 0.0:
                    total += 5
            last = plan.get("last_round")
            if last is not None:
                total += min(int(last), 50)
            else:
                total += 50
        return total

    # -- ScenarioSpec bridge -------------------------------------------

    def to_spec(self, *, backend: str = "reference") -> Any:
        """This scenario as a :class:`~repro.analysis.spec.ScenarioSpec`.

        The translation preserves execution semantics: the spec's ``t``
        is the scenario's :attr:`network_budget` and ``t_assumed`` is the
        parties' assumed tolerance, tree-aa vertex *indices* resolve to
        the concrete labels the executor would pick, and ``known_range``
        is pinned to :attr:`effective_known_range` so the real-valued
        round budget stays identical.  Asynchronous scenarios have no
        spec equivalent (:class:`ScenarioError`).
        """
        from ..analysis.spec import ScenarioSpec

        if self.protocol.startswith("async"):
            raise ScenarioError(
                f"{self.protocol} scenarios have no ScenarioSpec equivalent "
                "(specs describe the synchronous run_* entry points)"
            )
        inputs: Tuple[Any, ...] = self.inputs
        known_range: Optional[float] = self.known_range
        if self.protocol == "tree-aa":
            from ..cli import parse_tree_spec

            vertices = parse_tree_spec(self.tree or "").vertices
            inputs = tuple(
                vertices[int(index) % len(vertices)] for index in self.inputs
            )
        else:
            inputs = tuple(float(v) for v in self.inputs)
            known_range = self.effective_known_range
        return ScenarioSpec(
            protocol=self.protocol,
            n=self.n,
            t=self.network_budget,
            tree=self.tree,
            inputs=inputs,
            adversary=self.adversary,
            corrupt=self.corrupt,
            backend=backend,
            fault_plan=self.fault_plan,
            t_assumed=self.assumed_t,
            seed=self.seed,
            epsilon=self.epsilon,
            known_range=known_range,
            chaos_script=self.chaos_script,
        )

    @classmethod
    def from_spec(cls, spec: Any) -> "Scenario":
        """Build a scenario from a :class:`~repro.analysis.spec
        .ScenarioSpec` (the campaign-side entry of the bridge).

        The spec's derived inputs are materialised (tree-aa labels map
        back to vertex indices); ``path-aa`` specs have no resilience
        equivalent and raise :class:`ScenarioError`.
        """
        if spec.protocol not in ("real-aa", "tree-aa"):
            raise ScenarioError(
                f"{spec.protocol} specs have no Scenario equivalent"
            )
        inputs: Tuple[Any, ...]
        if spec.protocol == "tree-aa":
            tree = spec.build_tree()
            order = {label: index for index, label in enumerate(tree.vertices)}
            inputs = tuple(order[label] for label in spec.make_inputs(tree))
        else:
            inputs = tuple(float(v) for v in spec.make_inputs())
        return cls(
            protocol=spec.protocol,
            n=spec.n,
            t=spec.t if spec.t_assumed is None else spec.t_assumed,
            inputs=inputs,
            adversary=spec.adversary,
            corrupt=spec.corrupt,
            tree=spec.tree,
            epsilon=spec.epsilon,
            known_range=spec.known_range,
            fault_plan=spec.fault_plan,
            chaos_script=spec.chaos_script,
            seed=spec.seed,
        )


@dataclass
class ScenarioResult:
    """What happened when a scenario ran: outputs, verdict inputs, faults.

    Everything the invariant oracles need is here — including a captured
    unhandled exception, so a crashing execution is a *result* (for the
    ``no-exception`` oracle) rather than a crashed campaign.
    """

    scenario: Scenario
    honest_inputs: Dict[PartyId, Any] = field(default_factory=dict)
    honest_outputs: Dict[PartyId, Any] = field(default_factory=dict)
    #: Synchronous rounds executed, or asynchronous delivery steps.
    rounds: int = 0
    #: The bound the ``round-bound`` oracle checks ``rounds`` against.
    round_limit: Optional[int] = None
    #: Async completion (synchronous executions always complete).
    completed: bool = True
    #: One-line stall diagnosis for incomplete async runs.
    stall: Optional[str] = None
    #: ``"ExcType: message"`` plus final traceback line, if the run crashed.
    error: Optional[str] = None
    #: The chaos adversary's behaviour log (the shrinker scripts from it).
    chaos_log: List[Tuple[int, int, str]] = field(default_factory=list)
    #: Fault-injection counters (all zero without a fault plan).
    fault_counts: Dict[str, int] = field(default_factory=dict)
    #: The reconstructed tree (``tree-aa`` only; oracles need it).
    tree_obj: Any = None


def _tree_spec_size(spec: str) -> int:
    """A monotone size estimate of a CLI tree spec (for :meth:`cost`)."""
    digits = [int(part) for part in spec.replace("x", ":").split(":")[1:] if part.isdigit()]
    if not digits:
        return 10
    total = 1
    for value in digits:
        total *= max(1, value)
    return min(total, 10_000)


def build_adversary(scenario: Scenario) -> Optional[Any]:
    """Instantiate the scenario's adversary (``None`` for fault-free)."""
    parts = scenario.adversary.split(":")
    kind = parts[0]
    args = [int(p) for p in parts[1:]]
    corrupt: Optional[Sequence[int]] = scenario.corrupt or None
    if scenario.protocol.startswith("async"):
        from ..asynchrony import (
            AsyncNoiseAdversary,
            AsyncPassiveAdversary,
            AsyncSilentAdversary,
        )

        if kind == "none":
            return None
        if kind == "passive":
            return AsyncPassiveAdversary(corrupt=corrupt)
        if kind == "silent":
            return AsyncSilentAdversary(corrupt=corrupt)
        if kind == "noise":
            seed = args[0] if args else scenario.seed
            return AsyncNoiseAdversary(seed=seed, corrupt=corrupt)
        raise ScenarioError(f"unknown async adversary {scenario.adversary!r}")
    # The synchronous menu is a subset of the shared spec-layer grammar;
    # delegating keeps Scenario, ScenarioSpec, and the CLI agreeing on
    # what every adversary string means (defaults included).
    from ..analysis.spec import SpecError
    from ..analysis.spec import build_adversary as build_sync_adversary

    try:
        return build_sync_adversary(
            scenario.adversary,
            t=scenario.network_budget,
            corrupt=corrupt,
            seed=scenario.seed,
            chaos_script=scenario.chaos_script,
        )
    except SpecError as exc:
        raise ScenarioError(str(exc)) from None


def build_scheduler(scenario: Scenario) -> Optional[Any]:
    """Instantiate the scenario's async scheduler (``None`` = FIFO)."""
    if scenario.scheduler is None:
        return None
    from ..asynchrony import (
        DelaySendersScheduler,
        FIFOScheduler,
        RandomScheduler,
        SplitScheduler,
    )

    parts = scenario.scheduler.split(":")
    kind = parts[0]
    arg = int(parts[1]) if len(parts) > 1 else None
    if kind == "fifo":
        return FIFOScheduler()
    if kind == "random":
        return RandomScheduler(arg if arg is not None else scenario.seed)
    if kind == "split":
        k = arg if arg is not None else max(1, scenario.n // 2)
        return SplitScheduler(group_a=list(range(min(k, scenario.n))))
    if kind == "delay":
        k = arg if arg is not None else 1
        return DelaySendersScheduler(list(range(min(k, scenario.n))))
    raise ScenarioError(f"unknown scheduler {scenario.scheduler!r}")


def _fault_plan_of(scenario: Scenario) -> Optional[FaultPlan]:
    """The scenario's deserialised fault plan, if any."""
    if scenario.fault_plan is None:
        return None
    return FaultPlan.from_dict(scenario.fault_plan)


def _capture_error(exc: BaseException) -> str:
    """``"ExcType: message @ file:line"`` for the result's error field."""
    frames = traceback.extract_tb(exc.__traceback__)
    location = ""
    if frames:
        last = frames[-1]
        location = f" @ {last.filename.rsplit('/', 1)[-1]}:{last.lineno}"
    return f"{type(exc).__name__}: {exc}{location}"


def _execute_real_aa(
    scenario: Scenario, result: ScenarioResult, backend: str = "reference"
) -> None:
    """Run a synchronous RealAA scenario into ``result``."""
    from ..core.api import run_real_aa
    from ..protocols.rounds import realaa_duration

    adversary = build_adversary(scenario)
    known_range = scenario.effective_known_range
    outcome = run_real_aa(
        [float(v) for v in scenario.inputs],
        scenario.network_budget,
        epsilon=scenario.epsilon,
        known_range=known_range,
        adversary=adversary,
        fault_plan=_fault_plan_of(scenario),
        t_assumed=scenario.assumed_t,
        backend=backend,
    )
    result.honest_inputs = dict(outcome.honest_inputs)
    result.honest_outputs = dict(outcome.honest_outputs)
    result.rounds = outcome.rounds
    result.round_limit = realaa_duration(
        max(known_range, scenario.epsilon),
        scenario.epsilon,
        scenario.n,
        scenario.assumed_t,
    )
    _collect_sync_extras(result, outcome.execution, adversary)


def _execute_tree_aa(
    scenario: Scenario, result: ScenarioResult, backend: str = "reference"
) -> None:
    """Run a synchronous TreeAA scenario into ``result``."""
    from ..cli import parse_tree_spec
    from ..core.api import run_tree_aa
    from ..protocols.rounds import tree_aa_round_bound
    from ..trees.paths import diameter

    tree = parse_tree_spec(scenario.tree or "")
    result.tree_obj = tree
    vertices = tree.vertices
    inputs = [vertices[int(index) % len(vertices)] for index in scenario.inputs]
    adversary = build_adversary(scenario)
    outcome = run_tree_aa(
        tree,
        inputs,
        scenario.network_budget,
        adversary=adversary,
        fault_plan=_fault_plan_of(scenario),
        t_assumed=scenario.assumed_t,
        backend=backend,
    )
    result.honest_inputs = dict(outcome.honest_inputs)
    result.honest_outputs = dict(outcome.honest_outputs)
    result.rounds = outcome.rounds
    result.round_limit = tree_aa_round_bound(tree.n_vertices, diameter(tree))
    _collect_sync_extras(result, outcome.execution, adversary)


def _execute_async_real_aa(
    scenario: Scenario, result: ScenarioResult, backend: str = "reference"
) -> None:
    """Run an asynchronous iterated RealAA scenario into ``result``."""
    from ..asynchrony import AsyncRealAAParty, run_async_protocol

    if backend != "reference":
        raise UnsupportedBackendError(
            "async-real-aa scenarios have no batch equivalent; "
            "use backend='reference'"
        )

    adversary = build_adversary(scenario)
    known_range = scenario.effective_known_range
    t_assumed = scenario.assumed_t
    execution = run_async_protocol(
        scenario.n,
        scenario.network_budget,
        lambda pid: AsyncRealAAParty(
            pid,
            scenario.n,
            t_assumed,
            float(scenario.inputs[pid]),
            epsilon=scenario.epsilon,
            known_range=max(known_range, scenario.epsilon),
        ),
        adversary=adversary,
        scheduler=build_scheduler(scenario),
        max_steps=scenario.max_steps,
        fault_plan=_fault_plan_of(scenario),
    )
    result.honest_inputs = {
        pid: float(scenario.inputs[pid]) for pid in sorted(execution.honest)
    }
    result.honest_outputs = dict(execution.honest_outputs)
    result.rounds = execution.trace.steps
    result.round_limit = scenario.max_steps
    result.completed = execution.completed
    if execution.stall is not None:
        result.stall = execution.stall.summary()
    result.fault_counts = {
        "dropped": execution.trace.faults_dropped,
        "duplicated": execution.trace.faults_duplicated,
        "corrupted": execution.trace.faults_corrupted,
    }


def _collect_sync_extras(
    result: ScenarioResult, execution: Any, adversary: Optional[Any]
) -> None:
    """Copy fault counters and chaos logs out of a finished sync run."""
    result.fault_counts = {
        "dropped": execution.trace.faults_dropped,
        "duplicated": execution.trace.faults_duplicated,
        "corrupted": execution.trace.faults_corrupted,
    }
    log = getattr(adversary, "log", None)
    if log is not None:
        result.chaos_log = [tuple(entry) for entry in log]


def execute_scenario(
    scenario: Scenario, backend: str = "reference"
) -> ScenarioResult:
    """Interpret a scenario; capture any unhandled exception as data.

    The only exceptions that escape are :class:`ScenarioError` (malformed
    data — a bug in the caller, not an execution outcome) and
    :class:`~repro.engine.errors.UnsupportedBackendError` (the chosen
    *backend* cannot replay this scenario at all — a dispatch problem,
    not an execution outcome).
    """
    result = ScenarioResult(scenario=scenario)
    runners = {
        "real-aa": _execute_real_aa,
        "tree-aa": _execute_tree_aa,
        "async-real-aa": _execute_async_real_aa,
    }
    try:
        runners[scenario.protocol](scenario, result, backend=backend)
    except (ScenarioError, UnsupportedBackendError):
        raise
    except Exception as exc:  # noqa: BLE001 - captured for the oracle
        result.error = _capture_error(exc)
        result.completed = False
    return result


def with_fresh_seed(scenario: Scenario, seed: int) -> Scenario:
    """The same scenario under a different RNG seed (campaign helper)."""
    return replace(scenario, seed=seed)
