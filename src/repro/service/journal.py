"""Crash-safe job journal: the service's write-ahead log.

A service with a data directory appends every job submission and every
*terminal* state transition (per point and per job) to one append-only
JSONL file, ``journal.jsonl``.  On startup the next service process
replays that file: jobs that never reached a terminal state are
re-registered and re-queued (:meth:`repro.service.session.ScenarioService
.start`), with already-finished points deduped through the sweep cache
and journaled ``failed``/``cancelled`` points restored as-is.  A crash —
``kill -9``, OOM, power loss — therefore loses at most the points that
were mid-flight, never a whole job.

Record shapes (one JSON object per line)::

    {"type": "journal_header", "schema_version": 1}
    {"type": "job_submitted", "job_id": "job-0001", "specs": [ ... ]}
    {"type": "point_terminal", "job_id": "job-0001", "index": 3,
     "status": "done"}                       # + "error" for failures
    {"type": "job_terminal", "job_id": "job-0001", "status": "done"}

The reader is tolerant by construction: a line torn by a crash (the
append was mid-write) fails to parse and is skipped, which loses one
transition, not the journal.  :func:`compact_journal` rewrites the file
atomically on recovery, dropping every record that belongs to a job
already in a terminal state, so the journal's size is bounded by the
live work, not the service's history.

Nothing here imports from the rest of the service package — the journal
is a leaf the :class:`~repro.service.jobs.JobStore` and the session
layer both sit on.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: File name of the journal inside the service's data directory.
JOURNAL_NAME = "journal.jsonl"

#: Schema version of the journal records.
JOURNAL_SCHEMA_VERSION = 1


def journal_path(data_dir: str) -> str:
    """Where the journal of a service over *data_dir* lives."""
    return os.path.join(data_dir, JOURNAL_NAME)


def iter_jsonl_tolerant(path: str) -> Iterator[Dict[str, Any]]:
    """Yield every parseable JSON-object line of *path*.

    Unreadable files yield nothing; lines that fail to parse (a torn
    tail after a crash, stray garbage) are skipped rather than raised —
    recovery must work on exactly the files a crash leaves behind.
    """
    try:
        handle = open(path)
    except OSError:
        return
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                yield record


class JobJournal:
    """Append-only writer for the service's job journal.

    Thread-safe: the worker thread journals point/job transitions while
    HTTP handler threads journal submissions.  Appends are flushed per
    record (a killed *process* loses nothing flushed; pass
    ``fsync=True`` to survive a killed *machine* at the cost of one
    ``fsync`` per record).
    """

    def __init__(self, path: str, *, fsync: bool = False) -> None:
        self.path = path
        self.fsync = fsync
        self._journal_lock = threading.Lock()
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        fresh = not os.path.exists(path)
        self._handle: Optional[Any] = open(  # statics: guarded-by(_journal_lock)
            path, "a", encoding="utf-8"
        )
        if fresh:
            self._append(
                {
                    "type": "journal_header",
                    "schema_version": JOURNAL_SCHEMA_VERSION,
                }
            )

    def _append(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._journal_lock:
            if self._handle is None:
                return
            self._handle.write(line)
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())

    def record_submitted(
        self, job_id: str, specs: List[Dict[str, Any]]
    ) -> None:
        """Journal a new job before it is queued for execution."""
        self._append(
            {"type": "job_submitted", "job_id": job_id, "specs": specs}
        )

    def record_point(
        self, job_id: str, index: int, status: str, error: Optional[str] = None
    ) -> None:
        """Journal one point reaching a terminal state."""
        record: Dict[str, Any] = {
            "type": "point_terminal",
            "job_id": job_id,
            "index": index,
            "status": status,
        }
        if error is not None:
            record["error"] = error
        self._append(record)

    def record_job(self, job_id: str, status: str) -> None:
        """Journal a job reaching a terminal state."""
        self._append(
            {"type": "job_terminal", "job_id": job_id, "status": status}
        )

    def close(self) -> None:
        """Flush and close the journal file (idempotent)."""
        with self._journal_lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


@dataclass
class JournaledJob:
    """One job reconstructed from the journal."""

    job_id: str
    #: The submitted specs, as their JSON dicts (validated on recovery).
    specs: List[Dict[str, Any]] = field(default_factory=list)
    #: ``index -> (status, error)`` for journaled terminal points (the
    #: *last* journaled record per index wins, so a recovered-and-re-run
    #: point's fresh outcome supersedes the pre-crash one).
    point_states: Dict[int, Tuple[str, Optional[str]]] = field(
        default_factory=dict
    )
    #: The job's journaled terminal status, or ``None`` if it never
    #: reached one — i.e. the job a restart must resume.
    terminal_status: Optional[str] = None


def replay_journal(path: str) -> "Dict[str, JournaledJob]":
    """Fold the journal at *path* into per-job state, submission order.

    Records for jobs whose submission line was lost (torn tail) are
    dropped: a job the journal cannot re-plan cannot be recovered.
    """
    jobs: Dict[str, JournaledJob] = {}
    for record in iter_jsonl_tolerant(path):
        kind = record.get("type")
        job_id = record.get("job_id")
        if kind == "job_submitted" and isinstance(job_id, str):
            specs = record.get("specs")
            if isinstance(specs, list):
                jobs[job_id] = JournaledJob(job_id=job_id, specs=specs)
        elif kind == "point_terminal" and job_id in jobs:
            index = record.get("index")
            state = record.get("status")
            if isinstance(index, int) and isinstance(state, str):
                jobs[job_id].point_states[index] = (
                    state,
                    record.get("error"),
                )
        elif kind == "job_terminal" and job_id in jobs:
            state = record.get("status")
            if isinstance(state, str):
                jobs[job_id].terminal_status = state
    return jobs


def recoverable_jobs(path: str) -> List[JournaledJob]:
    """The journaled jobs a restarted service must resume, in order."""
    return [
        job
        for job in replay_journal(path).values()
        if job.terminal_status is None
    ]


def compact_journal(path: str) -> int:
    """Atomically drop every record of already-terminal jobs.

    Returns the number of jobs whose records were dropped.  Called on
    recovery, before the journal is reopened for appending, so the file
    grows with the amount of *live* work, not with service history.
    """
    if not os.path.exists(path):
        return 0  # nothing journaled yet; JobJournal creates the file
    jobs = replay_journal(path)
    keep = {
        job_id
        for job_id, job in jobs.items()
        if job.terminal_status is None
    }
    dropped = len(jobs) - len(keep)
    if dropped == 0:
        return 0
    records: List[Dict[str, Any]] = [
        {"type": "journal_header", "schema_version": JOURNAL_SCHEMA_VERSION}
    ]
    for record in iter_jsonl_tolerant(path):
        if record.get("type") == "journal_header":
            continue
        if record.get("job_id") in keep:
            records.append(record)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    os.replace(tmp, path)
    return dropped
