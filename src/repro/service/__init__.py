"""Sweep-as-a-service: a long-running scenario server over HTTP.

The service turns the batch pipeline (spec → engine → cache → JSONL →
report) into a persistent process: clients POST grids of
:class:`~repro.analysis.spec.ScenarioSpec` points, a worker loop shards
them across the process pool with the sweep engine's deterministic
seeding, the version/backend-keyed sweep cache dedupes repeat points,
and the HTTP surface streams per-point progress and serves
query/diff/report endpoints over the accumulated results — reusing
``load_run``/``diff_runs``/``render_report`` rather than reimplementing
them.

The service is built to be killed: submissions and terminal transitions
are journaled (:mod:`repro.service.journal`), restarts resume
unfinished jobs with cache-deduped points, a crashing point is
quarantined with bounded retry instead of wedging the drain thread
(``done_with_errors``), overload sheds load with 429 + ``Retry-After``
while ``/healthz`` stays green, and ``POST /jobs/<id>/cancel`` stops a
running grid between points.  :mod:`repro.service.chaos` is the harness
that proves all of this under injected faults.

Layers (one module each, composable without HTTP):

* :mod:`repro.service.jobs` — job/point state machine + event log;
* :mod:`repro.service.journal` — crash-safe write-ahead job journal;
* :mod:`repro.service.planner` — payload → seeded ScenarioSpecs;
* :mod:`repro.service.worker` — the cache-aware execution thread
  (retry/backoff, pool self-healing, cancellation);
* :mod:`repro.service.http_api` — the stdlib ``http.server`` routes;
* :mod:`repro.service.session` — configuration, lifecycle, recovery;
* :mod:`repro.service.client` — the ``urllib`` client the CLI uses;
* :mod:`repro.service.chaos` — fault injection + invariant suite.

Everything is standard library; see ``docs/SERVICE.md`` for the
endpoint walkthrough and failure-mode runbook, and
``docs/ARCHITECTURE.md`` for how the service fits the rest of the
codebase.
"""

from .client import TERMINAL_STATES, ServiceClient, ServiceClientError
from .jobs import (
    TERMINAL_JOB_STATES,
    TERMINAL_POINT_STATES,
    Job,
    JobStore,
    PointState,
)
from .journal import JobJournal, JournaledJob, recoverable_jobs, replay_journal
from .planner import MAX_POINTS, PlanError, plan_points, specs_from_dicts
from .session import ScenarioService, ServiceConfig
from .worker import RetryPolicy, ServiceOverloadedError, Worker

__all__ = [
    "ScenarioService",
    "ServiceConfig",
    "ServiceClient",
    "ServiceClientError",
    "ServiceOverloadedError",
    "TERMINAL_STATES",
    "TERMINAL_JOB_STATES",
    "TERMINAL_POINT_STATES",
    "Job",
    "JobStore",
    "JobJournal",
    "JournaledJob",
    "PointState",
    "PlanError",
    "plan_points",
    "specs_from_dicts",
    "recoverable_jobs",
    "replay_journal",
    "MAX_POINTS",
    "RetryPolicy",
    "Worker",
]
