"""Sweep-as-a-service: a long-running scenario server over HTTP.

The service turns the batch pipeline (spec → engine → cache → JSONL →
report) into a persistent process: clients POST grids of
:class:`~repro.analysis.spec.ScenarioSpec` points, a worker loop shards
them across the process pool with the sweep engine's deterministic
seeding, the version/backend-keyed sweep cache dedupes repeat points,
and the HTTP surface streams per-point progress and serves
query/diff/report endpoints over the accumulated results — reusing
``load_run``/``diff_runs``/``render_report`` rather than reimplementing
them.

Layers (one module each, composable without HTTP):

* :mod:`repro.service.jobs` — job/point state machine + event log;
* :mod:`repro.service.planner` — payload → seeded ScenarioSpecs;
* :mod:`repro.service.worker` — the cache-aware execution thread;
* :mod:`repro.service.http_api` — the stdlib ``http.server`` routes;
* :mod:`repro.service.session` — configuration and lifecycle;
* :mod:`repro.service.client` — the ``urllib`` client the CLI uses.

Everything is standard library; see ``docs/SERVICE.md`` for the
endpoint walkthrough and ``docs/ARCHITECTURE.md`` for how the service
fits the rest of the codebase.
"""

from .client import ServiceClient, ServiceClientError
from .jobs import Job, JobStore, PointState
from .planner import MAX_POINTS, PlanError, plan_points
from .session import ScenarioService, ServiceConfig
from .worker import Worker

__all__ = [
    "ScenarioService",
    "ServiceConfig",
    "ServiceClient",
    "ServiceClientError",
    "Job",
    "JobStore",
    "PointState",
    "PlanError",
    "plan_points",
    "MAX_POINTS",
    "Worker",
]
