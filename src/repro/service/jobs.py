"""Job and point bookkeeping for the scenario service.

A *job* is one submitted grid of :class:`~repro.analysis.spec
.ScenarioSpec` points.  The store tracks per-point status through the
lifecycle ``pending → running → (cached | done | failed | cancelled)``
and keeps an append-only, sequence-numbered event log per job — the
NDJSON tail the HTTP layer streams to pollers.  Everything here is
thread-safe: the HTTP handler threads read while the worker thread
writes.

The concurrency contract is explicit and machine-checked (PL101, see
``docs/STATIC_ANALYSIS.md``): every mutable field shared between the
worker and handler threads carries a ``# statics: guarded-by(_lock)``
declaration, all mutation goes through :class:`JobStore` methods that
take the lock, and the read side gets *snapshot* methods
(:meth:`JobStore.summary`, :meth:`JobStore.point_records`, ...) so no
caller ever walks ``job.points`` while the worker is writing to it.
Methods documented as lock-held are marked ``# statics: holds(_lock)``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..analysis.spec import ScenarioSpec
from .journal import JobJournal

#: Point lifecycle states.
POINT_STATES = ("pending", "running", "cached", "done", "failed", "cancelled")

#: Job lifecycle states (``done_with_errors``: every point terminal, at
#: least one ``failed``, the rest completed — the job *finished*, with
#: quarantined casualties).
JOB_STATES = (
    "queued",
    "running",
    "done",
    "done_with_errors",
    "failed",
    "cancelled",
)

#: Point states that count as finished work.
TERMINAL_POINT_STATES = ("cached", "done", "failed", "cancelled")

#: Job states no further transition may leave (what pollers wait for and
#: what the journal treats as "this job needs no recovery").
TERMINAL_JOB_STATES = ("done", "done_with_errors", "failed", "cancelled")


@dataclass
class PointState:
    """One grid point of a job: its spec, status, and result row."""

    index: int
    spec: ScenarioSpec
    status: str = "pending"  # statics: guarded-by(_lock)
    #: The runner's JSON result row (set for ``cached``/``done``).
    row: Optional[Dict[str, Any]] = None  # statics: guarded-by(_lock)
    #: One-line failure reason (set for ``failed``).
    error: Optional[str] = None  # statics: guarded-by(_lock)

    def summary(self) -> Dict[str, Any]:  # statics: holds(_lock)
        """The JSON shape the status endpoint serves for this point.

        Caller must hold the owning :class:`JobStore` lock."""
        info: Dict[str, Any] = {
            "index": self.index,
            "status": self.status,
            "protocol": self.spec.protocol,
            "n": self.spec.n,
            "t": self.spec.t,
            "backend": self.spec.backend,
            "adversary": self.spec.adversary,
            "seed": self.spec.seed,
        }
        if self.row is not None:
            info["ok"] = self.row.get("ok")
            info["rounds"] = self.row.get("rounds")
        if self.error is not None:
            info["error"] = self.error
        return info


@dataclass
class Job:
    """One submitted scenario grid and its execution state."""

    job_id: str
    points: List[PointState]
    status: str = "queued"  # statics: guarded-by(_lock)
    #: Append-only event log (each entry carries a monotone ``"seq"``).
    events: List[Dict[str, Any]] = field(default_factory=list)  # statics: guarded-by(_lock)
    #: Set by the worker when the finished job's rows were persisted.
    results_path: Optional[str] = None  # statics: guarded-by(_lock)
    #: Set by ``POST /jobs/<id>/cancel``; the worker polls it between
    #: points and turns it into ``cancelled`` point/job transitions.
    cancel_requested: bool = False  # statics: guarded-by(_lock)

    def counts(self) -> Dict[str, int]:  # statics: holds(_lock)
        """Point totals by status (the dedupe ratio falls out of these).

        Caller must hold the owning :class:`JobStore` lock."""
        counts = {state: 0 for state in POINT_STATES}
        for point in self.points:
            counts[point.status] += 1
        return counts

    def finished(self) -> bool:  # statics: holds(_lock)
        """True once every point reached a terminal state.

        Caller must hold the owning :class:`JobStore` lock."""
        return all(p.status in TERMINAL_POINT_STATES for p in self.points)

    def summary(self) -> Dict[str, Any]:  # statics: holds(_lock)
        """The JSON shape of ``GET /jobs/<id>``.

        Caller must hold the owning :class:`JobStore` lock (the HTTP
        layer goes through :meth:`JobStore.summary`)."""
        return {
            "job_id": self.job_id,
            "status": self.status,
            "points": [point.summary() for point in self.points],
            "counts": self.counts(),
            "events": len(self.events),
            "results_path": self.results_path,
            "cancel_requested": self.cancel_requested,
        }


class JobStore:
    """Thread-safe registry of jobs with sequential ids and event logs.

    When constructed with a :class:`~repro.service.journal.JobJournal`,
    submissions and terminal transitions are journaled as a side effect
    of the normal transition methods — callers never talk to the journal
    directly, so no state change can forget its journal record.  Journal
    appends happen *outside* ``_lock`` (the journal has its own lock and
    the two are never nested, so there is no ordering question).
    """

    def __init__(self, journal: Optional[JobJournal] = None) -> None:
        self._lock = threading.Lock()
        self._journal = journal
        self._jobs: Dict[str, Job] = {}  # statics: guarded-by(_lock)
        self._next_id = 1  # statics: guarded-by(_lock)

    def create(self, specs: List[ScenarioSpec]) -> Job:
        """Register a new queued job over *specs* (in submission order)."""
        with self._lock:
            job_id = f"job-{self._next_id:04d}"
            self._next_id += 1
            job = Job(
                job_id=job_id,
                points=[
                    PointState(index=index, spec=spec)
                    for index, spec in enumerate(specs)
                ],
            )
            self._jobs[job_id] = job
        if self._journal is not None:
            self._journal.record_submitted(
                job_id, [spec.to_dict() for spec in specs]
            )
        self.log_event(job, "job_queued", points=len(job.points))
        return job

    def restore(
        self,
        job_id: str,
        specs: List[ScenarioSpec],
        point_states: Dict[int, Tuple[str, Optional[str]]],
    ) -> Job:
        """Re-register a journaled job under its original id.

        Journaled ``failed``/``cancelled`` points are restored as-is
        (their work is spent either way); journaled ``done``/``cached``
        points come back as ``pending`` — the worker's cache scan
        re-serves them without recomputation when the sweep cache still
        holds their rows.  Nothing is re-journaled: the journal already
        carries these records (compaction preserves non-terminal jobs).
        """
        points = []
        for index, spec in enumerate(specs):
            state = point_states.get(index)
            if state is not None and state[0] in ("failed", "cancelled"):
                point = PointState(
                    index=index, spec=spec, status=state[0], error=state[1]
                )
            else:
                point = PointState(index=index, spec=spec)
            points.append(point)
        job = Job(job_id=job_id, points=points)
        with self._lock:
            self._jobs[job_id] = job
            suffix = job_id.rsplit("-", 1)[-1]
            if suffix.isdigit():
                self._next_id = max(self._next_id, int(suffix) + 1)
        self.log_event(job, "job_recovered", points=len(points))
        return job

    def get(self, job_id: str) -> Optional[Job]:
        """The job called *job_id*, or ``None``."""
        with self._lock:
            return self._jobs.get(job_id)

    def all_jobs(self) -> List[Job]:
        """Every job, in creation order."""
        with self._lock:
            return list(self._jobs.values())

    def log_event(self, job: Job, kind: str, **payload: Any) -> None:
        """Append one sequence-numbered event to *job*'s log."""
        with self._lock:
            job.events.append({"seq": len(job.events), "event": kind, **payload})

    def set_job_status(self, job: Job, status: str) -> None:
        """Transition *job*, log the transition, journal it if terminal."""
        with self._lock:
            job.status = status
        if self._journal is not None and status in TERMINAL_JOB_STATES:
            self._journal.record_job(job.job_id, status)
        self.log_event(job, "job_status", status=status)

    def set_point_status(
        self,
        job: Job,
        index: int,
        status: str,
        *,
        row: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
    ) -> None:
        """Transition one point, log it, and journal terminal states."""
        with self._lock:
            point = job.points[index]
            point.status = status
            if row is not None:
                point.row = row
            if error is not None:
                point.error = error
        if self._journal is not None and status in TERMINAL_POINT_STATES:
            self._journal.record_point(job.job_id, index, status, error)
        event: Dict[str, Any] = {"index": index, "status": status}
        if error is not None:
            event["error"] = error
        self.log_event(job, "point_status", **event)

    def request_cancel(self, job: Job) -> bool:
        """Ask for *job* to be cancelled; returns False once terminal.

        Setting the flag is all that happens here: the worker thread
        polls it between points (and on dequeue) and performs the actual
        ``cancelled`` transitions, so there is exactly one writer of
        point state.
        """
        with self._lock:
            if job.status in TERMINAL_JOB_STATES:
                return False
            job.cancel_requested = True
        self.log_event(job, "cancel_requested")
        return True

    def is_cancel_requested(self, job: Job) -> bool:
        """Whether a cancel was requested for *job* (snapshot)."""
        with self._lock:
            return job.cancel_requested

    def events_since(self, job: Job, since: int) -> List[Dict[str, Any]]:
        """Events of *job* with ``seq >= since`` (the NDJSON tail)."""
        with self._lock:
            return [event for event in job.events if event["seq"] >= since]

    # -- snapshots ------------------------------------------------------
    #
    # The read side of the store: every method takes the lock once and
    # returns plain data, so HTTP handler threads never iterate
    # ``job.points`` while the worker thread mutates it.

    def summary(self, job: Job) -> Dict[str, Any]:
        """A consistent ``GET /jobs/<id>`` snapshot of *job*."""
        with self._lock:
            return job.summary()

    def index(self) -> List[Dict[str, Any]]:
        """The ``GET /jobs`` listing: id, status, counts per job."""
        with self._lock:
            return [
                {
                    "job_id": job.job_id,
                    "status": job.status,
                    "counts": job.counts(),
                }
                for job in self._jobs.values()
            ]

    def counts(self, job: Job) -> Dict[str, int]:
        """A consistent point-status count snapshot of *job*."""
        with self._lock:
            return job.counts()

    def job_status(self, job: Job) -> str:
        """The current lifecycle state of *job*."""
        with self._lock:
            return job.status

    def pending_indices(self, job: Job) -> List[int]:
        """Indices of *job*'s points still ``pending``, in order."""
        with self._lock:
            return [p.index for p in job.points if p.status == "pending"]

    def any_point_in(self, job: Job, statuses: Sequence[str]) -> bool:
        """Whether any point of *job* is in one of *statuses*."""
        with self._lock:
            return any(p.status in statuses for p in job.points)

    def point_row(self, job: Job, index: int) -> Optional[Dict[str, Any]]:
        """The result row of one point (``IndexError`` on a bad index)."""
        with self._lock:
            return job.points[index].row

    def result_rows(self, job: Job) -> List[Dict[str, Any]]:
        """Every point's row in point order (``{}`` for missing rows)."""
        with self._lock:
            return [point.row or {} for point in job.points]

    def row_snapshots(self, job: Job) -> List[Tuple[int, Dict[str, Any]]]:
        """``(index, row)`` for every point of *job* that has a row."""
        with self._lock:
            return [
                (point.index, point.row)
                for point in job.points
                if point.row is not None
            ]

    def point_records(self, job: Job) -> List[Dict[str, Any]]:
        """The ``GET /jobs/<id>/results`` NDJSON records, in point order."""
        with self._lock:
            return [
                {
                    "type": "point",
                    "index": p.index,
                    "params": p.spec.to_dict(),
                    "seed": p.spec.seed,
                    "row": p.row,
                    "status": p.status,
                }
                for p in job.points
            ]

    def cancel_active(self, job: Job) -> List[int]:
        """Cancel every ``pending``/``running`` point of *job*.

        Collects the indices under the lock, then transitions them via
        :meth:`set_point_status` *outside* it — the lock is not
        reentrant and each transition logs an event.  Returns the
        cancelled indices.
        """
        with self._lock:
            active = [
                p.index for p in job.points if p.status in ("pending", "running")
            ]
        for index in active:
            self.set_point_status(job, index, "cancelled")
        return active

    def set_results_path(self, job: Job, path: str) -> None:
        """Record where *job*'s finished rows were persisted."""
        with self._lock:
            job.results_path = path
