"""Job and point bookkeeping for the scenario service.

A *job* is one submitted grid of :class:`~repro.analysis.spec
.ScenarioSpec` points.  The store tracks per-point status through the
lifecycle ``pending → running → (cached | done | failed | cancelled)``
and keeps an append-only, sequence-numbered event log per job — the
NDJSON tail the HTTP layer streams to pollers.  Everything here is
thread-safe: the HTTP handler threads read while the worker thread
writes.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..analysis.spec import ScenarioSpec

#: Point lifecycle states.
POINT_STATES = ("pending", "running", "cached", "done", "failed", "cancelled")

#: Job lifecycle states.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: Point states that count as finished work.
TERMINAL_POINT_STATES = ("cached", "done", "failed", "cancelled")


@dataclass
class PointState:
    """One grid point of a job: its spec, status, and result row."""

    index: int
    spec: ScenarioSpec
    status: str = "pending"
    #: The runner's JSON result row (set for ``cached``/``done``).
    row: Optional[Dict[str, Any]] = None
    #: One-line failure reason (set for ``failed``).
    error: Optional[str] = None

    def summary(self) -> Dict[str, Any]:
        """The JSON shape the status endpoint serves for this point."""
        info: Dict[str, Any] = {
            "index": self.index,
            "status": self.status,
            "protocol": self.spec.protocol,
            "n": self.spec.n,
            "t": self.spec.t,
            "backend": self.spec.backend,
            "adversary": self.spec.adversary,
            "seed": self.spec.seed,
        }
        if self.row is not None:
            info["ok"] = self.row.get("ok")
            info["rounds"] = self.row.get("rounds")
        if self.error is not None:
            info["error"] = self.error
        return info


@dataclass
class Job:
    """One submitted scenario grid and its execution state."""

    job_id: str
    points: List[PointState]
    status: str = "queued"
    #: Append-only event log (each entry carries a monotone ``"seq"``).
    events: List[Dict[str, Any]] = field(default_factory=list)
    #: Set by the worker when the finished job's rows were persisted.
    results_path: Optional[str] = None

    def counts(self) -> Dict[str, int]:
        """Point totals by status (the dedupe ratio falls out of these)."""
        counts = {state: 0 for state in POINT_STATES}
        for point in self.points:
            counts[point.status] += 1
        return counts

    def finished(self) -> bool:
        """True once every point reached a terminal state."""
        return all(p.status in TERMINAL_POINT_STATES for p in self.points)

    def summary(self) -> Dict[str, Any]:
        """The JSON shape of ``GET /jobs/<id>``."""
        return {
            "job_id": self.job_id,
            "status": self.status,
            "points": [point.summary() for point in self.points],
            "counts": self.counts(),
            "events": len(self.events),
            "results_path": self.results_path,
        }


class JobStore:
    """Thread-safe registry of jobs with sequential ids and event logs."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._next_id = 1

    def create(self, specs: List[ScenarioSpec]) -> Job:
        """Register a new queued job over *specs* (in submission order)."""
        with self._lock:
            job_id = f"job-{self._next_id:04d}"
            self._next_id += 1
            job = Job(
                job_id=job_id,
                points=[
                    PointState(index=index, spec=spec)
                    for index, spec in enumerate(specs)
                ],
            )
            self._jobs[job_id] = job
        self.log_event(job, "job_queued", points=len(job.points))
        return job

    def get(self, job_id: str) -> Optional[Job]:
        """The job called *job_id*, or ``None``."""
        with self._lock:
            return self._jobs.get(job_id)

    def all_jobs(self) -> List[Job]:
        """Every job, in creation order."""
        with self._lock:
            return list(self._jobs.values())

    def log_event(self, job: Job, kind: str, **payload: Any) -> None:
        """Append one sequence-numbered event to *job*'s log."""
        with self._lock:
            job.events.append({"seq": len(job.events), "event": kind, **payload})

    def set_job_status(self, job: Job, status: str) -> None:
        """Transition *job* and log the transition."""
        with self._lock:
            job.status = status
        self.log_event(job, "job_status", status=status)

    def set_point_status(
        self,
        job: Job,
        index: int,
        status: str,
        *,
        row: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
    ) -> None:
        """Transition one point and log the transition."""
        with self._lock:
            point = job.points[index]
            point.status = status
            if row is not None:
                point.row = row
            if error is not None:
                point.error = error
        event: Dict[str, Any] = {"index": index, "status": status}
        if error is not None:
            event["error"] = error
        self.log_event(job, "point_status", **event)

    def events_since(self, job: Job, since: int) -> List[Dict[str, Any]]:
        """Events of *job* with ``seq >= since`` (the NDJSON tail)."""
        with self._lock:
            return [event for event in job.events if event["seq"] >= since]
