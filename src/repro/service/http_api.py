"""The scenario service's HTTP surface (stdlib ``http.server`` only).

Endpoints (all JSON unless noted):

``GET /``
    Service info: version, endpoint list, job count.
``GET /healthz``
    Liveness probe.
``GET /jobs`` / ``POST /jobs``
    List jobs / submit a new grid (payload shapes in
    :mod:`repro.service.planner`).  Submission returns ``202`` with the
    new ``job_id``.
``GET /jobs/<id>``
    Full job status: per-point states, status counts, event count.
``GET /jobs/<id>/events[?since=N]``
    The job's event log from sequence number ``N`` on, as NDJSON — the
    streaming-progress tail pollers resume from.
``GET /jobs/<id>/results``
    The finished job's rows as standard sweep JSONL.
``GET /jobs/<id>/points/<i>/trace``
    The recorded execution trace of one point (requires the spec to
    have set ``record``), as run-trace JSONL.
``GET /jobs/<id>/points/<i>/report``
    The point's trace rendered through
    :func:`repro.observability.render_report` (plain text).
``GET /jobs/<id>/diff?a=I&b=J``
    :func:`repro.observability.diff_runs` over two recorded points.
``POST /jobs/<id>/cancel``
    Request cancellation: sets the job's cancel flag (``202``); the
    worker turns it into ``cancelled`` transitions between points.
    ``409`` once the job is already terminal.
``GET /results?field=value&...``
    Query accumulated rows across *all* persisted jobs; filters match
    top-level row fields (``protocol``, ``backend``, ``ok``, ...).
``POST /shutdown``
    Graceful stop: responds, then shuts the service down.

Client errors map to ``400`` (bad payloads, bad filters), unknown
resources to ``404``, wrong methods to ``405``.  ``POST /jobs`` sheds
load with ``429`` + ``Retry-After`` once the worker's queue is at
``max_queue_depth`` (``/healthz`` stays 200 throughout — overloaded is
busy, not dead).  Handler sockets carry a per-request deadline
(:attr:`~repro.service.session.ServiceConfig.request_timeout`), so a
stalled client times out instead of pinning a handler thread.  The
server is a :class:`ThreadingHTTPServer`, so slow pollers never block
submissions.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qsl, urlparse

from .. import __version__
from ..observability import diff_runs, load_run_text, render_report
from .jobs import Job
from .planner import PlanError, plan_points
from .worker import ServiceOverloadedError

if TYPE_CHECKING:
    import socket

    from .session import ScenarioService

#: The routes ``GET /`` advertises (method, path template).
ENDPOINTS = (
    ("GET", "/"),
    ("GET", "/healthz"),
    ("GET", "/jobs"),
    ("POST", "/jobs"),
    ("GET", "/jobs/<id>"),
    ("GET", "/jobs/<id>/events"),
    ("GET", "/jobs/<id>/results"),
    ("GET", "/jobs/<id>/points/<i>/trace"),
    ("GET", "/jobs/<id>/points/<i>/report"),
    ("GET", "/jobs/<id>/diff"),
    ("POST", "/jobs/<id>/cancel"),
    ("GET", "/results"),
    ("POST", "/shutdown"),
)


class ServiceHTTPServer(ThreadingHTTPServer):
    """A ThreadingHTTPServer that knows which service it fronts."""

    #: Handler threads must die with the server for shutdown to be prompt.
    daemon_threads = True

    def __init__(self, address: Tuple[str, int], service: "ScenarioService"):
        super().__init__(address, ScenarioRequestHandler)
        self.service = service

    def get_request(self) -> Tuple["socket.socket", Any]:
        """Accept a connection with the per-request deadline armed.

        The socket timeout bounds every read/write a handler does, so a
        stalled client (slow-loris upload, dead TCP peer) times out —
        ``BaseHTTPRequestHandler`` turns that into closing the
        connection — instead of pinning a handler thread forever.
        """
        request, client_address = super().get_request()
        timeout = self.service.config.request_timeout
        if timeout > 0:
            request.settimeout(timeout)
        return request, client_address


class ScenarioRequestHandler(BaseHTTPRequestHandler):
    """Route one HTTP request against the owning service's state."""

    #: Quieter than the BaseHTTPRequestHandler default (no per-request
    #: stderr lines); the service has its own event log.
    def log_message(self, format: str, *args: Any) -> None:
        """Suppress the default stderr access log."""

    @property
    def service(self) -> "ScenarioService":
        """The service behind this server socket."""
        server: ServiceHTTPServer = self.server  # type: ignore[assignment]
        return server.service

    # -- response helpers ---------------------------------------------

    def _send(
        self,
        status: int,
        body: bytes,
        content_type: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _json(
        self,
        payload: Any,
        status: int = 200,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        self._send(status, body, "application/json", headers)

    def _text(self, text: str, status: int = 200) -> None:
        self._send(status, text.encode(), "text/plain; charset=utf-8")

    def _ndjson(self, records: List[Dict[str, Any]]) -> None:
        body = "".join(
            json.dumps(record, sort_keys=True) + "\n" for record in records
        ).encode()
        self._send(200, body, "application/x-ndjson")

    def _error(self, status: int, message: str) -> None:
        self._json({"error": message}, status=status)

    # -- request plumbing ---------------------------------------------

    def _route(self) -> Tuple[List[str], Dict[str, str]]:
        parsed = urlparse(self.path)
        parts = [part for part in parsed.path.split("/") if part]
        query = dict(parse_qsl(parsed.query))
        return parts, query

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise PlanError("request body must be a JSON object")
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise PlanError(f"request body is not valid JSON: {exc}") from None

    def _job_or_404(self, job_id: str) -> Optional[Job]:
        job = self.service.store.get(job_id)
        if job is None:
            self._error(404, f"no such job {job_id!r}")
        return job

    def _point_trace(self, job: Job, index_text: str) -> Optional[str]:
        """The recorded trace of one point, or ``None`` after an error
        response was already sent."""
        try:
            index = int(index_text)
            row = self.service.store.point_row(job, index)
        except (ValueError, IndexError):
            self._error(404, f"no point {index_text!r} in {job.job_id}")
            return None
        if row is None:
            self._error(404, f"point {index} of {job.job_id} has no result yet")
            return None
        trace = row.get("trace_jsonl")
        if not trace:
            self._error(
                400,
                f"point {index} was not recorded — submit the spec with "
                f'"record": true to enable trace/report/diff',
            )
            return None
        return trace

    # -- GET -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server's naming
        """Dispatch one GET request."""
        parts, query = self._route()
        if not parts:
            self._json(
                {
                    "service": "repro-scenario-service",
                    "version": __version__,
                    "jobs": len(self.service.store.all_jobs()),
                    "endpoints": [f"{m} {p}" for m, p in ENDPOINTS],
                }
            )
            return
        if parts == ["healthz"]:
            self._json({"ok": True})
            return
        if parts == ["jobs"]:
            self._json({"jobs": self.service.store.index()})
            return
        if parts == ["results"]:
            try:
                rows = self.service.query_results(query)
            except ValueError as exc:
                self._error(400, str(exc))
                return
            self._ndjson(rows)
            return
        if parts[0] == "jobs" and len(parts) >= 2:
            job = self._job_or_404(parts[1])
            if job is None:
                return
            self._get_job(job, parts[2:], query)
            return
        self._error(404, f"unknown path {self.path!r}")

    def _get_job(
        self, job: Job, rest: List[str], query: Dict[str, str]
    ) -> None:
        if not rest:
            self._json(self.service.store.summary(job))
            return
        if rest == ["events"]:
            try:
                since = int(query.get("since", "0"))
            except ValueError:
                self._error(400, f"since must be an integer, got {query['since']!r}")
                return
            self._ndjson(self.service.store.events_since(job, since))
            return
        if rest == ["results"]:
            self._ndjson(self.service.store.point_records(job))
            return
        if rest == ["diff"]:
            if "a" not in query or "b" not in query:
                self._error(400, "diff needs ?a=<point>&b=<point>")
                return
            trace_a = self._point_trace(job, query["a"])
            if trace_a is None:
                return
            trace_b = self._point_trace(job, query["b"])
            if trace_b is None:
                return
            differences = diff_runs(load_run_text(trace_a), load_run_text(trace_b))
            self._json({"equivalent": not differences, "differences": differences})
            return
        if len(rest) == 3 and rest[0] == "points":
            trace = self._point_trace(job, rest[1])
            if trace is None:
                return
            if rest[2] == "trace":
                self._send(200, trace.encode(), "application/x-ndjson")
                return
            if rest[2] == "report":
                self._text(render_report(load_run_text(trace)))
                return
        self._error(404, f"unknown path {self.path!r}")

    # -- POST ----------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - http.server's naming
        """Dispatch one POST request."""
        parts, _ = self._route()
        if parts == ["shutdown"]:
            self._json({"stopping": True})
            # Shut down from another thread: shutdown() blocks until the
            # serve loop exits, and *this* handler runs inside that loop.
            # daemon=True (PL104): nothing joins this thread, and a
            # non-daemon one would keep a dying interpreter alive if the
            # process exits while shutdown() is still draining the worker.
            threading.Thread(
                target=self.service.shutdown,
                name="service-shutdown",
                daemon=True,
            ).start()
            return
        if parts == ["jobs"]:
            if self.service.worker.stopping:
                self._error(503, "service is shutting down")
                return
            try:
                # Admission control before the body is even parsed:
                # shedding load must cost less than accepting it.
                self.service.check_capacity()
            except ServiceOverloadedError as exc:
                self._json(
                    {
                        "error": str(exc),
                        "backlog": exc.backlog,
                        "retry_after": exc.retry_after,
                    },
                    status=429,
                    headers={"Retry-After": str(exc.retry_after)},
                )
                return
            try:
                payload = self._read_body()
                specs = plan_points(payload, base_seed=self.service.base_seed)
            except PlanError as exc:
                self._error(400, str(exc))
                return
            job = self.service.store.create(specs)
            self.service.worker.submit(job)
            self._json(
                {"job_id": job.job_id, "points": len(job.points),
                 "status": self.service.store.job_status(job)},
                status=202,
            )
            return
        if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
            job = self._job_or_404(parts[1])
            if job is None:
                return
            accepted = self.service.store.request_cancel(job)
            # The flag is all that changes here; the worker thread is
            # the single writer of point state and performs the actual
            # `cancelled` transitions between points.
            self._json(
                {
                    "job_id": job.job_id,
                    "cancel_requested": accepted,
                    "status": self.service.store.job_status(job),
                },
                status=202 if accepted else 409,
            )
            return
        self._error(404, f"unknown path {self.path!r}")
