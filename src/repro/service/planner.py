"""Turn a submitted job payload into a concrete list of ScenarioSpecs.

The service accepts two payload shapes:

* ``{"points": [<spec dict>, ...]}`` — explicit specs, run verbatim;
* ``{"base": <spec dict>, "grid": {<field>: [values...]}}`` — the
  cartesian product of the named axes over a base spec, in the same
  deterministic order :func:`repro.analysis.parallel.grid_from_axes`
  produces.

Either way every planned point carries an explicit ``seed``: points
that did not name one get a deterministic seed derived from the job's
``base_seed`` and the point's own content — the same SHA-256 discipline
:func:`repro.analysis.parallel.point_seed` uses — so resubmitting the
same payload plans bit-identical specs and the cache dedupes them.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..analysis.parallel import grid_from_axes, point_seed
from ..analysis.spec import SPEC_SWEEP_NAME, ScenarioSpec, SpecError

#: Largest grid one submission may plan (a runaway-product guard; the
#: limit is per-job, the store accepts any number of jobs).
MAX_POINTS = 4096


class PlanError(ValueError):
    """A job payload cannot be planned into specs (client error)."""


def _expand(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """The raw spec dicts a payload describes, before seeding."""
    if "points" in payload:
        points = payload["points"]
        if not isinstance(points, list) or not points:
            raise PlanError('"points" must be a non-empty list of spec dicts')
        if not all(isinstance(point, dict) for point in points):
            raise PlanError('every entry of "points" must be a spec dict')
        return [dict(point) for point in points]
    if "grid" in payload:
        base = payload.get("base")
        if not isinstance(base, dict):
            raise PlanError('grid payloads need a "base" spec dict')
        axes = payload["grid"]
        if not isinstance(axes, dict) or not axes:
            raise PlanError('"grid" must map spec fields to value lists')
        for name, values in axes.items():
            if not isinstance(values, list) or not values:
                raise PlanError(f"grid axis {name!r} must be a non-empty list")
        return [
            {**base, **combo} for combo in grid_from_axes(**axes)
        ]
    raise PlanError('payload needs either "points" or "base"+"grid"')


def plan_points(
    payload: Dict[str, Any], *, base_seed: int = 0
) -> List[ScenarioSpec]:
    """Validate *payload* and return its fully seeded ScenarioSpecs.

    Raises :class:`PlanError` for malformed payloads and re-raises the
    spec layer's :class:`~repro.analysis.spec.SpecError` for dicts that
    fail spec validation — both map to HTTP 400 in the API layer.
    """
    if not isinstance(payload, dict):
        raise PlanError("job payload must be a JSON object")
    raw = _expand(payload)
    if len(raw) > MAX_POINTS:
        raise PlanError(
            f"grid plans {len(raw)} points; the per-job limit is {MAX_POINTS}"
        )
    seeded: List[Dict[str, Any]] = []
    for point in raw:
        if "seed" not in point or point["seed"] is None:
            point = dict(point)
            point.pop("seed", None)
            point["seed"] = point_seed(SPEC_SWEEP_NAME, point, base_seed)
        seeded.append(point)
    return specs_from_dicts(seeded)


def specs_from_dicts(raw: List[Dict[str, Any]]) -> List[ScenarioSpec]:
    """Validate already-seeded spec dicts into ScenarioSpecs.

    The tail of :func:`plan_points`, exposed on its own because journal
    recovery replays exactly this shape: the spec dicts a previous
    process journaled are already seeded, and revalidating them guards
    recovery against schema drift between service versions (a journal
    written by an older spec schema fails here as :class:`PlanError`
    instead of resurrecting an undefined job).
    """
    specs: List[ScenarioSpec] = []
    for point in raw:
        try:
            specs.append(ScenarioSpec.from_dict(point))
        except (SpecError, KeyError, TypeError, ValueError) as exc:
            raise PlanError(f"invalid spec {point!r}: {exc}") from exc
    return specs
