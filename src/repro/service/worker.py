"""The scenario service's execution loop.

One background thread drains a FIFO of queued jobs.  For every point it
first consults the sweep cache (:func:`~repro.analysis.spec
.spec_cache_key` — the same key a local ``repro sweep --spec`` run
writes, so work done anywhere dedupes everywhere), then executes the
misses either inline (``pool_jobs=1``) or through a
:class:`~concurrent.futures.ProcessPoolExecutor`, exactly the two paths
:func:`repro.analysis.parallel.run_grid` offers.  Finished jobs are
persisted to the service's data directory as standard sweep JSONL
(:func:`~repro.analysis.parallel.write_sweep_jsonl`), which is what the
query endpoints read back.

Failure discipline (the service's fault-tolerance contract):

* **Point-level quarantine.**  An exception escaping one point — or a
  pool process dying under it — costs *that point* a retry, never the
  job: bounded attempts (:class:`RetryPolicy`) with deterministic
  jittered exponential backoff, then a terminal ``failed`` state plus a
  ``point_failed`` event.  The rest of the job finishes and the job
  lands on ``done_with_errors``.
* **Pool self-healing.**  A ``BrokenProcessPool`` (a worker process was
  killed) fails every in-flight point *attempt*; the pool is rebuilt
  and the affected points retry on the fresh one.
* **Loop immortality.**  An exception escaping a whole job marks that
  job ``failed`` with an ``error`` event and the drain loop carries on —
  a poisoned job can never wedge later submissions in ``queued``.
* **Cancellation.**  The worker polls
  :meth:`~repro.service.jobs.JobStore.is_cancel_requested` between
  points; it is the only writer of point state, so a cancel is a flag
  flip here, not a cross-thread transition.

Shutdown is cooperative: the stop event is checked between points (and
between pool completions), so a graceful shutdown finishes nothing
extra — in-flight points complete, the rest of the job is marked
``cancelled``.
"""

from __future__ import annotations

import hashlib
import importlib
import os
import queue
import threading
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..analysis.parallel import (
    SweepCache,
    SweepReport,
    default_cache_dir,
    write_sweep_jsonl,
)
from ..analysis.spec import (
    SPEC_RUNNER,
    SPEC_SWEEP_NAME,
    spec_cache_key,
)
from .jobs import Job, JobStore

#: The default point executor (dotted ``module:function`` path).  The
#: indirection exists for the chaos harness, which swaps in
#: :func:`repro.service.chaos.chaos_execute` to inject faults without
#: touching this hot path.
DEFAULT_EXECUTOR = "repro.analysis.spec:execute_spec_point"


class ServiceOverloadedError(RuntimeError):
    """The submission queue is at capacity; retry after backing off.

    Raised by :meth:`repro.service.session.ScenarioService
    .check_capacity`; the HTTP layer maps it to ``429 Too Many
    Requests`` with a ``Retry-After`` header carrying
    :attr:`retry_after` — load shedding at admission, before any
    planning work is spent, while ``/healthz`` keeps answering 200 (an
    overloaded service is busy, not dead).
    """

    def __init__(self, backlog: int, limit: int) -> None:
        super().__init__(
            f"job queue is at capacity ({backlog} queued, limit {limit})"
        )
        self.backlog = backlog
        self.limit = limit
        #: Suggested client back-off in seconds: proportional to the
        #: backlog so pressure spreads retries out, capped to stay
        #: polite.  Deterministic — clients add their own jitter.
        self.retry_after = max(1, min(30, backlog // max(1, limit // 4)))


def resolve_executor(
    path: Optional[str],
) -> Callable[[Any], Dict[str, Any]]:
    """Import the point-executor named by a ``module:function`` path.

    The function must be module-level (worker *processes* re-import it
    by reference when ``pool_jobs > 1``) and take one
    :class:`~repro.analysis.spec.ScenarioSpec`, returning its row.
    """
    target = path or DEFAULT_EXECUTOR
    module_name, _, func_name = target.partition(":")
    if not module_name or not func_name:
        raise ValueError(
            f"executor must be a 'module:function' path, got {target!r}"
        )
    module = importlib.import_module(module_name)
    func = getattr(module, func_name, None)
    if not callable(func):
        raise ValueError(f"executor {target!r} does not name a callable")
    return func


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with deterministic jittered exponential backoff.

    The jitter is derived from a SHA-256 of ``(job id, point index,
    attempt)`` — the same discipline as the sweep engine's
    :func:`~repro.analysis.parallel.point_seed` — so two runs of the
    same failing job back off identically (no ambient randomness in the
    service, ever).
    """

    #: Total attempts per point (1 = no retries).
    max_attempts: int = 3
    #: Backoff before attempt 2 (doubles per further attempt).
    base_delay: float = 0.05
    #: Backoff ceiling, pre-jitter.
    max_delay: float = 2.0
    #: Additional random fraction of the delay, in ``[0, jitter)``.
    jitter: float = 0.5

    def delay(self, job_id: str, index: int, attempt: int) -> float:
        """Seconds to wait before retrying after failed *attempt*."""
        base = min(self.max_delay, self.base_delay * (2 ** (attempt - 1)))
        if self.jitter <= 0:
            return base
        payload = f"{job_id}:{index}:{attempt}".encode()
        unit = int.from_bytes(
            hashlib.sha256(payload).digest()[:8], "big"
        ) / float(2**64)
        return base * (1.0 + self.jitter * unit)


class Worker(threading.Thread):
    """The single job-draining thread behind a scenario service."""

    def __init__(
        self,
        store: JobStore,
        *,
        cache_dir: Optional[str] = None,
        data_dir: Optional[str] = None,
        pool_jobs: int = 1,
        no_cache: bool = False,
        retry: Optional[RetryPolicy] = None,
        executor: Optional[str] = None,
    ) -> None:
        super().__init__(name="scenario-worker", daemon=True)
        self.store = store
        self.cache: Optional[SweepCache] = (
            None if no_cache else SweepCache(cache_dir or default_cache_dir())
        )
        self.data_dir = data_dir
        self.pool_jobs = max(1, pool_jobs)
        self.retry = retry or RetryPolicy()
        self.executor_path = executor or DEFAULT_EXECUTOR
        self._execute = resolve_executor(executor)
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._stop_event = threading.Event()

    # -- control -------------------------------------------------------

    def submit(self, job: Job) -> None:
        """Enqueue *job* for execution."""
        self._queue.put(job.job_id)

    def stop(self) -> None:
        """Request a cooperative stop (between points, not mid-point)."""
        self._stop_event.set()
        self._queue.put(None)  # wake the loop if it is blocked on get()

    @property
    def stopping(self) -> bool:
        """True once a stop was requested."""
        return self._stop_event.is_set()

    def backlog(self) -> int:
        """Jobs waiting in the drain queue (approximate, lock-free).

        The HTTP layer's backpressure check reads this; ``qsize`` is
        advisory by contract, which is exactly what an admission-control
        threshold needs.
        """
        return self._queue.qsize()

    # -- loop ----------------------------------------------------------

    def run(self) -> None:
        """Drain queued jobs until stopped; one bad job never kills us."""
        while not self._stop_event.is_set():
            try:
                job_id = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            if job_id is None:
                continue
            job = self.store.get(job_id)
            if job is None:
                continue
            try:
                self._run_job(job)
            except Exception as exc:  # noqa: BLE001 - drain loop survives
                # A job whose execution machinery blew up is failed with
                # its reason on the event log; the loop stays alive so
                # later submissions never hang in `queued`.
                self.store.log_event(
                    job, "error", error=f"{type(exc).__name__}: {exc}"
                )
                self.store.cancel_active(job)
                self.store.set_job_status(job, "failed")
        # Anything still queued at stop time is cancelled, not dropped
        # silently: pollers see a terminal state either way.
        while True:
            try:
                job_id = self._queue.get_nowait()
            except queue.Empty:
                break
            job = self.store.get(job_id) if job_id else None
            if job is not None and self.store.job_status(job) == "queued":
                self._cancel_rest(job)
                self.store.set_job_status(job, "cancelled")

    def _run_job(self, job: Job) -> None:
        if self.store.is_cancel_requested(job):
            self._cancel_rest(job)
            self.store.set_job_status(job, "cancelled")
            return
        self.store.set_job_status(job, "running")
        cached = self._serve_cached(job)
        self.store.log_event(job, "cache_scan", cached=cached)
        missing = self.store.pending_indices(job)
        if self._stop_event.is_set():
            self._cancel_rest(job)
            self.store.set_job_status(job, "cancelled")
            return
        if missing:
            if self.pool_jobs > 1:
                self._run_pool(job, missing)
            else:
                self._run_inline(job, missing)
        self._finish_job(job)

    def _finish_job(self, job: Job) -> None:
        """Give *job* its terminal state (every point is accounted for)."""
        if self.store.any_point_in(job, ("pending", "running")):
            # Only the stop/cancel paths leave non-terminal points, and
            # they cancel first — this is a belt-and-braces guarantee
            # that no job ever leaves the worker non-terminal.
            self._cancel_rest(job)
        if self.store.any_point_in(job, ("cancelled",)):
            self.store.set_job_status(job, "cancelled")
        elif self.store.any_point_in(job, ("failed",)):
            self._persist(job)
            self.store.set_job_status(job, "done_with_errors")
        else:
            self._persist(job)
            self.store.set_job_status(job, "done")

    def _serve_cached(self, job: Job) -> int:
        """Mark every cache hit before any execution; returns the count.

        Only ``pending`` points are scanned: a recovered job's restored
        ``failed``/``cancelled`` points keep their journaled verdicts.
        """
        if self.cache is None:
            return 0
        hits = 0
        for index in self.store.pending_indices(job):
            row = self.cache.get(spec_cache_key(job.points[index].spec))
            if row is not None:
                self.store.set_point_status(job, index, "cached", row=row)
                hits += 1
        return hits

    def _finish_point(self, job: Job, index: int, row: Dict) -> None:
        self.store.set_point_status(job, index, "done", row=row)
        if self.cache is not None:
            self.cache.put(spec_cache_key(job.points[index].spec), row)

    def _handle_failure(
        self,
        job: Job,
        index: int,
        attempt: int,
        exc: BaseException,
        retries: List[Tuple[float, int, int]],
    ) -> None:
        """Schedule a retry for one failed point, or quarantine it."""
        reason = f"{type(exc).__name__}: {exc}"
        if attempt < self.retry.max_attempts:
            delay = self.retry.delay(job.job_id, index, attempt)
            self.store.log_event(
                job,
                "point_retry",
                index=index,
                attempt=attempt,
                delay=round(delay, 4),
                error=reason,
            )
            retries.append((time.monotonic() + delay, index, attempt + 1))
        else:
            self.store.set_point_status(job, index, "failed", error=reason)
            self.store.log_event(
                job, "point_failed", index=index, attempts=attempt, error=reason
            )

    def _interrupted(self, job: Job) -> bool:
        """Stop/cancel check between points; cancels the rest if so."""
        if self._stop_event.is_set() or self.store.is_cancel_requested(job):
            self._cancel_rest(job)
            return True
        return False

    def _run_inline(self, job: Job, missing: List[int]) -> None:
        pending = deque((index, 1) for index in missing)
        retries: List[Tuple[float, int, int]] = []
        while pending or retries:
            if self._interrupted(job):
                return
            if pending:
                index, attempt = pending.popleft()
            else:
                retries.sort()
                wake = retries[0][0]
                remaining = wake - time.monotonic()
                if remaining > 0:
                    # Sleep in short slices so stop/cancel stay prompt
                    # even under a long backoff.
                    self._stop_event.wait(min(remaining, 0.05))
                    continue
                _, index, attempt = retries.pop(0)
            self.store.set_point_status(job, index, "running")
            try:
                row = self._execute(job.points[index].spec)
            except Exception as exc:  # noqa: BLE001 - one point, one verdict
                self._handle_failure(job, index, attempt, exc, retries)
            else:
                self._finish_point(job, index, row)

    def _run_pool(self, job: Job, missing: List[int]) -> None:
        pool = ProcessPoolExecutor(max_workers=self.pool_jobs)
        futures: Dict[Future, Tuple[int, int]] = {}
        retries: List[Tuple[float, int, int]] = []
        try:
            for index in missing:
                self.store.set_point_status(job, index, "running")
                future = pool.submit(self._execute, job.points[index].spec)
                futures[future] = (index, 1)
            while futures or retries:
                if self._stop_event.is_set() or self.store.is_cancel_requested(
                    job
                ):
                    for future in futures:
                        future.cancel()
                    # Futures that completed between the wait() and the
                    # cancel left their points terminal; everything still
                    # pending/running is cancelled in one store pass.
                    self.store.cancel_active(job)
                    return
                now = time.monotonic()
                due = [entry for entry in sorted(retries) if entry[0] <= now]
                for entry in due:
                    retries.remove(entry)
                    _, index, attempt = entry
                    self.store.set_point_status(job, index, "running")
                    future = pool.submit(
                        self._execute, job.points[index].spec
                    )
                    futures[future] = (index, attempt)
                if not futures:
                    self._stop_event.wait(0.05)
                    continue
                finished, _ = wait(
                    set(futures), timeout=0.25, return_when=FIRST_COMPLETED
                )
                pool_broke = False
                for future in finished:
                    index, attempt = futures.pop(future)
                    try:
                        row = future.result()
                    except BrokenProcessPool as exc:
                        # A pool process died (killed, OOM, os._exit):
                        # every in-flight future fails with this same
                        # error — each costs its point one attempt.
                        pool_broke = True
                        self._handle_failure(job, index, attempt, exc, retries)
                    except Exception as exc:  # noqa: BLE001
                        self._handle_failure(job, index, attempt, exc, retries)
                    else:
                        self._finish_point(job, index, row)
                if pool_broke:
                    self.store.log_event(
                        job, "pool_rebuilt", inflight=len(futures)
                    )
                    pool.shutdown(wait=False)
                    pool = ProcessPoolExecutor(max_workers=self.pool_jobs)
        finally:
            pool.shutdown(wait=False)

    def _cancel_rest(self, job: Job) -> None:
        self.store.cancel_active(job)

    def _persist(self, job: Job) -> None:
        """Write the finished job's rows as standard sweep JSONL.

        Also runs for ``done_with_errors`` jobs: completed rows are
        worth keeping even when a sibling point failed (failed points
        persist as empty rows, which the query layer skips).
        """
        if self.data_dir is None:
            return
        os.makedirs(self.data_dir, exist_ok=True)
        rows = self.store.result_rows(job)
        counts = self.store.counts(job)
        report = SweepReport(
            name=SPEC_SWEEP_NAME,
            rows=rows,
            cache_hits=counts["cached"],
            cache_misses=counts["done"],
            jobs=self.pool_jobs,
        )
        path = os.path.join(self.data_dir, f"{job.job_id}.jsonl")
        write_sweep_jsonl(
            path,
            report,
            runner=SPEC_RUNNER,
            grid=[point.spec.to_dict() for point in job.points],
            seeds=[point.spec.seed for point in job.points],
        )
        self.store.set_results_path(job, path)
        self.store.log_event(job, "results_persisted", path=path)
