"""The scenario service's execution loop.

One background thread drains a FIFO of queued jobs.  For every point it
first consults the sweep cache (:func:`~repro.analysis.spec
.spec_cache_key` — the same key a local ``repro sweep --spec`` run
writes, so work done anywhere dedupes everywhere), then executes the
misses either inline (``pool_jobs=1``) or through a
:class:`~concurrent.futures.ProcessPoolExecutor`, exactly the two paths
:func:`repro.analysis.parallel.run_grid` offers.  Finished jobs are
persisted to the service's data directory as standard sweep JSONL
(:func:`~repro.analysis.parallel.write_sweep_jsonl`), which is what the
query endpoints read back.

Shutdown is cooperative: the stop event is checked between points (and
between pool completions), so a graceful shutdown finishes nothing
extra — in-flight points complete, the rest of the job is marked
``cancelled``.
"""

from __future__ import annotations

import os
import queue
import threading
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Dict, List, Optional

from ..analysis.parallel import (
    SweepCache,
    SweepReport,
    default_cache_dir,
    write_sweep_jsonl,
)
from ..analysis.spec import (
    SPEC_RUNNER,
    SPEC_SWEEP_NAME,
    execute_spec_point,
    spec_cache_key,
)
from .jobs import Job, JobStore


class Worker(threading.Thread):
    """The single job-draining thread behind a scenario service."""

    def __init__(
        self,
        store: JobStore,
        *,
        cache_dir: Optional[str] = None,
        data_dir: Optional[str] = None,
        pool_jobs: int = 1,
        no_cache: bool = False,
    ) -> None:
        super().__init__(name="scenario-worker", daemon=True)
        self.store = store
        self.cache: Optional[SweepCache] = (
            None if no_cache else SweepCache(cache_dir or default_cache_dir())
        )
        self.data_dir = data_dir
        self.pool_jobs = max(1, pool_jobs)
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._stop_event = threading.Event()

    # -- control -------------------------------------------------------

    def submit(self, job: Job) -> None:
        """Enqueue *job* for execution."""
        self._queue.put(job.job_id)

    def stop(self) -> None:
        """Request a cooperative stop (between points, not mid-point)."""
        self._stop_event.set()
        self._queue.put(None)  # wake the loop if it is blocked on get()

    @property
    def stopping(self) -> bool:
        """True once a stop was requested."""
        return self._stop_event.is_set()

    # -- loop ----------------------------------------------------------

    def run(self) -> None:
        """Drain queued jobs until stopped."""
        while not self._stop_event.is_set():
            try:
                job_id = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            if job_id is None:
                continue
            job = self.store.get(job_id)
            if job is not None:
                self._run_job(job)
        # Anything still queued at stop time is cancelled, not dropped
        # silently: pollers see a terminal state either way.
        while True:
            try:
                job_id = self._queue.get_nowait()
            except queue.Empty:
                break
            job = self.store.get(job_id) if job_id else None
            if job is not None and self.store.job_status(job) == "queued":
                self._cancel_rest(job)
                self.store.set_job_status(job, "cancelled")

    def _run_job(self, job: Job) -> None:
        self.store.set_job_status(job, "running")
        cached = self._serve_cached(job)
        self.store.log_event(job, "cache_scan", cached=cached)
        missing = self.store.pending_indices(job)
        if self._stop_event.is_set():
            self._cancel_rest(job)
            self.store.set_job_status(job, "cancelled")
            return
        if missing:
            if self.pool_jobs > 1:
                self._run_pool(job, missing)
            else:
                self._run_inline(job, missing)
        if self.store.any_point_in(job, ("cancelled",)):
            self.store.set_job_status(job, "cancelled")
        elif self.store.any_point_in(job, ("failed",)):
            self.store.set_job_status(job, "failed")
        else:
            self._persist(job)
            self.store.set_job_status(job, "done")

    def _serve_cached(self, job: Job) -> int:
        """Mark every cache hit before any execution; returns the count."""
        if self.cache is None:
            return 0
        hits = 0
        for point in job.points:
            row = self.cache.get(spec_cache_key(point.spec))
            if row is not None:
                self.store.set_point_status(job, point.index, "cached", row=row)
                hits += 1
        return hits

    def _finish_point(self, job: Job, index: int, row: Dict) -> None:
        self.store.set_point_status(job, index, "done", row=row)
        if self.cache is not None:
            self.cache.put(spec_cache_key(job.points[index].spec), row)

    def _run_inline(self, job: Job, missing: List[int]) -> None:
        for index in missing:
            if self._stop_event.is_set():
                self._cancel_rest(job)
                return
            point = job.points[index]
            self.store.set_point_status(job, index, "running")
            try:
                row = execute_spec_point(point.spec)
            except Exception as exc:  # noqa: BLE001 - one point, one verdict
                self.store.set_point_status(job, index, "failed", error=str(exc))
            else:
                self._finish_point(job, index, row)

    def _run_pool(self, job: Job, missing: List[int]) -> None:
        with ProcessPoolExecutor(max_workers=self.pool_jobs) as pool:
            futures = {}
            for index in missing:
                point = job.points[index]
                self.store.set_point_status(job, index, "running")
                future = pool.submit(execute_spec_point, point.spec)
                futures[future] = index
            pending = set(futures)
            while pending:
                finished, pending = wait(
                    pending, timeout=0.25, return_when=FIRST_COMPLETED
                )
                for future in finished:
                    index = futures[future]
                    try:
                        row = future.result()
                    except Exception as exc:  # noqa: BLE001
                        self.store.set_point_status(
                            job, index, "failed", error=str(exc)
                        )
                    else:
                        self._finish_point(job, index, row)
                if self._stop_event.is_set() and pending:
                    for future in pending:
                        future.cancel()
                    # Futures that completed between the wait() and the
                    # cancel left their points terminal; everything still
                    # pending/running is cancelled in one store pass.
                    self.store.cancel_active(job)
                    return

    def _cancel_rest(self, job: Job) -> None:
        self.store.cancel_active(job)

    def _persist(self, job: Job) -> None:
        """Write the finished job's rows as standard sweep JSONL."""
        if self.data_dir is None:
            return
        os.makedirs(self.data_dir, exist_ok=True)
        rows = self.store.result_rows(job)
        counts = self.store.counts(job)
        report = SweepReport(
            name=SPEC_SWEEP_NAME,
            rows=rows,
            cache_hits=counts["cached"],
            cache_misses=counts["done"],
            jobs=self.pool_jobs,
        )
        path = os.path.join(self.data_dir, f"{job.job_id}.jsonl")
        write_sweep_jsonl(
            path,
            report,
            runner=SPEC_RUNNER,
            grid=[point.spec.to_dict() for point in job.points],
            seeds=[point.spec.seed for point in job.points],
        )
        self.store.set_results_path(job, path)
        self.store.log_event(job, "results_persisted", path=path)
